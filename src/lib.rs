//! Root crate for the reproduction: re-exports every workspace library so
//! integration tests and examples have a single import surface.

pub use fpir;
pub use fpvm;
pub use instrument;
pub use mixedprec;
pub use mpconfig;
pub use mpsearch;
pub use workloads;
