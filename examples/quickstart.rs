//! Quickstart: write a small double-precision program, run the automatic
//! mixed-precision analysis on it, and print the recommended
//! configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpir::*;
use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::SearchOptions;
use workloads::{Class, Workload};

fn main() {
    // 1. A small "application": accumulate a well-behaved sum (tolerates
    //    single precision) and a delicate compensated-style correction
    //    (needs double precision).
    let mut ir = IrProgram::new("quickstart");
    let xs = ir.array_f64_init("xs", (0..128).map(|k| 1.0 + 1e-11 * k as f64).collect());
    let out = ir.array_f64("out", 2);

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let coarse = ir.local_f(fr);
        let fine = ir.local_f(fr);
        let k = ir.local_i(fr);
        vec![
            set(coarse, f(0.0)),
            set(fine, f(0.0)),
            for_(
                k,
                i(0),
                i(128),
                vec![
                    // coarse: plain sum of O(1) values
                    set(coarse, fadd(v(coarse), ld(xs, v(k)))),
                    // fine: amplify the 1e-11 perturbations — only meaningful
                    // when computed in double precision
                    set(fine, fadd(v(fine), fmul(fsub(ld(xs, v(k)), f(1.0)), f(1e10)))),
                ],
            ),
            st(out, i(0), v(coarse)),
            st(out, i(1), v(fine)),
        ]
    });
    ir.set_entry(main);

    // 2. Package it with a data set and a verification tolerance. The
    //    reference outputs come from the original double-precision run.
    let workload = Workload::package("quickstart", Class::S, ir, 1e-7, vec![("out".into(), 2)]);

    // 3. Run the analysis: profile, breadth-first search, union config.
    let sys = AnalysisSystem::with_options(
        workload,
        AnalysisOptions {
            search: SearchOptions { threads: 2, ..Default::default() },
            ..Default::default()
        },
    );
    let rec = sys.recommend();

    println!("== search results ==");
    println!("candidate instructions : {}", rec.report.candidates);
    println!("configurations tested  : {}", rec.report.configs_tested);
    println!("replaced (static)      : {:.1}%", rec.report.static_pct);
    println!("replaced (dynamic)     : {:.1}%", rec.report.dynamic_pct);
    println!("final verification     : {}", if rec.report.final_pass { "pass" } else { "fail" });
    println!("modelled speedup       : {:.2}x", rec.modelled_speedup);
    println!();
    println!("== recommended configuration (exchange format, Fig. 3) ==");
    println!("{}", rec.config_text);
    println!("legend: s = replace with single precision, d = keep double;");
    println!("the delicate correction loop should have stayed double.");
}
