//! The paper's §3.2 experiment as an example: verify that the AMG
//! microkernel runs entirely in single precision, then quantify the
//! speedup of the manual conversion.
//!
//! ```sh
//! cargo run --release --example amg_microkernel
//! ```

use mixedprec::{conversion_speedup, AnalysisOptions, AnalysisSystem};
use mpsearch::SearchOptions;
use workloads::amg::amg_iters;
use workloads::Class;

fn main() {
    println!("AMG microkernel end-to-end analysis (paper §3.2)\n");

    let sys = AnalysisSystem::with_options(
        amg_iters(Class::W, 50),
        AnalysisOptions {
            search: SearchOptions { threads: 4, ..Default::default() },
            ..Default::default()
        },
    );
    let rec = sys.recommend();
    println!("candidates             : {}", rec.report.candidates);
    println!("configurations tested  : {}", rec.report.configs_tested);
    println!("replaced (static)      : {:.1}%", rec.report.static_pct);
    println!("final verification     : {}", if rec.report.final_pass { "pass" } else { "fail" });
    assert!(
        rec.report.final_pass && rec.report.static_pct == 100.0,
        "the multigrid iteration should tolerate full single-precision replacement"
    );

    // The adaptive nature of the method corrects the f32 roundoff, so the
    // developer can recompile the whole kernel in single precision:
    let s = conversion_speedup(sys.workload());
    println!("\nmanual f32 recompilation:");
    println!("modelled cycle speedup : {:.2}x  (paper: ~2x, 175.48s -> 95.25s)", s.modelled);
    println!("instruction ratio      : {:.3}", s.steps);
}
