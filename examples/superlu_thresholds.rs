//! The paper's §3.3 experiment as an example: drive the automatic search
//! on the sparse LU solver with a sweep of error thresholds and watch the
//! replaceable fraction shrink as the bound tightens (Fig. 11).
//!
//! ```sh
//! cargo run --release --example superlu_thresholds
//! ```

use fpvm::{Vm, VmOptions};
use instrument::RewriteOptions;
use mpconfig::{Config, StructureTree};
use mpsearch::{search, SearchOptions, VmEvaluator};
use workloads::slu::slu;
use workloads::Class;

fn main() {
    let s = slu(Class::W);
    let prog = s.wl.program();
    let tree = StructureTree::build(prog);
    let profile =
        Vm::run_program(prog, VmOptions { profile: true, ..Default::default() }).profile.unwrap();

    println!("SuperLU-analogue threshold sweep (n = {})\n", s.n);
    println!("{:<12} {:>9} {:>9} {:>8}", "threshold", "static", "dynamic", "tested");
    for threshold in [1e-3, 1e-4, 2.5e-5, 1e-6] {
        let eval = VmEvaluator::with_options(
            prog,
            &tree,
            VmOptions::default(),
            RewriteOptions::default(),
            s.threshold_verifier(threshold),
        );
        let r = search(
            &tree,
            &Config::new(),
            Some(&profile),
            &eval,
            &SearchOptions { threads: 4, ..Default::default() },
        );
        println!(
            "{:<12.0e} {:>8.1}% {:>8.1}% {:>8}",
            threshold, r.static_pct, r.dynamic_pct, r.configs_tested
        );
    }
    println!("\nstricter error bounds leave less of the solver replaceable —");
    println!("the tool maps which parts of the program are sensitive to roundoff.");
}
