//! The terminal analogue of the paper's graphical configuration editor
//! (Fig. 4): show the structure tree of a benchmark, toggle precision
//! flags on aggregate nodes, and print the resulting exchange-format
//! configuration file.
//!
//! ```sh
//! cargo run --release --example config_editor
//! ```

use mpconfig::editor::{render_tree, stats, toggle};
use mpconfig::{print_config, Config, Flag, StructureTree};
use workloads::{nas, Class};

fn main() {
    let w = nas::cg(Class::S);
    let tree = StructureTree::build(w.program());
    let mut cfg = Config::new();

    println!("== initial tree (no flags; everything defaults to double) ==\n");
    print!("{}", render_tree(&tree, &cfg));

    // toggle a function to single (the tree view shows the override
    // propagating to every contained instruction)
    let func_node = tree.children(tree.roots()[0])[0];
    toggle(&tree, &mut cfg, func_node); // none -> single
    println!("\n== after toggling {} to single ==\n", tree.label(func_node));
    print!("{}", render_tree(&tree, &cfg));

    // and one instruction inside it explicitly to ignore — the aggregate
    // flag wins (parent-overrides-children, §2.1)
    let block = tree.children(func_node)[0];
    let insn = tree.children(block)[0];
    cfg.set_node(&tree, insn, Flag::Ignore);
    println!("\n== instruction flag set to ignore, but the function flag overrides ==\n");
    print!("{}", render_tree(&tree, &cfg));

    let st = stats(&tree, &cfg);
    println!(
        "\nstatus: {} candidates, {} replaced, {} ignored",
        st.candidates, st.replaced, st.ignored
    );

    println!("\n== exchange-format file (paper Fig. 3) ==\n");
    print!("{}", print_config(&tree, &cfg));
}
