//! Run the automatic breadth-first search on one NAS analogue and print a
//! Fig.-10-style row plus the passing structural units.
//!
//! ```sh
//! cargo run --release --example nas_search [bench] [class]
//! # e.g.  cargo run --release --example nas_search cg w
//! ```

use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::{SearchOptions, SearchReport};
use workloads::{nas, Class, Workload};

fn pick(bench: &str, class: Class) -> Workload {
    match bench {
        "bt" => nas::bt(class),
        "cg" => nas::cg(class),
        "ep" => nas::ep(class),
        "ft" => nas::ft(class),
        "lu" => nas::lu(class),
        "mg" => nas::mg(class),
        "sp" => nas::sp(class),
        other => panic!("unknown benchmark `{other}` (expected bt|cg|ep|ft|lu|mg|sp)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("cg").to_string();
    let class = match args.get(2).map(String::as_str).unwrap_or("w") {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        "c" => Class::C,
        other => panic!("unknown class `{other}`"),
    };

    let w = pick(&bench, class);
    let label = format!("{}.{}", w.name, class);
    let sys = AnalysisSystem::with_options(
        w,
        AnalysisOptions {
            search: SearchOptions { threads: 4, ..Default::default() },
            ..Default::default()
        },
    );
    let report = sys.run_search();

    println!("{}", SearchReport::figure10_header());
    println!("{}\n", report.figure10_row(&label));

    println!("individually passing structural units:");
    for u in &report.passing {
        println!("  {:<40} ({} instructions)", u.label, u.insns);
    }
    if report.failed_insns > 0 {
        println!("\n{} instruction(s) must remain in double precision", report.failed_insns);
    }
    println!("\nsearch wall time: {:.2?}", report.elapsed);
}
