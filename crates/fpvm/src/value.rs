//! Bit-level representation of *replaced* doubles (paper §2.3, Fig. 5).
//!
//! A replaced value stores the 32 bits of the downcast single in the low
//! half of the original 64-bit slot and the sentinel `0x7FF4DEAD` in the
//! high half. The sentinel encodes a signalling-class NaN (`0x7FF4....`),
//! so a replaced value consumed by an *uninstrumented* double operation
//! never silently propagates — it poisons the result (and the interpreter
//! can optionally trap, reproducing the "anything missed causes a crash"
//! property). The low half of the sentinel, `0xDEAD`, is simply easy to
//! spot in a hex dump.

/// High 32 bits of a replaced double.
pub const FLAG_HI: u32 = 0x7FF4_DEAD;

/// The 64-bit mask form of the flag (`0x7FF4DEAD_00000000`).
pub const FLAG_HI64: u64 = (FLAG_HI as u64) << 32;

/// Mask selecting the high 32 bits of a 64-bit slot.
pub const HI_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// Is this 64-bit slot a replaced (flagged) double?
#[inline]
pub fn is_replaced(bits: u64) -> bool {
    bits & HI_MASK == FLAG_HI64
}

/// Downcast a double to single precision and store it flagged in-place.
#[inline]
pub fn replace(x: f64) -> u64 {
    FLAG_HI64 | (x as f32).to_bits() as u64
}

/// Build a flagged slot directly from single-precision bits.
#[inline]
pub fn replace_bits(s: u32) -> u64 {
    FLAG_HI64 | s as u64
}

/// Extract the single-precision payload from a flagged slot.
///
/// The caller must have checked [`is_replaced`]; on unflagged slots this
/// simply reinterprets the low 32 bits.
#[inline]
pub fn extract(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

/// Read a 64-bit slot at full precision: the flagged payload upcast to
/// double, or the slot itself as a double.
#[inline]
pub fn read_as_f64(bits: u64) -> f64 {
    if is_replaced(bits) {
        extract(bits) as f64
    } else {
        f64::from_bits(bits)
    }
}

/// Read a 64-bit slot as single precision: the flagged payload, or the
/// double rounded to single.
#[inline]
pub fn read_as_f32(bits: u64) -> f32 {
    if is_replaced(bits) {
        extract(bits)
    } else {
        f64::from_bits(bits) as f32
    }
}

/// Quantize an f32 bit pattern to a reduced format with `mant_bits`
/// explicit mantissa bits and `exp_bits` exponent bits, rounding to
/// nearest-even. The result is returned as f32 bits: every reduced
/// format is constrained to `mant_bits <= 23` and `exp_bits <= 8`, so
/// all its values (normals, subnormals, infinities) are exactly
/// representable in binary32 and the NaN-boxed 64-bit slot layout is
/// unchanged — only the set of representable payloads shrinks.
///
/// Semantics:
/// - NaN passes through unchanged (payload preserved);
/// - overflow past the format's largest finite value rounds to ±inf;
/// - values below the format's smallest subnormal round to ±0;
/// - the subnormal range of the format rounds with gradually reduced
///   precision, exactly as an IEEE `binary(1+exp_bits+mant_bits)`
///   format would.
pub fn quantize_f32_bits(bits: u32, mant_bits: u32, exp_bits: u32) -> u32 {
    debug_assert!(mant_bits <= 23, "reduced formats must fit in an f32 mantissa");
    debug_assert!((1..=8).contains(&exp_bits), "reduced formats must fit in an f32 exponent");
    let sign = bits & 0x8000_0000;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;
    if exp == 0xFF {
        return bits; // inf and NaN share the f32 encodings
    }
    if exp == 0 && frac == 0 {
        return sign; // ±0
    }
    // Normalize to a 24-bit significand `sig` with bit 23 set,
    // representing the value sig × 2^(e-23).
    let (mut e, mut sig) = if exp == 0 { (-126, frac) } else { (exp - 127, frac | 0x80_0000) };
    while sig & 0x80_0000 == 0 {
        sig <<= 1;
        e -= 1;
    }
    let bias = (1i32 << (exp_bits - 1)) - 1;
    let e_max = bias; // all-ones exponent is reserved for inf/NaN
    let e_min = 1 - bias;
    // Bits to drop from the 24-bit significand: the format's precision
    // deficit, plus one per binade below the normal range (gradual
    // underflow).
    let drop = (23 - mant_bits as i32 + (e_min - e).max(0)).min(26) as u32;
    let (mut rounded, mut e) = if drop == 0 {
        (sig as u64, e)
    } else {
        let m = sig as u64;
        let half = 1u64 << (drop - 1);
        let rem = m & ((1u64 << drop) - 1);
        let mut q = m >> drop;
        if rem > half || (rem == half && q & 1 == 1) {
            q += 1;
        }
        (q, e)
    };
    if rounded == 0 {
        return sign; // underflowed to zero
    }
    if e >= e_min {
        // Normal-range result: rounded has mant_bits+1 bits, or one
        // more after a carry-out.
        if rounded >> (mant_bits + 1) != 0 {
            rounded >>= 1;
            e += 1;
        }
        if e > e_max {
            return sign | 0x7F80_0000; // overflow to ±inf
        }
        let frac32 = ((rounded as u32) << (23 - mant_bits)) & 0x7F_FFFF;
        return sign | (((e + 127) as u32) << 23) | frac32;
    }
    // Subnormal-range result: `rounded` is in units of 2^(e_min - mant_bits).
    let scale = e_min - mant_bits as i32;
    let lead = 63 - rounded.leading_zeros() as i32;
    let new_e = lead + scale;
    if new_e >= -126 {
        // Normal as an f32 (includes rounding up to the format's
        // smallest normal).
        let frac32 = ((rounded << (23 - lead)) as u32) & 0x7F_FFFF;
        sign | (((new_e + 127) as u32) << 23) | frac32
    } else {
        // f32-subnormal (only reachable when exp_bits == 8): the
        // format's granularity is a multiple of 2^-149, so the shift
        // is exact.
        sign | ((rounded << (scale + 149)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_a_nan() {
        // Any replaced slot, interpreted blindly as f64, must be NaN so the
        // program can never silently use it.
        for x in [0.0_f64, 1.5, -3.25e10, f64::MIN_POSITIVE, 1e300] {
            let r = replace(x);
            assert!(f64::from_bits(r).is_nan());
        }
    }

    #[test]
    fn replace_roundtrip() {
        for x in [0.0_f64, 1.0, -1.0, std::f64::consts::PI, 1e-30, -2.5e7] {
            let r = replace(x);
            assert!(is_replaced(r));
            assert_eq!(extract(r), x as f32);
            assert_eq!(read_as_f64(r), (x as f32) as f64);
        }
    }

    #[test]
    fn ordinary_doubles_are_not_flagged() {
        for x in [0.0_f64, 1.0, -1.0, f64::NAN, f64::INFINITY, 1e308, 5e-324] {
            assert!(!is_replaced(x.to_bits()));
            assert_eq!(read_as_f64(x.to_bits()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn sentinel_value_matches_paper() {
        assert_eq!(FLAG_HI, 0x7FF4DEAD);
        assert_eq!(FLAG_HI64, 0x7FF4_DEAD_0000_0000);
    }
}
