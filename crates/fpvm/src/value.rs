//! Bit-level representation of *replaced* doubles (paper §2.3, Fig. 5).
//!
//! A replaced value stores the 32 bits of the downcast single in the low
//! half of the original 64-bit slot and the sentinel `0x7FF4DEAD` in the
//! high half. The sentinel encodes a signalling-class NaN (`0x7FF4....`),
//! so a replaced value consumed by an *uninstrumented* double operation
//! never silently propagates — it poisons the result (and the interpreter
//! can optionally trap, reproducing the "anything missed causes a crash"
//! property). The low half of the sentinel, `0xDEAD`, is simply easy to
//! spot in a hex dump.

/// High 32 bits of a replaced double.
pub const FLAG_HI: u32 = 0x7FF4_DEAD;

/// The 64-bit mask form of the flag (`0x7FF4DEAD_00000000`).
pub const FLAG_HI64: u64 = (FLAG_HI as u64) << 32;

/// Mask selecting the high 32 bits of a 64-bit slot.
pub const HI_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// Is this 64-bit slot a replaced (flagged) double?
#[inline]
pub fn is_replaced(bits: u64) -> bool {
    bits & HI_MASK == FLAG_HI64
}

/// Downcast a double to single precision and store it flagged in-place.
#[inline]
pub fn replace(x: f64) -> u64 {
    FLAG_HI64 | (x as f32).to_bits() as u64
}

/// Build a flagged slot directly from single-precision bits.
#[inline]
pub fn replace_bits(s: u32) -> u64 {
    FLAG_HI64 | s as u64
}

/// Extract the single-precision payload from a flagged slot.
///
/// The caller must have checked [`is_replaced`]; on unflagged slots this
/// simply reinterprets the low 32 bits.
#[inline]
pub fn extract(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

/// Read a 64-bit slot at full precision: the flagged payload upcast to
/// double, or the slot itself as a double.
#[inline]
pub fn read_as_f64(bits: u64) -> f64 {
    if is_replaced(bits) {
        extract(bits) as f64
    } else {
        f64::from_bits(bits)
    }
}

/// Read a 64-bit slot as single precision: the flagged payload, or the
/// double rounded to single.
#[inline]
pub fn read_as_f32(bits: u64) -> f32 {
    if is_replaced(bits) {
        extract(bits)
    } else {
        f64::from_bits(bits) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_a_nan() {
        // Any replaced slot, interpreted blindly as f64, must be NaN so the
        // program can never silently use it.
        for x in [0.0_f64, 1.5, -3.25e10, f64::MIN_POSITIVE, 1e300] {
            let r = replace(x);
            assert!(f64::from_bits(r).is_nan());
        }
    }

    #[test]
    fn replace_roundtrip() {
        for x in [0.0_f64, 1.0, -1.0, std::f64::consts::PI, 1e-30, -2.5e7] {
            let r = replace(x);
            assert!(is_replaced(r));
            assert_eq!(extract(r), x as f32);
            assert_eq!(read_as_f64(r), (x as f32) as f64);
        }
    }

    #[test]
    fn ordinary_doubles_are_not_flagged() {
        for x in [0.0_f64, 1.0, -1.0, f64::NAN, f64::INFINITY, 1e308, 5e-324] {
            assert!(!is_replaced(x.to_bits()));
            assert_eq!(read_as_f64(x.to_bits()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn sentinel_value_matches_paper() {
        assert_eq!(FLAG_HI, 0x7FF4DEAD);
        assert_eq!(FLAG_HI64, 0x7FF4_DEAD_0000_0000);
    }
}
