//! Execution profiles: per-instruction execution counts.
//!
//! The search's second optimization (§2.2) prioritizes configurations that
//! replace the most frequently *executed* instructions, which requires an
//! initial profiling run; and the "dynamic replacement %" column of the
//! paper's Fig. 10 is computed from the same counts.

use crate::isa::InsnId;

/// Per-instruction execution counts, indexed by [`InsnId`].
#[derive(Debug, Clone, Default)]
pub struct Profile {
    counts: Vec<u64>,
}

impl Profile {
    /// Create a profile able to hold ids below `bound`.
    pub fn new(bound: usize) -> Self {
        Profile { counts: vec![0; bound] }
    }

    /// Record one execution of `id`.
    #[inline]
    pub fn bump(&mut self, id: InsnId) {
        let i = id.0 as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Execution count of `id`.
    pub fn count(&self, id: InsnId) -> u64 {
        self.counts.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Sum of counts over a set of instruction ids.
    pub fn total_of(&self, ids: impl IntoIterator<Item = InsnId>) -> u64 {
        ids.into_iter().map(|i| self.count(i)).sum()
    }

    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another profile into this one (used when aggregating ranks).
    pub fn merge(&mut self, other: &Profile) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_merge() {
        let mut p = Profile::new(4);
        p.bump(InsnId(0));
        p.bump(InsnId(0));
        p.bump(InsnId(7)); // grows on demand
        assert_eq!(p.count(InsnId(0)), 2);
        assert_eq!(p.count(InsnId(7)), 1);
        assert_eq!(p.count(InsnId(3)), 0);
        assert_eq!(p.total(), 3);

        let mut q = Profile::new(2);
        q.bump(InsnId(1));
        q.merge(&p);
        assert_eq!(q.count(InsnId(0)), 2);
        assert_eq!(q.count(InsnId(1)), 1);
        assert_eq!(q.total(), 4);
        assert_eq!(q.total_of([InsnId(0), InsnId(7)]), 3);
    }
}
