//! Program images: modules, functions, basic blocks, and the CFG-editing
//! operations (block splitting, edge rewiring) that the instrumentation
//! layer relies on — the analogue of the Dyninst patching API the paper
//! uses (§2.4).

use crate::isa::{BlockId, FuncId, Insn, InsnId, InstKind, ModuleId, Terminator};
use std::collections::BTreeMap;

/// A module: the unit the search descends from first (compilation unit or
/// shared library analogue).
#[derive(Debug, Clone)]
pub struct Module {
    /// Module id.
    pub id: ModuleId,
    /// Human-readable name (e.g. `"cg"` or `"libmath"`).
    pub name: String,
    /// Functions contained in this module.
    pub funcs: Vec<FuncId>,
}

/// A function: an entry block plus the set of blocks it owns.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function id.
    pub id: FuncId,
    /// Human-readable name (e.g. `"main"` or `"solve"`).
    pub name: String,
    /// Owning module.
    pub module: ModuleId,
    /// Entry block.
    pub entry: BlockId,
    /// All blocks of this function, in layout order.
    pub blocks: Vec<BlockId>,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Block id.
    pub id: BlockId,
    /// Straight-line instruction sequence.
    pub insns: Vec<Insn>,
    /// The single exit point.
    pub term: Terminator,
}

/// A complete program image: code, initial data, memory layout, and the
/// symbol table harnesses use to locate input/output arrays.
#[derive(Debug, Clone)]
pub struct Program {
    /// Modules, indexed by [`ModuleId`].
    pub modules: Vec<Module>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Block arena, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Initial contents of the data segment, loaded at address 0.
    pub globals: Vec<u8>,
    /// Total memory size in bytes (data + heap + stack).
    pub mem_size: usize,
    /// Program entry function.
    pub entry: FuncId,
    /// Named addresses in the data segment.
    pub symbols: BTreeMap<String, u64>,
    next_insn: u32,
    next_addr: u64,
}

/// Base synthetic code address; purely cosmetic, chosen to resemble the
/// addresses in the paper's example configuration (Fig. 3).
pub const CODE_BASE: u64 = 0x6f_0000;

impl Program {
    /// Create an empty program. `mem_size` must be large enough for the
    /// data segment plus stack; the default is usually set by the builder.
    pub fn new(mem_size: usize) -> Self {
        Program {
            modules: Vec::new(),
            funcs: Vec::new(),
            blocks: Vec::new(),
            globals: Vec::new(),
            mem_size,
            entry: FuncId(0),
            symbols: BTreeMap::new(),
            next_insn: 0,
            next_addr: CODE_BASE,
        }
    }

    /// Add a module.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(Module { id, name: name.into(), funcs: Vec::new() });
        id
    }

    /// Add a function shell to `module`; its entry block must be set before
    /// execution (use [`Program::add_block`] then assign).
    pub fn add_function(&mut self, module: ModuleId, name: impl Into<String>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function {
            id,
            name: name.into(),
            module,
            entry: BlockId(u32::MAX),
            blocks: Vec::new(),
        });
        self.modules[module.0 as usize].funcs.push(id);
        id
    }

    /// Allocate a fresh block owned by `func`.
    pub fn add_block(&mut self, func: FuncId) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { id, insns: Vec::new(), term: Terminator::Halt });
        self.funcs[func.0 as usize].blocks.push(id);
        id
    }

    /// Mint a fresh instruction with a new id and synthetic address.
    pub fn mk_insn(&mut self, kind: InstKind) -> Insn {
        let id = InsnId(self.next_insn);
        self.next_insn += 1;
        let addr = self.next_addr;
        self.next_addr += 4 + (id.0 as u64 % 5); // irregular strides, like real code
        Insn { id, addr, origin: None, kind }
    }

    /// Mint a snippet instruction attributed to original instruction `origin`.
    pub fn mk_snippet_insn(&mut self, kind: InstKind, origin: InsnId) -> Insn {
        let mut i = self.mk_insn(kind);
        i.origin = Some(origin);
        i
    }

    /// Append an instruction to a block.
    pub fn push_insn(&mut self, block: BlockId, kind: InstKind) -> InsnId {
        let insn = self.mk_insn(kind);
        let id = insn.id;
        self.blocks[block.0 as usize].insns.push(insn);
        id
    }

    /// Total number of instruction ids ever minted (original + snippets).
    pub fn insn_id_bound(&self) -> usize {
        self.next_insn as usize
    }

    /// Raise the id/address floors so freshly minted instructions never
    /// collide with instructions copied from another program — used by the
    /// binary rewriter, which preserves original ids across patching.
    pub fn reserve_ids(&mut self, id_floor: u32, addr_floor: u64) {
        self.next_insn = self.next_insn.max(id_floor);
        self.next_addr = self.next_addr.max(addr_floor);
    }

    /// The next `(insn id, address)` that [`Program::mk_insn`] would mint.
    pub fn id_cursor(&self) -> (u32, u64) {
        (self.next_insn, self.next_addr)
    }

    /// Pin the id/address cursor exactly (unlike [`Program::reserve_ids`],
    /// which only raises it). The incremental rewriter uses this to mint
    /// *deterministic* snippet ids for a candidate regardless of how many
    /// other candidates were instrumented before it, so per-block fragments
    /// are reusable across configurations.
    pub fn set_id_cursor(&mut self, next_id: u32, next_addr: u64) {
        self.next_insn = next_id;
        self.next_addr = next_addr;
    }

    /// Number of *candidate* instructions (see [`InstKind::is_candidate`]).
    pub fn candidate_count(&self) -> usize {
        self.iter_insns().filter(|(_, _, i)| i.kind.is_candidate()).count()
    }

    /// Iterate `(func, block, insn)` over the whole program in layout order.
    pub fn iter_insns(&self) -> impl Iterator<Item = (FuncId, BlockId, &Insn)> + '_ {
        self.funcs.iter().flat_map(move |f| {
            f.blocks.iter().flat_map(move |&b| {
                self.blocks[b.0 as usize].insns.iter().map(move |i| (f.id, b, i))
            })
        })
    }

    /// Look up a block.
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.0 as usize]
    }

    /// Look up a block mutably.
    pub fn block_mut(&mut self, b: BlockId) -> &mut BasicBlock {
        &mut self.blocks[b.0 as usize]
    }

    /// Look up a function.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.0 as usize]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Address of a data symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Split block `b` at instruction index `at` (0 ≤ at ≤ len): the first
    /// `at` instructions stay in `b`, the rest move to a fresh block that
    /// inherits `b`'s terminator, and `b` falls through to it.
    ///
    /// This is the primitive of the paper's basic-block patching (Fig. 7):
    /// incoming edges still reach `b`, outgoing edges leave the tail block,
    /// and the caller is free to reroute the fall-through edge through
    /// snippet blocks.
    ///
    /// Returns the id of the tail block.
    pub fn split_block(&mut self, func: FuncId, b: BlockId, at: usize) -> BlockId {
        let tail_id = BlockId(self.blocks.len() as u32);
        let blk = &mut self.blocks[b.0 as usize];
        assert!(at <= blk.insns.len(), "split index out of range");
        let tail_insns = blk.insns.split_off(at);
        let tail_term = std::mem::replace(&mut blk.term, Terminator::Jmp(tail_id));
        self.blocks.push(BasicBlock { id: tail_id, insns: tail_insns, term: tail_term });
        // Keep layout order: insert the tail right after `b` in the function.
        let f = &mut self.funcs[func.0 as usize];
        let pos = f.blocks.iter().position(|&x| x == b).expect("block not in function");
        f.blocks.insert(pos + 1, tail_id);
        tail_id
    }

    /// Structural validation: every block referenced exists, every function
    /// has a valid entry, terminators stay within the owning function, and
    /// instruction ids are unique.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for f in &self.funcs {
            if f.entry.0 == u32::MAX {
                return Err(format!("function {} has no entry block", f.name));
            }
            let owned: HashSet<BlockId> = f.blocks.iter().copied().collect();
            if !owned.contains(&f.entry) {
                return Err(format!("function {} entry not owned", f.name));
            }
            for &b in &f.blocks {
                let blk = self
                    .blocks
                    .get(b.0 as usize)
                    .ok_or_else(|| format!("dangling block id {b:?}"))?;
                for s in blk.term.successors() {
                    if !owned.contains(&s) {
                        return Err(format!(
                            "block b{} in {} jumps to b{} outside the function",
                            b.0, f.name, s.0
                        ));
                    }
                }
                for i in &blk.insns {
                    if !seen.insert(i.id) {
                        return Err(format!("duplicate insn id {:?}", i.id));
                    }
                    if let InstKind::Call { func } = i.kind {
                        if self.funcs.get(func.0 as usize).is_none() {
                            return Err(format!("call to unknown function f{}", func.0));
                        }
                    }
                }
            }
        }
        if self.funcs.get(self.entry.0 as usize).is_none() {
            return Err("entry function missing".into());
        }
        if self.globals.len() > self.mem_size {
            return Err("data segment larger than memory".into());
        }
        Ok(())
    }

    /// Render a full text disassembly (functions, blocks, instructions),
    /// mainly for debugging and documentation.
    pub fn disasm(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for m in &self.modules {
            let _ = writeln!(s, "MODULE {}:", m.name);
            for &fid in &m.funcs {
                let f = &self.funcs[fid.0 as usize];
                let _ = writeln!(s, "  FUNC {}:", f.name);
                for &b in &f.blocks {
                    let _ = writeln!(s, "    BBLK{}:", b.0);
                    for i in &self.blocks[b.0 as usize].insns {
                        let _ = writeln!(s, "      {:#x} {}", i.addr, i.kind);
                    }
                    let _ = writeln!(s, "      -> {:?}", self.blocks[b.0 as usize].term);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, FpAluOp, Gpr, IntOp, Prec, Xmm, GMI, RM};

    fn tiny() -> (Program, FuncId, BlockId) {
        let mut p = Program::new(1 << 16);
        let m = p.add_module("m");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        (p, f, b)
    }

    #[test]
    fn build_and_validate() {
        let (mut p, _f, b) = tiny();
        p.push_insn(
            b,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(1)),
            },
        );
        p.block_mut(b).term = Terminator::Halt;
        p.validate().unwrap();
        assert_eq!(p.candidate_count(), 1);
    }

    #[test]
    fn split_block_preserves_semantics_structure() {
        let (mut p, f, b) = tiny();
        for k in 0..4 {
            p.push_insn(b, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(2), src: GMI::Imm(k) });
        }
        p.block_mut(b).term = Terminator::Halt;
        let tail = p.split_block(f, b, 2);
        assert_eq!(p.block(b).insns.len(), 2);
        assert_eq!(p.block(tail).insns.len(), 2);
        assert_eq!(p.block(b).term, Terminator::Jmp(tail));
        assert_eq!(p.block(tail).term, Terminator::Halt);
        // layout order keeps tail adjacent
        let blocks = &p.func(f).blocks;
        let i = blocks.iter().position(|&x| x == b).unwrap();
        assert_eq!(blocks[i + 1], tail);
        p.validate().unwrap();
    }

    #[test]
    fn split_at_ends() {
        let (mut p, f, b) = tiny();
        p.push_insn(b, InstKind::Nop);
        p.block_mut(b).term = Terminator::Halt;
        let t0 = p.split_block(f, b, 0);
        assert!(p.block(b).insns.is_empty());
        assert_eq!(p.block(t0).insns.len(), 1);
        let t1 = p.split_block(f, t0, 1);
        assert!(p.block(t1).insns.is_empty());
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_cross_function_edges() {
        let (mut p, _f, b) = tiny();
        let m2 = p.add_module("m2");
        let f2 = p.add_function(m2, "other");
        let b2 = p.add_block(f2);
        p.funcs[f2.0 as usize].entry = b2;
        p.block_mut(b).term = Terminator::Jmp(b2);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_entry() {
        let mut p = Program::new(4096);
        let m = p.add_module("m");
        let _f = p.add_function(m, "main");
        assert!(p.validate().is_err());
    }

    #[test]
    fn branch_terminator_inside_function_ok() {
        let (mut p, f, b) = tiny();
        let b2 = p.add_block(f);
        let b3 = p.add_block(f);
        p.block_mut(b).term = Terminator::Br { cond: Cond::Eq, then_: b2, else_: b3 };
        p.block_mut(b2).term = Terminator::Halt;
        p.block_mut(b3).term = Terminator::Halt;
        p.validate().unwrap();
    }

    #[test]
    fn insn_addresses_are_unique_and_increasing() {
        let (mut p, _f, b) = tiny();
        for _ in 0..100 {
            p.push_insn(b, InstKind::Nop);
        }
        let addrs: Vec<u64> = p.block(b).insns.iter().map(|i| i.addr).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
    }
}
