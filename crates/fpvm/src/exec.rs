//! Pre-decoded execution images: the interpreter fast path.
//!
//! [`ExecImage::compile`] lowers a [`Program`] into a flat array of
//! pre-decoded operations: blocks are laid out contiguously, terminators
//! become explicit ops, branch and call targets are direct indices into
//! the array, operand forms ([`crate::isa::RM`]/[`crate::isa::GMI`]/
//! [`crate::isa::MemRef`]) are resolved into compact fixed-size
//! descriptors, and each op carries its pre-computed cycle cost, fp-op
//! flag, and instruction id. [`Vm::run_image`] then executes the image
//! with one dispatch per instruction — no per-step instruction cloning,
//! cost-model matching, or nested operand decoding.
//!
//! The fast path is required to be *bit-identical* to the reference
//! interpreter ([`Vm::run`]): same [`RunStats`](crate::interp::RunStats), same trap (including the
//! trapping instruction id), same final machine state, same profile. The
//! differential tests in `tests/exec_differential.rs` and the assertions
//! in the `interp_throughput` bench enforce this.

use crate::cost::CostModel;
use crate::interp::{RunOutcome, Vm};
use crate::isa::*;
use crate::program::Program;
use crate::trap::Trap;

/// A resolved floating-point location observed on the fast path: an XMM
/// register's low lanes, or an absolute memory address (operand address
/// computation already applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpLocV {
    /// XMM register index (the low 64 bits hold the scalar).
    Reg(u8),
    /// Absolute byte address of a 64-bit slot.
    Mem(u64),
}

/// One floating-point-relevant machine event, reported by the observed
/// fast path ([`Vm::run_image_observed`]) *after* the primary
/// architectural effect has been applied. Observers receive copies of the
/// values involved and can never influence the primary execution.
#[derive(Debug, Clone, Copy)]
pub enum FpEvent {
    /// Scalar double arithmetic `dst ← op(dst, src)`.
    Arith64 {
        /// Instruction id.
        insn: InsnId,
        /// The ALU operation.
        op: FpAluOp,
        /// Destination XMM register.
        dst: u8,
        /// Resolved source location.
        src: FpLocV,
        /// First (destination) operand value.
        a: f64,
        /// Second (source) operand value.
        b: f64,
        /// Result written to `dst`.
        r: f64,
    },
    /// Scalar double square root `dst ← sqrt(src)`.
    Sqrt64 {
        /// Instruction id.
        insn: InsnId,
        /// Destination XMM register.
        dst: u8,
        /// Resolved source location.
        src: FpLocV,
        /// Operand value.
        b: f64,
        /// Result written to `dst`.
        r: f64,
    },
    /// Scalar double math-library call `dst ← fun(src)`.
    Math64 {
        /// Instruction id.
        insn: InsnId,
        /// The math function.
        fun: MathFun,
        /// Destination XMM register.
        dst: u8,
        /// Resolved source location.
        src: FpLocV,
        /// Operand value.
        b: f64,
        /// Result written to `dst`.
        r: f64,
    },
    /// Widening convert `dst ← f64(value)` (`cvtss2sd`): the double result
    /// is exactly representable in single precision.
    Widen64 {
        /// Instruction id.
        insn: InsnId,
        /// Destination XMM register.
        dst: u8,
        /// The single-precision source value.
        value: f32,
    },
    /// Integer-to-double convert `dst ← f64(v)` (`cvtsi2sd`).
    Int64 {
        /// Instruction id.
        insn: InsnId,
        /// Destination XMM register.
        dst: u8,
        /// The integer source value.
        v: i64,
    },
    /// A 64-bit FP move of `bits` from `src` to `dst` (`movsd`).
    Mov64 {
        /// Resolved destination location.
        dst: FpLocV,
        /// Resolved source location.
        src: FpLocV,
        /// The moved bit pattern.
        bits: u64,
    },
    /// A write that overwrites `width` bytes at `loc` with data the
    /// observer cannot track as a scalar double: low-32 writes, packed
    /// results, 128-bit moves, integer stores. Any tracked value
    /// overlapping the written range is no longer valid.
    Clobber {
        /// Resolved written location.
        loc: FpLocV,
        /// Bytes written (4, 8, or 16).
        width: u8,
    },
}

/// An observer of floating-point events on the pre-decoded fast path.
///
/// The hook is statically gated: every event construction and `trace`
/// call in [`Vm::run_image_observed`] sits behind `if O::ENABLED`, so a
/// disabled observer (notably [`NoopObserver`], which [`Vm::run_image`]
/// uses) monomorphizes to the exact unobserved hot loop — zero cost and
/// bit-identical by construction. Observers only ever receive copies of
/// values; they cannot affect the primary execution.
pub trait ExecObserver {
    /// Statically enables event reporting. `false` compiles all
    /// observation out of the dispatch loop.
    const ENABLED: bool;

    /// Called once per FP-relevant event, after the primary architectural
    /// effect of the instruction has been applied.
    fn trace(&mut self, ev: &FpEvent);
}

/// The inert observer: [`ExecObserver::ENABLED`]` = false`, so the
/// observed fast path compiles down to the plain one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ExecObserver for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn trace(&mut self, _ev: &FpEvent) {}
}

/// A per-dispatch observer of the pre-decoded fast path, gated exactly
/// like [`ExecObserver`]: the hook call in the dispatch loop sits
/// behind `if P::ENABLED`, so [`NoopStepObserver`] (which
/// [`Vm::run_image`] and [`Vm::run_image_observed`] use) monomorphizes
/// to the exact unprofiled hot loop — zero cost and bit-identical by
/// construction (`tests/trace_differential.rs` proves it).
///
/// Unlike [`ExecObserver`], which reports *floating-point* events, this
/// hook fires once per dispatched op — including terminators, which
/// carry the `InsnId(u32::MAX)` sentinel — and is how a profiler (e.g.
/// `mptrace::profiler::InsnProfiler`) attributes interpreter time to
/// instructions.
pub trait StepObserver {
    /// Statically enables the per-step hook. `false` compiles it out of
    /// the dispatch loop.
    const ENABLED: bool;

    /// Called once per dispatched op, after step/cycle accounting, with
    /// the op's instruction id and pre-computed cycle cost.
    fn step(&mut self, insn: InsnId, cost: u64);
}

/// The inert step observer: `ENABLED = false`, so the profiled fast
/// path compiles down to the plain one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopStepObserver;

impl StepObserver for NoopStepObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn step(&mut self, _insn: InsnId, _cost: u64) {}
}

/// A numerical-health observer of the pre-decoded fast path, gated
/// exactly like [`ExecObserver`]: every hook call sits behind
/// `if N::ENABLED`, so [`NoopNumObserver`] (which [`Vm::run_image`] and
/// the other entry points use) monomorphizes to the exact unobserved hot
/// loop — zero cost and bit-identical by construction
/// (`tests/numhealth_differential.rs` proves it).
///
/// Unlike [`ExecObserver`], which reports value-tracking events for the
/// shadow subsystem, this hook reports *results*: every scalar FP
/// operation's operands and result at native width (so an `f32`
/// subnormal is classified at `f32` width, not after widening), plus
/// every reduced-format quantize ([`OpK::FpTrunc`]) with its pre- and
/// post-quantization bit patterns. A counter like
/// `mptrace`'s `NumProfiler` classifies these into NaN/Inf/underflow/
/// subnormal/saturation/flush events per instruction.
///
/// Packed lanes are not reported: the rewriter only emits scalar
/// replacements, so packed ops are never precision-interesting here.
///
/// The compiled backend inherits the observer contract of
/// [`crate::compiled`]: fused and threaded handlers execute their
/// effects internally and cannot expose per-operation values, so a
/// num-health-armed run always takes this observed fast path instead —
/// the same "observed runs never take the fused tier" fallback rule as
/// the profiler, extended one tier further. Bit-identity across the
/// tiers is what makes the fallback sound.
pub trait NumObserver {
    /// Statically enables the hooks. `false` compiles all of them out of
    /// the dispatch loop.
    const ENABLED: bool;

    /// A scalar double result `r = op(a, b)` was produced at `insn`.
    /// Unary ops (sqrt, math-library calls) pass the operand as both
    /// `a` and `b`.
    fn fp_result_f64(&mut self, insn: InsnId, a: f64, b: f64, r: f64);

    /// A scalar single result `r = op(a, b)` was produced at `insn`, at
    /// native `f32` width. Unary ops pass the operand as both `a` and
    /// `b`.
    fn fp_result_f32(&mut self, insn: InsnId, a: f32, b: f32, r: f32);

    /// A reduced-format quantize at `insn`: the `f32` payload `before`
    /// was rounded to a `mant`/`exp`-bit format, producing `after`
    /// (both as `f32` bit patterns; see
    /// [`crate::value::quantize_f32_bits`]).
    fn quantize(&mut self, insn: InsnId, mant: u8, exp: u8, before: u32, after: u32);
}

/// The inert numerical-health observer: `ENABLED = false`, so the
/// num-health fast path compiles down to the plain one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopNumObserver;

impl NumObserver for NoopNumObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn fp_result_f64(&mut self, _insn: InsnId, _a: f64, _b: f64, _r: f64) {}

    #[inline(always)]
    fn fp_result_f32(&mut self, _insn: InsnId, _a: f32, _b: f32, _r: f32) {}

    #[inline(always)]
    fn quantize(&mut self, _insn: InsnId, _mant: u8, _exp: u8, _before: u32, _after: u32) {}
}

/// Pre-resolved address mode of a memory operand.
///
/// [`MemRef`]'s optional base/index registers are discriminated here at
/// *decode* time, so the hot loop's address computation is a single match
/// on the (per-op constant, perfectly predicted) variant instead of two
/// data-dependent `NO_REG` tests per access. The compiled backend bakes
/// the variant into the selected handler function, eliminating even the
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AddrD {
    /// Absolute address (displacement only).
    Abs(u64),
    /// `gpr[base] + disp`.
    Base {
        /// Base register index.
        base: u8,
        /// Constant displacement.
        disp: i64,
    },
    /// `gpr[base] + gpr[index]*scale + disp`.
    BaseIdx {
        /// Base register index.
        base: u8,
        /// Index register index.
        index: u8,
        /// Scale factor (1, 2, 4, or 8).
        scale: u8,
        /// Constant displacement.
        disp: i64,
    },
    /// `gpr[index]*scale + disp` (no base register).
    Idx {
        /// Index register index.
        index: u8,
        /// Scale factor (1, 2, 4, or 8).
        scale: u8,
        /// Constant displacement.
        disp: i64,
    },
}

impl AddrD {
    pub(crate) fn from(m: &MemRef) -> AddrD {
        match (m.base, m.index) {
            (None, None) => AddrD::Abs(m.disp as u64),
            (Some(b), None) => AddrD::Base { base: b.0, disp: m.disp },
            (Some(b), Some((i, s))) => {
                AddrD::BaseIdx { base: b.0, index: i.0, scale: s, disp: m.disp }
            }
            (None, Some((i, s))) => AddrD::Idx { index: i.0, scale: s, disp: m.disp },
        }
    }
}

/// Pre-resolved XMM-or-memory operand.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RmD {
    Reg(u8),
    Mem(AddrD),
}

impl RmD {
    fn from(rm: &RM) -> RmD {
        match rm {
            RM::Reg(x) => RmD::Reg(x.0),
            RM::Mem(m) => RmD::Mem(AddrD::from(m)),
        }
    }
}

/// Pre-resolved GPR/memory/immediate operand.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GmiD {
    Reg(u8),
    Mem(AddrD),
    Imm(i64),
}

impl GmiD {
    fn from(g: &GMI) -> GmiD {
        match g {
            GMI::Reg(r) => GmiD::Reg(r.0),
            GMI::Mem(m) => GmiD::Mem(AddrD::from(m)),
            GMI::Imm(i) => GmiD::Imm(*i),
        }
    }
}

/// Pre-resolved FP location (XMM register or memory).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FpLocD {
    Reg(u8),
    Mem(AddrD),
}

impl FpLocD {
    fn from(l: &FpLoc) -> FpLocD {
        match l {
            FpLoc::Reg(x) => FpLocD::Reg(x.0),
            FpLoc::Mem(m) => FpLocD::Mem(AddrD::from(m)),
        }
    }
}

/// One pre-decoded operation. Precision and packing are folded into the
/// variant so the hot loop never re-matches them.
#[derive(Debug, Clone)]
pub(crate) enum OpK {
    ArithF64 {
        op: FpAluOp,
        dst: u8,
        src: RmD,
    },
    ArithF32 {
        op: FpAluOp,
        dst: u8,
        src: RmD,
    },
    ArithPd {
        op: FpAluOp,
        dst: u8,
        src: RmD,
    },
    ArithPs {
        op: FpAluOp,
        dst: u8,
        src: RmD,
    },
    SqrtF64 {
        dst: u8,
        src: RmD,
    },
    SqrtF32 {
        dst: u8,
        src: RmD,
    },
    SqrtPd {
        dst: u8,
        src: RmD,
    },
    SqrtPs {
        dst: u8,
        src: RmD,
    },
    MathF64 {
        fun: MathFun,
        dst: u8,
        src: RmD,
    },
    MathF32 {
        fun: MathFun,
        dst: u8,
        src: RmD,
    },
    UcomiF64 {
        lhs: u8,
        src: RmD,
    },
    UcomiF32 {
        lhs: u8,
        src: RmD,
    },
    CvtToF32 {
        dst: u8,
        src: RmD,
    },
    CvtToF64 {
        dst: u8,
        src: RmD,
    },
    CvtI2F64 {
        dst: u8,
        src: GmiD,
    },
    CvtI2F32 {
        dst: u8,
        src: GmiD,
    },
    CvtF64ToI {
        dst: u8,
        src: RmD,
    },
    CvtF32ToI {
        dst: u8,
        src: RmD,
    },
    MovF32 {
        dst: FpLocD,
        src: FpLocD,
    },
    MovF64 {
        dst: FpLocD,
        src: FpLocD,
    },
    MovF128 {
        dst: FpLocD,
        src: FpLocD,
    },
    FpTrunc {
        mant: u8,
        exp: u8,
        dst: u8,
        sh: u32,
    },
    PExtrQ {
        dst: u8,
        src: u8,
        sh: u32,
    },
    PInsrQ {
        dst: u8,
        src: u8,
        sh: u32,
    },
    IntAlu {
        op: IntOp,
        dst: u8,
        src: GmiD,
    },
    MovIR {
        dst: u8,
        src: GmiD,
    },
    MovIM {
        dst: AddrD,
        src: GmiD,
    },
    Cmp {
        lhs: u8,
        src: GmiD,
    },
    Test {
        lhs: u8,
        src: GmiD,
    },
    Lea {
        dst: u8,
        mem: AddrD,
    },
    Push {
        src: u8,
    },
    Pop {
        dst: u8,
    },
    /// Call with the callee's flattened entry index pre-resolved
    /// (`u32::MAX` = callee has no entry block).
    Call {
        entry: u32,
    },
    Nop,
    // Terminators, lowered to explicit ops so per-terminator step
    // accounting matches the reference interpreter exactly.
    Jmp {
        target: u32,
    },
    Br {
        cond: Cond,
        then_: u32,
        else_: u32,
    },
    Ret,
    Halt,
}

/// A pre-decoded op plus its per-step accounting, computed once at
/// compile time instead of on every dynamic execution.
#[derive(Debug, Clone)]
pub(crate) struct ExecOp {
    pub(crate) kind: OpK,
    /// Pre-computed [`CostModel::cost`] of the original instruction
    /// (0 for terminators).
    pub(crate) cost: u64,
    /// Whether the instruction counts as a dynamic fp-op.
    pub(crate) fp: bool,
    /// Original instruction id (`u32::MAX` for terminators, which have
    /// none and are never profiled).
    pub(crate) id: InsnId,
}

/// A linear execution image: the pre-decoded form of one [`Program`]
/// under one [`CostModel`]. Compile once, run many times.
#[derive(Debug, Clone)]
pub struct ExecImage {
    pub(crate) ops: Vec<ExecOp>,
    pub(crate) entry: u32,
    pub(crate) insn_bound: usize,
    pub(crate) cost: CostModel,
}

impl ExecImage {
    /// Lower `prog` to a linear image. The cost model must be the one the
    /// executing VM uses ([`Vm::run_image`] asserts this).
    pub fn compile(prog: &Program, cost: &CostModel) -> ExecImage {
        // Pass 1: assign every block a position in the flat array
        // (its instructions followed by one terminator op).
        let mut block_start = vec![u32::MAX; prog.blocks.len()];
        let mut pos: u32 = 0;
        for f in &prog.funcs {
            for &b in &f.blocks {
                block_start[b.0 as usize] = pos;
                pos += prog.block(b).insns.len() as u32 + 1;
            }
        }

        // Pass 2: emit pre-decoded ops with targets resolved to indices.
        let mut ops = Vec::with_capacity(pos as usize);
        for f in &prog.funcs {
            for &b in &f.blocks {
                let blk = prog.block(b);
                for insn in &blk.insns {
                    ops.push(ExecOp {
                        kind: Self::lower(prog, &insn.kind, &block_start),
                        cost: cost.cost(&insn.kind),
                        fp: insn.kind.is_fp_op(),
                        id: insn.id,
                    });
                }
                let kind = match &blk.term {
                    Terminator::Jmp(t) => OpK::Jmp { target: block_start[t.0 as usize] },
                    Terminator::Br { cond, then_, else_ } => OpK::Br {
                        cond: *cond,
                        then_: block_start[then_.0 as usize],
                        else_: block_start[else_.0 as usize],
                    },
                    Terminator::Ret => OpK::Ret,
                    Terminator::Halt => OpK::Halt,
                };
                ops.push(ExecOp { kind, cost: 0, fp: false, id: InsnId(u32::MAX) });
            }
        }

        let entry_block = prog.func(prog.entry).entry;
        ExecImage {
            ops,
            entry: block_start[entry_block.0 as usize],
            insn_bound: prog.insn_id_bound(),
            cost: cost.clone(),
        }
    }

    fn lower(prog: &Program, kind: &InstKind, block_start: &[u32]) -> OpK {
        match kind {
            InstKind::FpArith { op, prec, packed, dst, src } => {
                let (op, dst, src) = (*op, dst.0, RmD::from(src));
                match (prec, packed) {
                    (Prec::Double, false) => OpK::ArithF64 { op, dst, src },
                    (Prec::Single, false) => OpK::ArithF32 { op, dst, src },
                    (Prec::Double, true) => OpK::ArithPd { op, dst, src },
                    (Prec::Single, true) => OpK::ArithPs { op, dst, src },
                }
            }
            InstKind::FpSqrt { prec, packed, dst, src } => {
                let (dst, src) = (dst.0, RmD::from(src));
                match (prec, packed) {
                    (Prec::Double, false) => OpK::SqrtF64 { dst, src },
                    (Prec::Single, false) => OpK::SqrtF32 { dst, src },
                    (Prec::Double, true) => OpK::SqrtPd { dst, src },
                    (Prec::Single, true) => OpK::SqrtPs { dst, src },
                }
            }
            InstKind::FpMath { fun, prec, dst, src } => {
                let (fun, dst, src) = (*fun, dst.0, RmD::from(src));
                match prec {
                    Prec::Double => OpK::MathF64 { fun, dst, src },
                    Prec::Single => OpK::MathF32 { fun, dst, src },
                }
            }
            InstKind::FpUcomi { prec, lhs, src } => {
                let (lhs, src) = (lhs.0, RmD::from(src));
                match prec {
                    Prec::Double => OpK::UcomiF64 { lhs, src },
                    Prec::Single => OpK::UcomiF32 { lhs, src },
                }
            }
            InstKind::CvtF2F { to, dst, src } => {
                let (dst, src) = (dst.0, RmD::from(src));
                match to {
                    Prec::Single => OpK::CvtToF32 { dst, src },
                    Prec::Double => OpK::CvtToF64 { dst, src },
                }
            }
            InstKind::CvtI2F { to, dst, src } => {
                let (dst, src) = (dst.0, GmiD::from(src));
                match to {
                    Prec::Double => OpK::CvtI2F64 { dst, src },
                    Prec::Single => OpK::CvtI2F32 { dst, src },
                }
            }
            InstKind::CvtF2I { from, dst, src } => {
                let (dst, src) = (dst.0, RmD::from(src));
                match from {
                    Prec::Double => OpK::CvtF64ToI { dst, src },
                    Prec::Single => OpK::CvtF32ToI { dst, src },
                }
            }
            InstKind::MovF { width, dst, src } => {
                let (dst, src) = (FpLocD::from(dst), FpLocD::from(src));
                match width {
                    Width::W32 => OpK::MovF32 { dst, src },
                    Width::W64 => OpK::MovF64 { dst, src },
                    Width::W128 => OpK::MovF128 { dst, src },
                }
            }
            InstKind::FpTrunc { mant, exp, dst, lane } => {
                OpK::FpTrunc { mant: *mant, exp: *exp, dst: dst.0, sh: 64 * (*lane as u32 & 1) }
            }
            InstKind::PExtrQ { dst, src, lane } => {
                OpK::PExtrQ { dst: dst.0, src: src.0, sh: 64 * (*lane as u32 & 1) }
            }
            InstKind::PInsrQ { dst, src, lane } => {
                OpK::PInsrQ { dst: dst.0, src: src.0, sh: 64 * (*lane as u32 & 1) }
            }
            InstKind::IntAlu { op, dst, src } => {
                OpK::IntAlu { op: *op, dst: dst.0, src: GmiD::from(src) }
            }
            InstKind::MovI { dst, src } => match dst {
                GM::Reg(r) => OpK::MovIR { dst: r.0, src: GmiD::from(src) },
                GM::Mem(m) => OpK::MovIM { dst: AddrD::from(m), src: GmiD::from(src) },
            },
            InstKind::Cmp { lhs, src } => OpK::Cmp { lhs: lhs.0, src: GmiD::from(src) },
            InstKind::Test { lhs, src } => OpK::Test { lhs: lhs.0, src: GmiD::from(src) },
            InstKind::Lea { dst, mem } => OpK::Lea { dst: dst.0, mem: AddrD::from(mem) },
            InstKind::Push { src } => OpK::Push { src: src.0 },
            InstKind::Pop { dst } => OpK::Pop { dst: dst.0 },
            InstKind::Call { func } => {
                let entry = prog.func(*func).entry;
                let entry =
                    if entry.0 == u32::MAX { u32::MAX } else { block_start[entry.0 as usize] };
                OpK::Call { entry }
            }
            InstKind::Nop => OpK::Nop,
        }
    }

    /// Number of flattened ops (instructions + terminators).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the image contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl<'p> Vm<'p> {
    #[inline(always)]
    pub(crate) fn d_addr(&self, m: &AddrD) -> u64 {
        match m {
            AddrD::Abs(a) => *a,
            AddrD::Base { base, disp } => self.gpr[*base as usize].wrapping_add(*disp as u64),
            AddrD::BaseIdx { base, index, scale, disp } => self.gpr[*base as usize]
                .wrapping_add(self.gpr[*index as usize].wrapping_mul(*scale as u64))
                .wrapping_add(*disp as u64),
            AddrD::Idx { index, scale, disp } => {
                self.gpr[*index as usize].wrapping_mul(*scale as u64).wrapping_add(*disp as u64)
            }
        }
    }

    #[inline(always)]
    pub(crate) fn d_rm64(&self, src: &RmD) -> Result<u64, Trap> {
        match src {
            RmD::Reg(x) => Ok(self.xmm[*x as usize] as u64),
            RmD::Mem(m) => self.mem.load_u64(self.d_addr(m)),
        }
    }

    #[inline(always)]
    pub(crate) fn d_rm32(&self, src: &RmD) -> Result<u32, Trap> {
        match src {
            RmD::Reg(x) => Ok(self.xmm[*x as usize] as u32),
            RmD::Mem(m) => self.mem.load_u32(self.d_addr(m)),
        }
    }

    #[inline(always)]
    pub(crate) fn d_rm128(&self, src: &RmD) -> Result<u128, Trap> {
        match src {
            RmD::Reg(x) => Ok(self.xmm[*x as usize]),
            RmD::Mem(m) => self.mem.load_u128(self.d_addr(m)),
        }
    }

    #[inline(always)]
    pub(crate) fn d_gmi(&self, src: &GmiD) -> Result<u64, Trap> {
        match src {
            GmiD::Reg(r) => Ok(self.gpr[*r as usize]),
            GmiD::Mem(m) => self.mem.load_u64(self.d_addr(m)),
            GmiD::Imm(i) => Ok(*i as u64),
        }
    }

    #[inline(always)]
    pub(crate) fn set_lo64(&mut self, x: u8, v: u64) {
        let r = &mut self.xmm[x as usize];
        *r = (*r & !(u128::from(u64::MAX))) | u128::from(v);
    }

    #[inline(always)]
    pub(crate) fn set_lo32(&mut self, x: u8, v: u32) {
        let r = &mut self.xmm[x as usize];
        *r = (*r & !(u128::from(u32::MAX))) | u128::from(v);
    }

    /// Resolve a pre-decoded XMM-or-memory operand to an observer
    /// location (only called on the observed path).
    #[inline(always)]
    fn loc_of_rm(&self, src: &RmD) -> FpLocV {
        match src {
            RmD::Reg(x) => FpLocV::Reg(*x),
            RmD::Mem(m) => FpLocV::Mem(self.d_addr(m)),
        }
    }

    /// Resolve a pre-decoded FP location to an observer location (only
    /// called on the observed path).
    #[inline(always)]
    fn loc_of_fp(&self, l: &FpLocD) -> FpLocV {
        match l {
            FpLocD::Reg(x) => FpLocV::Reg(*x),
            FpLocD::Mem(m) => FpLocV::Mem(self.d_addr(m)),
        }
    }

    /// Run a pre-decoded image on this VM: the fast path equivalent of
    /// [`Vm::run`], bit-identical in results, stats, traps, and profile.
    ///
    /// `image` must have been compiled from the same program and cost
    /// model this VM was created with.
    pub fn run_image(&mut self, image: &ExecImage) -> RunOutcome {
        self.run_image_full(image, &mut NoopObserver, &mut NoopStepObserver)
    }

    /// [`Vm::run_image`] with an [`ExecObserver`] attached. The observer
    /// receives every FP-relevant event ([`FpEvent`]) after its primary
    /// architectural effect; it cannot change the execution, and with
    /// [`NoopObserver`] this *is* [`Vm::run_image`] (the gate is a
    /// compile-time constant).
    pub fn run_image_observed<O: ExecObserver>(
        &mut self,
        image: &ExecImage,
        obs: &mut O,
    ) -> RunOutcome {
        self.run_image_full(image, obs, &mut NoopStepObserver)
    }

    /// [`Vm::run_image`] with a [`StepObserver`] attached: the hook
    /// fires once per dispatched op with its id and cycle cost, so a
    /// profiler can attribute interpreter time to instructions. With
    /// [`NoopStepObserver`] this *is* [`Vm::run_image`].
    pub fn run_image_profiled<P: StepObserver>(
        &mut self,
        image: &ExecImage,
        prof: &mut P,
    ) -> RunOutcome {
        self.run_image_full(image, &mut NoopObserver, prof)
    }

    /// [`Vm::run_image`] with a [`NumObserver`] attached: every scalar
    /// FP result and reduced-format quantize is reported for
    /// numerical-health classification. With [`NoopNumObserver`] this
    /// *is* [`Vm::run_image`] (the gate is a compile-time constant).
    pub fn run_image_numhealth<N: NumObserver>(
        &mut self,
        image: &ExecImage,
        num: &mut N,
    ) -> RunOutcome {
        self.run_image_all(image, &mut NoopObserver, &mut NoopStepObserver, num)
    }

    /// The fast path with both classic hooks attached, each gated on
    /// its own `ENABLED` constant.
    pub fn run_image_full<O: ExecObserver, P: StepObserver>(
        &mut self,
        image: &ExecImage,
        obs: &mut O,
        prof: &mut P,
    ) -> RunOutcome {
        self.run_image_all(image, obs, prof, &mut NoopNumObserver)
    }

    /// The fully general fast path: all three hooks attached, each gated
    /// on its own `ENABLED` constant.
    pub fn run_image_all<O: ExecObserver, P: StepObserver, N: NumObserver>(
        &mut self,
        image: &ExecImage,
        obs: &mut O,
        prof: &mut P,
        num: &mut N,
    ) -> RunOutcome {
        assert_eq!(
            image.insn_bound,
            self.prog.insn_id_bound(),
            "ExecImage does not match this VM's program"
        );
        assert_eq!(image.cost, self.opts.cost, "ExecImage compiled under a different cost model");
        let result = self.run_image_inner(image, obs, prof, num);
        RunOutcome { stats: self.stats, result, profile: self.profile.take() }
    }

    fn run_image_inner<O: ExecObserver, P: StepObserver, N: NumObserver>(
        &mut self,
        image: &ExecImage,
        obs: &mut O,
        prof: &mut P,
        num: &mut N,
    ) -> Result<(), Trap> {
        let ops = &image.ops[..];
        let mut pc = image.entry as usize;
        let mut ret_stack: Vec<u32> = Vec::with_capacity(64);
        let fuel = self.opts.fuel;
        let max_call_depth = self.opts.max_call_depth;
        loop {
            if self.stats.steps >= fuel {
                return Err(Trap::FuelExhausted);
            }
            self.stats.steps += 1;
            let op = &ops[pc];
            self.stats.cycles += op.cost;
            self.stats.fp_ops += op.fp as u64;
            if let Some(p) = &mut self.profile {
                if op.id.0 != u32::MAX {
                    p.bump(op.id);
                }
            }
            if P::ENABLED {
                prof.step(op.id, op.cost);
            }
            match &op.kind {
                OpK::ArithF64 { op: o, dst, src } => {
                    let a = self.xmm[*dst as usize] as u64;
                    let b = self.d_rm64(src)?;
                    self.check_flag64(a, op.id)?;
                    self.check_flag64(b, op.id)?;
                    let r = Self::fp_alu_f64(*o, f64::from_bits(a), f64::from_bits(b));
                    self.set_lo64(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f64(op.id, f64::from_bits(a), f64::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Arith64 {
                            insn: op.id,
                            op: *o,
                            dst: *dst,
                            src: self.loc_of_rm(src),
                            a: f64::from_bits(a),
                            b: f64::from_bits(b),
                            r,
                        });
                    }
                }
                OpK::ArithF32 { op: o, dst, src } => {
                    let a = self.xmm[*dst as usize] as u32;
                    let b = self.d_rm32(src)?;
                    let r = Self::fp_alu_f32(*o, f32::from_bits(a), f32::from_bits(b));
                    self.set_lo32(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f32(op.id, f32::from_bits(a), f32::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 4 });
                    }
                }
                OpK::ArithPd { op: o, dst, src } => {
                    let a = self.xmm[*dst as usize];
                    let b = self.d_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..2 {
                        let ab = (a >> (64 * lane)) as u64;
                        let bb = (b >> (64 * lane)) as u64;
                        self.check_flag64(ab, op.id)?;
                        self.check_flag64(bb, op.id)?;
                        let r = Self::fp_alu_f64(*o, f64::from_bits(ab), f64::from_bits(bb));
                        out |= u128::from(r.to_bits()) << (64 * lane);
                    }
                    self.xmm[*dst as usize] = out;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 16 });
                    }
                }
                OpK::ArithPs { op: o, dst, src } => {
                    let a = self.xmm[*dst as usize];
                    let b = self.d_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..4 {
                        let ab = (a >> (32 * lane)) as u32;
                        let bb = (b >> (32 * lane)) as u32;
                        let r = Self::fp_alu_f32(*o, f32::from_bits(ab), f32::from_bits(bb));
                        out |= u128::from(r.to_bits()) << (32 * lane);
                    }
                    self.xmm[*dst as usize] = out;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 16 });
                    }
                }
                OpK::SqrtF64 { dst, src } => {
                    let b = self.d_rm64(src)?;
                    self.check_flag64(b, op.id)?;
                    let r = f64::from_bits(b).sqrt();
                    self.set_lo64(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f64(op.id, f64::from_bits(b), f64::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Sqrt64 {
                            insn: op.id,
                            dst: *dst,
                            src: self.loc_of_rm(src),
                            b: f64::from_bits(b),
                            r,
                        });
                    }
                }
                OpK::SqrtF32 { dst, src } => {
                    let b = self.d_rm32(src)?;
                    let r = f32::from_bits(b).sqrt();
                    self.set_lo32(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f32(op.id, f32::from_bits(b), f32::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 4 });
                    }
                }
                OpK::SqrtPd { dst, src } => {
                    let b = self.d_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..2 {
                        let bb = (b >> (64 * lane)) as u64;
                        self.check_flag64(bb, op.id)?;
                        out |= u128::from(f64::from_bits(bb).sqrt().to_bits()) << (64 * lane);
                    }
                    self.xmm[*dst as usize] = out;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 16 });
                    }
                }
                OpK::SqrtPs { dst, src } => {
                    let b = self.d_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..4 {
                        let bb = (b >> (32 * lane)) as u32;
                        out |= u128::from(f32::from_bits(bb).sqrt().to_bits()) << (32 * lane);
                    }
                    self.xmm[*dst as usize] = out;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 16 });
                    }
                }
                OpK::MathF64 { fun, dst, src } => {
                    let b = self.d_rm64(src)?;
                    self.check_flag64(b, op.id)?;
                    let r = Self::math_f64(*fun, f64::from_bits(b));
                    self.set_lo64(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f64(op.id, f64::from_bits(b), f64::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Math64 {
                            insn: op.id,
                            fun: *fun,
                            dst: *dst,
                            src: self.loc_of_rm(src),
                            b: f64::from_bits(b),
                            r,
                        });
                    }
                }
                OpK::MathF32 { fun, dst, src } => {
                    let b = self.d_rm32(src)?;
                    let r = Self::math_f32(*fun, f32::from_bits(b));
                    self.set_lo32(*dst, r.to_bits());
                    if N::ENABLED {
                        num.fp_result_f32(op.id, f32::from_bits(b), f32::from_bits(b), r);
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 4 });
                    }
                }
                OpK::UcomiF64 { lhs, src } => {
                    let a = self.xmm[*lhs as usize] as u64;
                    let b = self.d_rm64(src)?;
                    self.check_flag64(a, op.id)?;
                    self.check_flag64(b, op.id)?;
                    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                    self.set_ucomi_flags(fa, fb, fa.is_nan() || fb.is_nan());
                }
                OpK::UcomiF32 { lhs, src } => {
                    let a = f32::from_bits(self.xmm[*lhs as usize] as u32);
                    let b = f32::from_bits(self.d_rm32(src)?);
                    self.set_ucomi_flags(a as f64, b as f64, a.is_nan() || b.is_nan());
                }
                OpK::CvtToF32 { dst, src } => {
                    let b = self.d_rm64(src)?;
                    self.check_flag64(b, op.id)?;
                    self.set_lo32(*dst, (f64::from_bits(b) as f32).to_bits());
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 4 });
                    }
                }
                OpK::CvtToF64 { dst, src } => {
                    let b = self.d_rm32(src)?;
                    self.set_lo64(*dst, (f32::from_bits(b) as f64).to_bits());
                    if O::ENABLED {
                        obs.trace(&FpEvent::Widen64 {
                            insn: op.id,
                            dst: *dst,
                            value: f32::from_bits(b),
                        });
                    }
                }
                OpK::CvtI2F64 { dst, src } => {
                    let v = self.d_gmi(src)? as i64;
                    self.set_lo64(*dst, (v as f64).to_bits());
                    if O::ENABLED {
                        obs.trace(&FpEvent::Int64 { insn: op.id, dst: *dst, v });
                    }
                }
                OpK::CvtI2F32 { dst, src } => {
                    let v = self.d_gmi(src)? as i64;
                    self.set_lo32(*dst, (v as f32).to_bits());
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 4 });
                    }
                }
                OpK::CvtF64ToI { dst, src } => {
                    let b = self.d_rm64(src)?;
                    self.check_flag64(b, op.id)?;
                    self.gpr[*dst as usize] = (f64::from_bits(b) as i64) as u64;
                }
                OpK::CvtF32ToI { dst, src } => {
                    let b = self.d_rm32(src)?;
                    self.gpr[*dst as usize] = (f32::from_bits(b) as i64) as u64;
                }
                OpK::MovF32 { dst, src } => {
                    let v = match src {
                        FpLocD::Reg(x) => self.xmm[*x as usize] as u32,
                        FpLocD::Mem(m) => self.mem.load_u32(self.d_addr(m))?,
                    };
                    match dst {
                        FpLocD::Reg(x) => self.set_lo32(*x, v),
                        FpLocD::Mem(m) => self.mem.store_u32(self.d_addr(m), v)?,
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: self.loc_of_fp(dst), width: 4 });
                    }
                }
                OpK::MovF64 { dst, src } => {
                    let v = match src {
                        FpLocD::Reg(x) => self.xmm[*x as usize] as u64,
                        FpLocD::Mem(m) => self.mem.load_u64(self.d_addr(m))?,
                    };
                    match dst {
                        FpLocD::Reg(x) => self.set_lo64(*x, v),
                        FpLocD::Mem(m) => self.mem.store_u64(self.d_addr(m), v)?,
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Mov64 {
                            dst: self.loc_of_fp(dst),
                            src: self.loc_of_fp(src),
                            bits: v,
                        });
                    }
                }
                OpK::MovF128 { dst, src } => {
                    let v = match src {
                        FpLocD::Reg(x) => self.xmm[*x as usize],
                        FpLocD::Mem(m) => self.mem.load_u128(self.d_addr(m))?,
                    };
                    match dst {
                        FpLocD::Reg(x) => self.xmm[*x as usize] = v,
                        FpLocD::Mem(m) => self.mem.store_u128(self.d_addr(m), v)?,
                    }
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: self.loc_of_fp(dst), width: 16 });
                    }
                }
                OpK::FpTrunc { mant, exp, dst, sh } => {
                    let slot = (self.xmm[*dst as usize] >> sh) as u64;
                    let q = crate::value::quantize_f32_bits(slot as u32, *mant as u32, *exp as u32);
                    let r = &mut self.xmm[*dst as usize];
                    *r = (*r & !(u128::from(u64::MAX) << sh))
                        | (u128::from(crate::value::FLAG_HI64 | q as u64) << sh);
                    if N::ENABLED {
                        num.quantize(op.id, *mant, *exp, slot as u32, q);
                    }
                    // The lane now holds a re-flagged reduced payload.
                    if O::ENABLED && *sh == 0 {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 8 });
                    }
                }
                OpK::PExtrQ { dst, src, sh } => {
                    self.gpr[*dst as usize] = (self.xmm[*src as usize] >> sh) as u64;
                }
                OpK::PInsrQ { dst, src, sh } => {
                    let v = self.gpr[*src as usize];
                    let r = &mut self.xmm[*dst as usize];
                    *r = (*r & !(u128::from(u64::MAX) << sh)) | (u128::from(v) << sh);
                    // Only a low-lane insert overwrites the scalar slot.
                    if O::ENABLED && *sh == 0 {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Reg(*dst), width: 8 });
                    }
                }
                OpK::IntAlu { op: o, dst, src } => {
                    let a = self.gpr[*dst as usize];
                    let b = self.d_gmi(src)?;
                    let r = match o {
                        IntOp::Add => a.wrapping_add(b),
                        IntOp::Sub => a.wrapping_sub(b),
                        IntOp::Mul => a.wrapping_mul(b),
                        IntOp::Div => {
                            let (ai, bi) = (a as i64, b as i64);
                            if bi == 0 || (ai == i64::MIN && bi == -1) {
                                return Err(Trap::DivByZero);
                            }
                            (ai / bi) as u64
                        }
                        IntOp::Rem => {
                            let (ai, bi) = (a as i64, b as i64);
                            if bi == 0 || (ai == i64::MIN && bi == -1) {
                                return Err(Trap::DivByZero);
                            }
                            (ai % bi) as u64
                        }
                        IntOp::And => a & b,
                        IntOp::Or => a | b,
                        IntOp::Xor => a ^ b,
                        IntOp::Shl => a << (b & 63),
                        IntOp::Shr => a >> (b & 63),
                        IntOp::Sar => ((a as i64) >> (b & 63)) as u64,
                    };
                    self.gpr[*dst as usize] = r;
                }
                OpK::MovIR { dst, src } => {
                    self.gpr[*dst as usize] = self.d_gmi(src)?;
                }
                OpK::MovIM { dst, src } => {
                    let v = self.d_gmi(src)?;
                    self.mem.store_u64(self.d_addr(dst), v)?;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber {
                            loc: FpLocV::Mem(self.d_addr(dst)),
                            width: 8,
                        });
                    }
                }
                OpK::Cmp { lhs, src } => {
                    let a = self.gpr[*lhs as usize];
                    let b = self.d_gmi(src)?;
                    self.set_cmp_flags(a, b);
                }
                OpK::Test { lhs, src } => {
                    let r = self.gpr[*lhs as usize] & self.d_gmi(src)?;
                    self.set_test_flags(r);
                }
                OpK::Lea { dst, mem } => {
                    self.gpr[*dst as usize] = self.d_addr(mem);
                }
                OpK::Push { src } => {
                    let rsp = self.gpr[Gpr::RSP.0 as usize].wrapping_sub(8);
                    self.mem.store_u64(rsp, self.gpr[*src as usize])?;
                    self.gpr[Gpr::RSP.0 as usize] = rsp;
                    if O::ENABLED {
                        obs.trace(&FpEvent::Clobber { loc: FpLocV::Mem(rsp), width: 8 });
                    }
                }
                OpK::Pop { dst } => {
                    let rsp = self.gpr[Gpr::RSP.0 as usize];
                    let v = self.mem.load_u64(rsp)?;
                    self.gpr[*dst as usize] = v;
                    self.gpr[Gpr::RSP.0 as usize] = rsp.wrapping_add(8);
                }
                OpK::Call { entry } => {
                    if ret_stack.len() >= max_call_depth {
                        return Err(Trap::CallDepth);
                    }
                    if *entry == u32::MAX {
                        return Err(Trap::NoEntry);
                    }
                    ret_stack.push(pc as u32 + 1);
                    pc = *entry as usize;
                    continue;
                }
                OpK::Nop => {}
                OpK::Jmp { target } => {
                    pc = *target as usize;
                    continue;
                }
                OpK::Br { cond, then_, else_ } => {
                    pc = if self.cond_holds(*cond) { *then_ } else { *else_ } as usize;
                    continue;
                }
                OpK::Ret => match ret_stack.pop() {
                    Some(r) => {
                        pc = r as usize;
                        continue;
                    }
                    None => return Err(Trap::ReturnFromEntry),
                },
                OpK::Halt => return Ok(()),
            }
            pc += 1;
        }
    }

    #[inline(always)]
    pub(crate) fn set_ucomi_flags(&mut self, a: f64, b: f64, unordered: bool) {
        self.flags = if unordered {
            crate::interp::Flags { eq: true, lt: false, ult: true, unordered: true }
        } else {
            crate::interp::Flags { eq: a == b, lt: a < b, ult: a < b, unordered: false }
        };
    }

    #[inline(always)]
    pub(crate) fn set_cmp_flags(&mut self, a: u64, b: u64) {
        self.flags = crate::interp::Flags {
            eq: a == b,
            lt: (a as i64) < (b as i64),
            ult: a < b,
            unordered: false,
        };
    }

    #[inline(always)]
    pub(crate) fn set_test_flags(&mut self, r: u64) {
        self.flags =
            crate::interp::Flags { eq: r == 0, lt: (r as i64) < 0, ult: false, unordered: false };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Vm, VmOptions};

    /// A small program covering arithmetic, control flow, and a call.
    fn demo_prog() -> Program {
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let fmain = p.add_function(m, "main");
        let fsq = p.add_function(m, "sq");
        let bs = p.add_block(fsq);
        p.funcs[fsq.0 as usize].entry = bs;
        p.push_insn(
            bs,
            InstKind::FpArith {
                op: FpAluOp::Mul,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(0)),
            },
        );
        p.block_mut(bs).term = Terminator::Ret;

        let head = p.add_block(fmain);
        let body = p.add_block(fmain);
        let done = p.add_block(fmain);
        p.funcs[fmain.0 as usize].entry = head;
        p.entry = fmain;
        p.globals = vec![0u8; 16];
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr(2)), src: GMI::Imm(1) });
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(0) });
        p.block_mut(head).term = Terminator::Jmp(body);
        p.push_insn(
            body,
            InstKind::IntAlu { op: IntOp::Add, dst: Gpr::RAX, src: GMI::Reg(Gpr(2)) },
        );
        p.push_insn(body, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(2), src: GMI::Imm(1) });
        p.push_insn(body, InstKind::Cmp { lhs: Gpr(2), src: GMI::Imm(10) });
        p.block_mut(body).term = Terminator::Br { cond: Cond::Le, then_: body, else_: done };
        p.push_insn(
            done,
            InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Reg(Gpr::RAX) },
        );
        p.push_insn(done, InstKind::Call { func: fsq });
        p.push_insn(
            done,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(done).term = Terminator::Halt;
        p
    }

    #[test]
    fn image_matches_reference_on_demo_program() {
        let p = demo_prog();
        let image = ExecImage::compile(&p, &CostModel::default());

        let mut slow = Vm::new(&p, VmOptions { profile: true, ..Default::default() });
        let out_slow = slow.run();
        let mut fast = Vm::new(&p, VmOptions { profile: true, ..Default::default() });
        let out_fast = fast.run_image(&image);

        assert_eq!(out_slow.result, out_fast.result);
        assert_eq!(out_slow.stats.steps, out_fast.stats.steps);
        assert_eq!(out_slow.stats.fp_ops, out_fast.stats.fp_ops);
        assert_eq!(out_slow.stats.cycles, out_fast.stats.cycles);
        assert_eq!(slow.gpr, fast.gpr);
        assert_eq!(slow.xmm, fast.xmm);
        assert_eq!(slow.mem.load_u64(0).unwrap(), fast.mem.load_u64(0).unwrap());
        assert_eq!(fast.mem.read_f64_slice(0, 1).unwrap()[0], 55.0 * 55.0);
        let ps = out_slow.profile.unwrap();
        let pf = out_fast.profile.unwrap();
        for k in 0..p.insn_id_bound() {
            assert_eq!(ps.count(InsnId(k as u32)), pf.count(InsnId(k as u32)));
        }
    }

    #[test]
    fn fuel_exhaustion_matches() {
        let p = demo_prog();
        let image = ExecImage::compile(&p, &CostModel::default());
        for fuel in [0u64, 1, 5, 13, 17] {
            let o1 = Vm::new(&p, VmOptions { fuel, ..Default::default() }).run();
            let o2 = Vm::new(&p, VmOptions { fuel, ..Default::default() }).run_image(&image);
            assert_eq!(o1.result, o2.result, "fuel={fuel}");
            assert_eq!(o1.stats.steps, o2.stats.steps, "fuel={fuel}");
            assert_eq!(o1.stats.cycles, o2.stats.cycles, "fuel={fuel}");
        }
    }

    #[test]
    fn flagged_nan_trap_matches_with_insn_id() {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.globals = crate::value::replace(1.5).to_le_bytes().to_vec();
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(0)),
            },
        );
        p.block_mut(b).term = Terminator::Halt;
        let image = ExecImage::compile(&p, &CostModel::default());
        let o1 = Vm::new(&p, VmOptions::default()).run();
        let o2 = Vm::new(&p, VmOptions::default()).run_image(&image);
        assert!(matches!(o1.result, Err(Trap::FlaggedNanConsumed { .. })));
        assert_eq!(o1.result, o2.result);
        assert_eq!(o1.stats.cycles, o2.stats.cycles);
    }

    #[test]
    fn mismatched_cost_model_is_rejected() {
        let p = demo_prog();
        let image = ExecImage::compile(&p, &CostModel { call: 99, ..Default::default() });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Vm::new(&p, VmOptions::default()).run_image(&image)
        }));
        assert!(r.is_err());
    }
}
