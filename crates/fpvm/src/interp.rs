//! The interpreter: executes a [`Program`] with SSE2-faithful bit-level
//! semantics, optional profiling, a cycle cost model, and the
//! crash-on-miss trap for replaced values (§2.3).

use crate::cost::CostModel;
use crate::isa::*;
use crate::mem::Memory;
use crate::profile::Profile;
use crate::program::Program;
use crate::trap::Trap;
use crate::value::{FLAG_HI64, HI_MASK};

/// Interpreter options.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Maximum number of executed instructions before [`Trap::FuelExhausted`].
    pub fuel: u64,
    /// Trap when an uninstrumented double-precision operation consumes a
    /// replaced value (the paper's crash-on-miss property). When false the
    /// flagged NaN silently poisons the computation instead.
    pub trap_on_flag: bool,
    /// Collect a per-instruction execution profile.
    pub profile: bool,
    /// Cost model for the modelled cycle count.
    pub cost: CostModel,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            fuel: 4_000_000_000,
            trap_on_flag: true,
            profile: false,
            cost: CostModel::default(),
            max_call_depth: 1024,
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Dynamic instruction count (including terminators).
    pub steps: u64,
    /// Dynamic floating-point operation count.
    pub fp_ops: u64,
    /// Modelled cycle count under the configured [`CostModel`].
    pub cycles: u64,
}

/// The result of running a program to completion.
#[derive(Debug)]
pub struct RunOutcome {
    /// Execution statistics (valid even on trap).
    pub stats: RunStats,
    /// `Ok(())` on normal `Halt`, the trap otherwise.
    pub result: Result<(), Trap>,
    /// The execution profile, if requested.
    pub profile: Option<Profile>,
}

impl RunOutcome {
    /// True if the program halted normally.
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Fuel spent by the run: the dynamic instruction count, which is
    /// exactly what the fuel budget meters. Valid whether the run halted
    /// or trapped.
    pub fn fuel_spent(&self) -> u64 {
        self.stats.steps
    }

    /// Short stable identifier of the trap that ended the run, if any
    /// (see [`Trap::kind`]).
    pub fn trap_kind(&self) -> Option<&'static str> {
        self.result.as_ref().err().map(Trap::kind)
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Flags {
    pub(crate) eq: bool,
    pub(crate) lt: bool,
    pub(crate) ult: bool,
    pub(crate) unordered: bool,
}

/// A virtual machine executing one program.
pub struct Vm<'p> {
    pub(crate) prog: &'p Program,
    /// General-purpose registers.
    pub gpr: [u64; Gpr::COUNT],
    /// 128-bit floating-point registers.
    pub xmm: [u128; Xmm::COUNT],
    pub(crate) flags: Flags,
    /// Memory (data + heap + stack).
    pub mem: Memory,
    ret_stack: Vec<(BlockId, usize)>,
    pub(crate) opts: VmOptions,
    pub(crate) profile: Option<Profile>,
    pub(crate) stats: RunStats,
}

impl<'p> Vm<'p> {
    /// Create a VM for `prog` with the given options. The stack pointer is
    /// initialized to the top of memory.
    pub fn new(prog: &'p Program, opts: VmOptions) -> Self {
        Self::with_memory(prog, opts, Memory::new(prog.mem_size, &prog.globals))
    }

    /// Like [`Vm::new`], but recycles a caller-provided [`Memory`] buffer
    /// (re-initialized for `prog`) instead of allocating a fresh one —
    /// evaluation loops use this to avoid one large allocation per run.
    pub fn with_memory(prog: &'p Program, opts: VmOptions, mut mem: Memory) -> Self {
        mem.reset(prog.mem_size, &prog.globals);
        let mut gpr = [0u64; Gpr::COUNT];
        gpr[Gpr::RSP.0 as usize] = prog.mem_size as u64;
        let profile = opts.profile.then(|| Profile::new(prog.insn_id_bound()));
        Vm {
            prog,
            gpr,
            xmm: [0; Xmm::COUNT],
            flags: Flags::default(),
            mem,
            ret_stack: Vec::new(),
            opts,
            profile,
            stats: RunStats::default(),
        }
    }

    /// Convenience: run `prog` with `opts` from its entry function.
    pub fn run_program(prog: &Program, opts: VmOptions) -> RunOutcome {
        let mut vm = Vm::new(prog, opts);
        vm.run()
    }

    #[inline]
    pub(crate) fn mem_addr(&self, m: &MemRef) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.gpr[b.0 as usize]);
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.gpr[i.0 as usize].wrapping_mul(s as u64));
        }
        a
    }

    #[inline]
    pub(crate) fn xmm_lo64(&self, x: Xmm) -> u64 {
        self.xmm[x.0 as usize] as u64
    }

    #[inline]
    pub(crate) fn set_xmm_lo64(&mut self, x: Xmm, v: u64) {
        let r = &mut self.xmm[x.0 as usize];
        *r = (*r & !(u128::from(u64::MAX))) | u128::from(v);
    }

    #[inline]
    pub(crate) fn xmm_lo32(&self, x: Xmm) -> u32 {
        self.xmm[x.0 as usize] as u32
    }

    #[inline]
    pub(crate) fn set_xmm_lo32(&mut self, x: Xmm, v: u32) {
        let r = &mut self.xmm[x.0 as usize];
        *r = (*r & !(u128::from(u32::MAX))) | u128::from(v);
    }

    fn read_rm64(&self, src: &RM) -> Result<u64, Trap> {
        match src {
            RM::Reg(x) => Ok(self.xmm_lo64(*x)),
            RM::Mem(m) => self.mem.load_u64(self.mem_addr(m)),
        }
    }

    fn read_rm32(&self, src: &RM) -> Result<u32, Trap> {
        match src {
            RM::Reg(x) => Ok(self.xmm_lo32(*x)),
            RM::Mem(m) => self.mem.load_u32(self.mem_addr(m)),
        }
    }

    fn read_rm128(&self, src: &RM) -> Result<u128, Trap> {
        match src {
            RM::Reg(x) => Ok(self.xmm[x.0 as usize]),
            RM::Mem(m) => self.mem.load_u128(self.mem_addr(m)),
        }
    }

    fn read_gmi(&self, src: &GMI) -> Result<u64, Trap> {
        match src {
            GMI::Reg(r) => Ok(self.gpr[r.0 as usize]),
            GMI::Mem(m) => self.mem.load_u64(self.mem_addr(m)),
            GMI::Imm(i) => Ok(*i as u64),
        }
    }

    /// Crash-on-miss check: trap if a double bit pattern carries the
    /// replacement flag (only called for double-precision consumers).
    #[inline]
    pub(crate) fn check_flag64(&self, bits: u64, insn: InsnId) -> Result<(), Trap> {
        if self.opts.trap_on_flag && bits & HI_MASK == FLAG_HI64 {
            Err(Trap::FlaggedNanConsumed { insn })
        } else {
            Ok(())
        }
    }

    pub(crate) fn fp_alu_f64(op: FpAluOp, a: f64, b: f64) -> f64 {
        match op {
            FpAluOp::Add => a + b,
            FpAluOp::Sub => a - b,
            FpAluOp::Mul => a * b,
            FpAluOp::Div => a / b,
            // x86 min/max semantics: return the second source unless the
            // first compares strictly less/greater.
            FpAluOp::Min => {
                if a < b {
                    a
                } else {
                    b
                }
            }
            FpAluOp::Max => {
                if a > b {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Scalar single-precision ALU semantics (x86 `min`/`max` source
    /// preference included). Public so shadow-value analyses apply the
    /// exact operation the interpreter would.
    pub fn fp_alu_f32(op: FpAluOp, a: f32, b: f32) -> f32 {
        match op {
            FpAluOp::Add => a + b,
            FpAluOp::Sub => a - b,
            FpAluOp::Mul => a * b,
            FpAluOp::Div => a / b,
            FpAluOp::Min => {
                if a < b {
                    a
                } else {
                    b
                }
            }
            FpAluOp::Max => {
                if a > b {
                    a
                } else {
                    b
                }
            }
        }
    }

    pub(crate) fn math_f64(fun: MathFun, x: f64) -> f64 {
        match fun {
            MathFun::Sin => x.sin(),
            MathFun::Cos => x.cos(),
            MathFun::Exp => x.exp(),
            MathFun::Log => x.ln(),
            MathFun::Abs => x.abs(),
            MathFun::Neg => -x,
        }
    }

    /// Scalar single-precision math-library semantics. Public for the
    /// same reason as [`Vm::fp_alu_f32`].
    pub fn math_f32(fun: MathFun, x: f32) -> f32 {
        match fun {
            MathFun::Sin => x.sin(),
            MathFun::Cos => x.cos(),
            MathFun::Exp => x.exp(),
            MathFun::Log => x.ln(),
            MathFun::Abs => x.abs(),
            MathFun::Neg => -x,
        }
    }

    fn exec_insn(&mut self, insn: &Insn) -> Result<(), Trap> {
        if let Some(p) = &mut self.profile {
            p.bump(insn.id);
        }
        self.stats.cycles += self.opts.cost.cost(&insn.kind);
        if insn.kind.is_fp_op() {
            self.stats.fp_ops += 1;
        }
        match &insn.kind {
            InstKind::FpArith { op, prec, packed, dst, src } => match (prec, packed) {
                (Prec::Double, false) => {
                    let a = self.xmm_lo64(*dst);
                    let b = self.read_rm64(src)?;
                    self.check_flag64(a, insn.id)?;
                    self.check_flag64(b, insn.id)?;
                    let r = Self::fp_alu_f64(*op, f64::from_bits(a), f64::from_bits(b));
                    self.set_xmm_lo64(*dst, r.to_bits());
                }
                (Prec::Single, false) => {
                    let a = self.xmm_lo32(*dst);
                    let b = self.read_rm32(src)?;
                    let r = Self::fp_alu_f32(*op, f32::from_bits(a), f32::from_bits(b));
                    self.set_xmm_lo32(*dst, r.to_bits());
                }
                (Prec::Double, true) => {
                    let a = self.xmm[dst.0 as usize];
                    let b = self.read_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..2 {
                        let ab = (a >> (64 * lane)) as u64;
                        let bb = (b >> (64 * lane)) as u64;
                        self.check_flag64(ab, insn.id)?;
                        self.check_flag64(bb, insn.id)?;
                        let r = Self::fp_alu_f64(*op, f64::from_bits(ab), f64::from_bits(bb));
                        out |= u128::from(r.to_bits()) << (64 * lane);
                    }
                    self.xmm[dst.0 as usize] = out;
                }
                (Prec::Single, true) => {
                    let a = self.xmm[dst.0 as usize];
                    let b = self.read_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..4 {
                        let ab = (a >> (32 * lane)) as u32;
                        let bb = (b >> (32 * lane)) as u32;
                        let r = Self::fp_alu_f32(*op, f32::from_bits(ab), f32::from_bits(bb));
                        out |= u128::from(r.to_bits()) << (32 * lane);
                    }
                    self.xmm[dst.0 as usize] = out;
                }
            },
            InstKind::FpSqrt { prec, packed, dst, src } => match (prec, packed) {
                (Prec::Double, false) => {
                    let b = self.read_rm64(src)?;
                    self.check_flag64(b, insn.id)?;
                    self.set_xmm_lo64(*dst, f64::from_bits(b).sqrt().to_bits());
                }
                (Prec::Single, false) => {
                    let b = self.read_rm32(src)?;
                    self.set_xmm_lo32(*dst, f32::from_bits(b).sqrt().to_bits());
                }
                (Prec::Double, true) => {
                    let b = self.read_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..2 {
                        let bb = (b >> (64 * lane)) as u64;
                        self.check_flag64(bb, insn.id)?;
                        out |= u128::from(f64::from_bits(bb).sqrt().to_bits()) << (64 * lane);
                    }
                    self.xmm[dst.0 as usize] = out;
                }
                (Prec::Single, true) => {
                    let b = self.read_rm128(src)?;
                    let mut out = 0u128;
                    for lane in 0..4 {
                        let bb = (b >> (32 * lane)) as u32;
                        out |= u128::from(f32::from_bits(bb).sqrt().to_bits()) << (32 * lane);
                    }
                    self.xmm[dst.0 as usize] = out;
                }
            },
            InstKind::FpMath { fun, prec, dst, src } => match prec {
                Prec::Double => {
                    let b = self.read_rm64(src)?;
                    self.check_flag64(b, insn.id)?;
                    self.set_xmm_lo64(*dst, Self::math_f64(*fun, f64::from_bits(b)).to_bits());
                }
                Prec::Single => {
                    let b = self.read_rm32(src)?;
                    self.set_xmm_lo32(*dst, Self::math_f32(*fun, f32::from_bits(b)).to_bits());
                }
            },
            InstKind::FpUcomi { prec, lhs, src } => {
                let (a, b, unordered) = match prec {
                    Prec::Double => {
                        let a = self.xmm_lo64(*lhs);
                        let b = self.read_rm64(src)?;
                        self.check_flag64(a, insn.id)?;
                        self.check_flag64(b, insn.id)?;
                        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                        (fa, fb, fa.is_nan() || fb.is_nan())
                    }
                    Prec::Single => {
                        let a = f32::from_bits(self.xmm_lo32(*lhs));
                        let b = f32::from_bits(self.read_rm32(src)?);
                        (a as f64, b as f64, a.is_nan() || b.is_nan())
                    }
                };
                // x86 ucomis*: unordered sets ZF=PF=CF=1.
                self.flags = if unordered {
                    Flags { eq: true, lt: false, ult: true, unordered: true }
                } else {
                    Flags { eq: a == b, lt: a < b, ult: a < b, unordered: false }
                };
            }
            InstKind::CvtF2F { to, dst, src } => match to {
                Prec::Single => {
                    let b = self.read_rm64(src)?;
                    self.check_flag64(b, insn.id)?;
                    self.set_xmm_lo32(*dst, (f64::from_bits(b) as f32).to_bits());
                }
                Prec::Double => {
                    let b = self.read_rm32(src)?;
                    self.set_xmm_lo64(*dst, (f32::from_bits(b) as f64).to_bits());
                }
            },
            InstKind::CvtI2F { to, dst, src } => {
                let v = self.read_gmi(src)? as i64;
                match to {
                    Prec::Double => self.set_xmm_lo64(*dst, (v as f64).to_bits()),
                    Prec::Single => self.set_xmm_lo32(*dst, (v as f32).to_bits()),
                }
            }
            InstKind::CvtF2I { from, dst, src } => {
                let v = match from {
                    Prec::Double => {
                        let b = self.read_rm64(src)?;
                        self.check_flag64(b, insn.id)?;
                        f64::from_bits(b) as i64
                    }
                    Prec::Single => f32::from_bits(self.read_rm32(src)?) as i64,
                };
                self.gpr[dst.0 as usize] = v as u64;
            }
            InstKind::MovF { width, dst, src } => match width {
                Width::W32 => {
                    let v = match src {
                        FpLoc::Reg(x) => self.xmm_lo32(*x),
                        FpLoc::Mem(m) => self.mem.load_u32(self.mem_addr(m))?,
                    };
                    match dst {
                        FpLoc::Reg(x) => self.set_xmm_lo32(*x, v),
                        FpLoc::Mem(m) => self.mem.store_u32(self.mem_addr(m), v)?,
                    }
                }
                Width::W64 => {
                    let v = match src {
                        FpLoc::Reg(x) => self.xmm_lo64(*x),
                        FpLoc::Mem(m) => self.mem.load_u64(self.mem_addr(m))?,
                    };
                    match dst {
                        FpLoc::Reg(x) => self.set_xmm_lo64(*x, v),
                        FpLoc::Mem(m) => self.mem.store_u64(self.mem_addr(m), v)?,
                    }
                }
                Width::W128 => {
                    let v = match src {
                        FpLoc::Reg(x) => self.xmm[x.0 as usize],
                        FpLoc::Mem(m) => self.mem.load_u128(self.mem_addr(m))?,
                    };
                    match dst {
                        FpLoc::Reg(x) => self.xmm[x.0 as usize] = v,
                        FpLoc::Mem(m) => self.mem.store_u128(self.mem_addr(m), v)?,
                    }
                }
            },
            InstKind::FpTrunc { mant, exp, dst, lane } => {
                let sh = 64 * (*lane as u32 & 1);
                let slot = (self.xmm[dst.0 as usize] >> sh) as u64;
                let q = crate::value::quantize_f32_bits(slot as u32, *mant as u32, *exp as u32);
                let r = &mut self.xmm[dst.0 as usize];
                *r =
                    (*r & !(u128::from(u64::MAX) << sh)) | (u128::from(FLAG_HI64 | q as u64) << sh);
            }
            InstKind::PExtrQ { dst, src, lane } => {
                self.gpr[dst.0 as usize] =
                    (self.xmm[src.0 as usize] >> (64 * (*lane as u32 & 1))) as u64;
            }
            InstKind::PInsrQ { dst, src, lane } => {
                let sh = 64 * (*lane as u32 & 1);
                let r = &mut self.xmm[dst.0 as usize];
                *r = (*r & !(u128::from(u64::MAX) << sh))
                    | (u128::from(self.gpr[src.0 as usize]) << sh);
            }
            InstKind::IntAlu { op, dst, src } => {
                let a = self.gpr[dst.0 as usize];
                let b = self.read_gmi(src)?;
                let r = match op {
                    IntOp::Add => a.wrapping_add(b),
                    IntOp::Sub => a.wrapping_sub(b),
                    IntOp::Mul => a.wrapping_mul(b),
                    IntOp::Div => {
                        let (ai, bi) = (a as i64, b as i64);
                        if bi == 0 || (ai == i64::MIN && bi == -1) {
                            return Err(Trap::DivByZero);
                        }
                        (ai / bi) as u64
                    }
                    IntOp::Rem => {
                        let (ai, bi) = (a as i64, b as i64);
                        if bi == 0 || (ai == i64::MIN && bi == -1) {
                            return Err(Trap::DivByZero);
                        }
                        (ai % bi) as u64
                    }
                    IntOp::And => a & b,
                    IntOp::Or => a | b,
                    IntOp::Xor => a ^ b,
                    IntOp::Shl => a << (b & 63),
                    IntOp::Shr => a >> (b & 63),
                    IntOp::Sar => ((a as i64) >> (b & 63)) as u64,
                };
                self.gpr[dst.0 as usize] = r;
            }
            InstKind::MovI { dst, src } => {
                let v = self.read_gmi(src)?;
                match dst {
                    GM::Reg(r) => self.gpr[r.0 as usize] = v,
                    GM::Mem(m) => self.mem.store_u64(self.mem_addr(m), v)?,
                }
            }
            InstKind::Cmp { lhs, src } => {
                let a = self.gpr[lhs.0 as usize];
                let b = self.read_gmi(src)?;
                self.flags =
                    Flags { eq: a == b, lt: (a as i64) < (b as i64), ult: a < b, unordered: false };
            }
            InstKind::Test { lhs, src } => {
                let r = self.gpr[lhs.0 as usize] & self.read_gmi(src)?;
                self.flags = Flags { eq: r == 0, lt: (r as i64) < 0, ult: false, unordered: false };
            }
            InstKind::Lea { dst, mem } => {
                self.gpr[dst.0 as usize] = self.mem_addr(mem);
            }
            InstKind::Push { src } => {
                let rsp = self.gpr[Gpr::RSP.0 as usize].wrapping_sub(8);
                self.mem.store_u64(rsp, self.gpr[src.0 as usize])?;
                self.gpr[Gpr::RSP.0 as usize] = rsp;
            }
            InstKind::Pop { dst } => {
                let rsp = self.gpr[Gpr::RSP.0 as usize];
                let v = self.mem.load_u64(rsp)?;
                self.gpr[dst.0 as usize] = v;
                self.gpr[Gpr::RSP.0 as usize] = rsp.wrapping_add(8);
            }
            InstKind::Call { .. } | InstKind::Nop => {}
        }
        Ok(())
    }

    pub(crate) fn cond_holds(&self, c: Cond) -> bool {
        let f = self.flags;
        match c {
            Cond::Eq => f.eq,
            Cond::Ne => !f.eq,
            Cond::Lt => f.lt,
            Cond::Le => f.lt || f.eq,
            Cond::Gt => !(f.lt || f.eq),
            Cond::Ge => !f.lt,
            Cond::Below => f.ult,
            Cond::BelowEq => f.ult || f.eq,
            Cond::Above => !(f.ult || f.eq),
            Cond::AboveEq => !f.ult,
            Cond::Unordered => f.unordered,
            Cond::Ordered => !f.unordered,
        }
    }

    /// Run from the program's entry function to `Halt`, a trap, or fuel
    /// exhaustion.
    pub fn run(&mut self) -> RunOutcome {
        let entry = self.prog.func(self.prog.entry).entry;
        let result = self.run_from(entry);
        RunOutcome { stats: self.stats, result, profile: self.profile.take() }
    }

    fn run_from(&mut self, entry: BlockId) -> Result<(), Trap> {
        let mut block = entry;
        let mut idx = 0usize;
        loop {
            if self.stats.steps >= self.opts.fuel {
                return Err(Trap::FuelExhausted);
            }
            self.stats.steps += 1;
            let blk = self.prog.block(block);
            if idx < blk.insns.len() {
                let insn = &blk.insns[idx];
                if let InstKind::Call { func } = insn.kind {
                    if let Some(p) = &mut self.profile {
                        p.bump(insn.id);
                    }
                    self.stats.cycles += self.opts.cost.call;
                    if self.ret_stack.len() >= self.opts.max_call_depth {
                        return Err(Trap::CallDepth);
                    }
                    let callee = self.prog.func(func);
                    if callee.entry.0 == u32::MAX {
                        return Err(Trap::NoEntry);
                    }
                    self.ret_stack.push((block, idx + 1));
                    block = callee.entry;
                    idx = 0;
                    continue;
                }
                // Borrow dance: clone the (small) instruction so we can
                // mutate machine state. Instruction kinds are a few words.
                let insn = insn.clone();
                self.exec_insn(&insn)?;
                idx += 1;
            } else {
                match &blk.term {
                    Terminator::Jmp(b) => {
                        block = *b;
                        idx = 0;
                    }
                    Terminator::Br { cond, then_, else_ } => {
                        block = if self.cond_holds(*cond) { *then_ } else { *else_ };
                        idx = 0;
                    }
                    Terminator::Ret => match self.ret_stack.pop() {
                        Some((b, i)) => {
                            block = b;
                            idx = i;
                        }
                        None => return Err(Trap::ReturnFromEntry),
                    },
                    Terminator::Halt => return Ok(()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn prog1() -> Program {
        Program::new(1 << 16)
    }

    /// Build: main() { xmm0 = g[0]; xmm1 = g[1]; xmm0 += xmm1; store g[2]; }
    fn make_add_prog(a: f64, b: f64) -> Program {
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let blk = p.add_block(f);
        p.funcs[f.0 as usize].entry = blk;
        p.entry = f;
        p.globals = Vec::new();
        p.globals.extend_from_slice(&a.to_bits().to_le_bytes());
        p.globals.extend_from_slice(&b.to_bits().to_le_bytes());
        p.globals.extend_from_slice(&[0u8; 8]);
        p.symbols.insert("out".into(), 16);
        p.push_insn(
            blk,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            blk,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(1)),
                src: FpLoc::Mem(MemRef::abs(8)),
            },
        );
        p.push_insn(
            blk,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(1)),
            },
        );
        p.push_insn(
            blk,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(16)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(blk).term = Terminator::Halt;
        p
    }

    #[test]
    fn scalar_double_add() {
        let p = make_add_prog(1.25, 2.5);
        let out = Vm::run_program(&p, VmOptions::default());
        assert!(out.ok());
        let m = Memory::new(1, &[]);
        let _ = m; // silence
        let mut vm = Vm::new(&p, VmOptions::default());
        let o = vm.run();
        assert!(o.ok());
        assert_eq!(vm.mem.read_f64_slice(16, 1).unwrap()[0], 3.75);
        assert!(o.stats.steps > 0 && o.stats.cycles > 0);
    }

    #[test]
    fn loop_with_counter() {
        // sum 1..=10 with integer ops, convert to double, store.
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let head = p.add_block(f);
        let body = p.add_block(f);
        let done = p.add_block(f);
        p.funcs[f.0 as usize].entry = head;
        p.entry = f;
        p.globals = vec![0u8; 8];
        // rcx = counter (Gpr 2), rax = sum
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr(2)), src: GMI::Imm(1) });
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(0) });
        p.block_mut(head).term = Terminator::Jmp(body);
        p.push_insn(
            body,
            InstKind::IntAlu { op: IntOp::Add, dst: Gpr::RAX, src: GMI::Reg(Gpr(2)) },
        );
        p.push_insn(body, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(2), src: GMI::Imm(1) });
        p.push_insn(body, InstKind::Cmp { lhs: Gpr(2), src: GMI::Imm(10) });
        p.block_mut(body).term = Terminator::Br { cond: Cond::Le, then_: body, else_: done };
        p.push_insn(
            done,
            InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Reg(Gpr::RAX) },
        );
        p.push_insn(
            done,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(done).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        assert_eq!(vm.mem.read_f64_slice(0, 1).unwrap()[0], 55.0);
    }

    #[test]
    fn call_and_ret() {
        // main calls sq(x) which squares xmm0.
        let mut p = prog1();
        let m = p.add_module("t");
        let fmain = p.add_function(m, "main");
        let fsq = p.add_function(m, "sq");
        let bm = p.add_block(fmain);
        let bs = p.add_block(fsq);
        p.funcs[fmain.0 as usize].entry = bm;
        p.funcs[fsq.0 as usize].entry = bs;
        p.entry = fmain;
        p.globals = vec![0u8; 8];
        p.push_insn(
            bs,
            InstKind::FpArith {
                op: FpAluOp::Mul,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(0)),
            },
        );
        p.block_mut(bs).term = Terminator::Ret;
        p.push_insn(bm, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(7) });
        p.push_insn(
            bm,
            InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Reg(Gpr::RAX) },
        );
        p.push_insn(bm, InstKind::Call { func: fsq });
        p.push_insn(
            bm,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(bm).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        assert_eq!(vm.mem.read_f64_slice(0, 1).unwrap()[0], 49.0);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.block_mut(b).term = Terminator::Jmp(b);
        let out = Vm::run_program(&p, VmOptions { fuel: 100, ..Default::default() });
        assert_eq!(out.result, Err(Trap::FuelExhausted));
    }

    #[test]
    fn flagged_value_traps_uninstrumented_consumer() {
        let mut p = make_add_prog(0.0, 0.0);
        // poison g[0] with a replaced value
        let r = crate::value::replace(1.5);
        p.globals[..8].copy_from_slice(&r.to_le_bytes());
        let out = Vm::run_program(&p, VmOptions::default());
        assert!(matches!(out.result, Err(Trap::FlaggedNanConsumed { .. })));
        // without the trap, the NaN propagates silently
        let out = Vm::run_program(&p, VmOptions { trap_on_flag: false, ..Default::default() });
        assert!(out.ok());
        let mut vm = Vm::new(&p, VmOptions { trap_on_flag: false, ..Default::default() });
        vm.run();
        assert!(vm.mem.read_f64_slice(16, 1).unwrap()[0].is_nan());
    }

    #[test]
    fn single_ops_ignore_flags() {
        // addss on a flagged slot operates on the low 32 bits (the payload).
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        let ra = crate::value::replace(1.5);
        let rb = crate::value::replace(2.25);
        p.globals.extend_from_slice(&ra.to_le_bytes());
        p.globals.extend_from_slice(&rb.to_le_bytes());
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Single,
                packed: false,
                dst: Xmm(0),
                src: RM::Mem(MemRef::abs(8)),
            },
        );
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(b).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        let bits = vm.mem.load_u64(0).unwrap();
        // result payload is 3.75f32; high half still carries xmm0's old flag
        assert_eq!(f32::from_bits(bits as u32), 3.75);
        assert!(crate::value::is_replaced(bits));
    }

    #[test]
    fn profile_counts_executions() {
        let p = make_add_prog(1.0, 2.0);
        let out = Vm::run_program(&p, VmOptions { profile: true, ..Default::default() });
        let prof = out.profile.unwrap();
        assert_eq!(prof.total(), 4); // four instructions, once each
    }

    #[test]
    fn packed_double_roundtrip() {
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        for v in [1.5f64, 2.5, 10.0, 20.0] {
            p.globals.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b,
            InstKind::FpArith {
                op: FpAluOp::Mul,
                prec: Prec::Double,
                packed: true,
                dst: Xmm(0),
                src: RM::Mem(MemRef::abs(16)),
            },
        );
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(b).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        assert_eq!(vm.mem.read_f64_slice(0, 2).unwrap(), vec![15.0, 50.0]);
    }

    #[test]
    fn ucomi_sets_flags_for_branches() {
        for (a, b, cond, taken) in [
            (1.0f64, 2.0f64, Cond::Below, true),
            (2.0, 1.0, Cond::Below, false),
            (2.0, 2.0, Cond::Eq, true),
            (f64::NAN, 1.0, Cond::Unordered, true),
        ] {
            let mut p = prog1();
            let m = p.add_module("t");
            let f = p.add_function(m, "main");
            let blk = p.add_block(f);
            let t = p.add_block(f);
            let e = p.add_block(f);
            p.funcs[f.0 as usize].entry = blk;
            p.entry = f;
            p.globals = vec![0u8; 24];
            p.globals[..8].copy_from_slice(&a.to_bits().to_le_bytes());
            p.globals[8..16].copy_from_slice(&b.to_bits().to_le_bytes());
            p.push_insn(
                blk,
                InstKind::MovF {
                    width: Width::W64,
                    dst: FpLoc::Reg(Xmm(0)),
                    src: FpLoc::Mem(MemRef::abs(0)),
                },
            );
            p.push_insn(
                blk,
                InstKind::FpUcomi { prec: Prec::Double, lhs: Xmm(0), src: RM::Mem(MemRef::abs(8)) },
            );
            p.block_mut(blk).term = Terminator::Br { cond, then_: t, else_: e };
            p.push_insn(t, InstKind::MovI { dst: GM::Mem(MemRef::abs(16)), src: GMI::Imm(1) });
            p.block_mut(t).term = Terminator::Halt;
            p.push_insn(e, InstKind::MovI { dst: GM::Mem(MemRef::abs(16)), src: GMI::Imm(0) });
            p.block_mut(e).term = Terminator::Halt;
            let mut vm = Vm::new(&p, VmOptions::default());
            assert!(vm.run().ok());
            assert_eq!(vm.mem.load_u64(16).unwrap() == 1, taken, "a={a} b={b} cond={cond:?}");
        }
    }

    #[test]
    fn push_pop_stack_discipline() {
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.globals = vec![0u8; 8];
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(42) });
        p.push_insn(b, InstKind::Push { src: Gpr::RAX });
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(0) });
        p.push_insn(b, InstKind::Pop { dst: Gpr::RBX });
        p.push_insn(b, InstKind::MovI { dst: GM::Mem(MemRef::abs(0)), src: GMI::Reg(Gpr::RBX) });
        p.block_mut(b).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        let rsp0 = vm.gpr[Gpr::RSP.0 as usize];
        assert!(vm.run().ok());
        assert_eq!(vm.mem.load_u64(0).unwrap(), 42);
        assert_eq!(vm.gpr[Gpr::RSP.0 as usize], rsp0);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut p = prog1();
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(5) });
        p.push_insn(b, InstKind::IntAlu { op: IntOp::Div, dst: Gpr::RAX, src: GMI::Imm(0) });
        p.block_mut(b).term = Terminator::Halt;
        assert_eq!(Vm::run_program(&p, VmOptions::default()).result, Err(Trap::DivByZero));
    }
}
