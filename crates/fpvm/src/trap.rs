//! Abnormal termination conditions.

use crate::isa::InsnId;
use std::fmt;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Memory access outside the allocated address space.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: usize,
    },
    /// Integer division by zero (or `i64::MIN / -1`).
    DivByZero,
    /// The step budget was exhausted before `Halt`.
    FuelExhausted,
    /// Call stack exceeded the depth limit.
    CallDepth,
    /// An *uninstrumented* double-precision operation consumed a replaced
    /// (flagged) value — the deliberate crash-on-miss property of §2.3.
    FlaggedNanConsumed {
        /// The instruction that consumed the flagged value.
        insn: InsnId,
    },
    /// Return executed with an empty call stack.
    ReturnFromEntry,
    /// A function with no entry block was called.
    NoEntry,
}

impl Trap {
    /// A short stable identifier for the trap category, suitable for
    /// event logs and counters (no per-instance detail).
    pub fn kind(&self) -> &'static str {
        match self {
            Trap::OutOfBounds { .. } => "out-of-bounds",
            Trap::DivByZero => "div-by-zero",
            Trap::FuelExhausted => "fuel-exhausted",
            Trap::CallDepth => "call-depth",
            Trap::FlaggedNanConsumed { .. } => "flagged-nan",
            Trap::ReturnFromEntry => "return-from-entry",
            Trap::NoEntry => "no-entry",
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at {addr:#x}")
            }
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::FuelExhausted => write!(f, "instruction budget exhausted"),
            Trap::CallDepth => write!(f, "call stack overflow"),
            Trap::FlaggedNanConsumed { insn } => {
                write!(f, "uninstrumented instruction i{} consumed a replaced value", insn.0)
            }
            Trap::ReturnFromEntry => write!(f, "return with empty call stack"),
            Trap::NoEntry => write!(f, "called function has no entry block"),
        }
    }
}

impl std::error::Error for Trap {}
