//! The virtual instruction set (VIS).
//!
//! The VIS is deliberately modelled on the x86-64 SSE2 subset that the
//! paper's framework instruments: scalar and packed floating-point
//! arithmetic on 128-bit XMM registers, 64-bit general-purpose integer
//! registers, a flat byte-addressed memory, condition flags, and
//! block-structured control flow. Keeping the register/memory *bit-level*
//! semantics of SSE2 is what lets us implement the paper's in-place
//! downcast-and-flag replacement (Fig. 5) and its machine-code snippets
//! (Fig. 6) literally rather than as a semantic shortcut.

use std::fmt;

/// One of the sixteen 128-bit floating-point (XMM) registers.
///
/// Register 15 is reserved as scratch space for instrumentation snippets;
/// the `fpir` code generator never allocates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Number of XMM registers.
    pub const COUNT: usize = 16;
    /// Scratch register reserved for instrumentation snippets.
    pub const SCRATCH: Xmm = Xmm(15);
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%xmm{}", self.0)
    }
}

/// One of the sixteen 64-bit general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(pub u8);

impl Gpr {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;
    /// Conventional accumulator, first integer argument / return register.
    pub const RAX: Gpr = Gpr(0);
    /// Conventional secondary scratch register.
    pub const RBX: Gpr = Gpr(1);
    /// Stack pointer. Pushes decrement it by 8; pops increment it.
    pub const RSP: Gpr = Gpr(15);
}

static GPR_NAMES: [&str; 16] = [
    "%rax", "%rbx", "%rcx", "%rdx", "%rsi", "%rdi", "%r6", "%r7", "%r8", "%r9", "%r10", "%r11",
    "%r12", "%r13", "%r14", "%rsp",
];

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(GPR_NAMES[self.0 as usize & 15])
    }
}

/// Floating-point precision of an operation, per IEEE 754 binary32/binary64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prec {
    /// 32-bit IEEE single precision.
    Single,
    /// 64-bit IEEE double precision.
    Double,
}

impl Prec {
    /// Width of one scalar of this precision, in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Prec::Single => 4,
            Prec::Double => 8,
        }
    }

    /// Number of lanes of this precision in a 128-bit register.
    pub fn lanes(self) -> usize {
        16 / self.bytes()
    }

    /// The x86-style opcode suffix (`ss`/`sd` scalar, `ps`/`pd` packed).
    pub fn suffix(self, packed: bool) -> &'static str {
        match (self, packed) {
            (Prec::Single, false) => "ss",
            (Prec::Double, false) => "sd",
            (Prec::Single, true) => "ps",
            (Prec::Double, true) => "pd",
        }
    }
}

/// A memory reference: `disp(base, index, scale)` in AT&T notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register and scale factor (1, 2, 4, or 8), if any.
    pub index: Option<(Gpr, u8)>,
    /// Constant displacement, added to base and scaled index.
    pub disp: i64,
}

impl MemRef {
    /// An absolute reference to a fixed address.
    pub fn abs(addr: u64) -> Self {
        MemRef { base: None, index: None, disp: addr as i64 }
    }

    /// `disp(base)`.
    pub fn base_disp(base: Gpr, disp: i64) -> Self {
        MemRef { base: Some(base), index: None, disp }
    }

    /// `disp(base, index, scale)`.
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i64) -> Self {
        MemRef { base: Some(base), index: Some((index, scale)), disp }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            if self.disp < 0 {
                write!(f, "-{:#x}", self.disp.unsigned_abs())?;
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some((i, s)) = self.index {
                write!(f, ",{i},{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A floating-point source operand: register or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RM {
    /// XMM register operand.
    Reg(Xmm),
    /// Memory operand.
    Mem(MemRef),
}

impl fmt::Display for RM {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RM::Reg(x) => write!(f, "{x}"),
            RM::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// A scalar floating-point location (destination or source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpLoc {
    /// XMM register (low lane for scalar widths).
    Reg(Xmm),
    /// Memory location.
    Mem(MemRef),
}

impl fmt::Display for FpLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpLoc::Reg(x) => write!(f, "{x}"),
            FpLoc::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// An integer source operand: register, memory, or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GMI {
    /// General-purpose register.
    Reg(Gpr),
    /// 64-bit memory operand.
    Mem(MemRef),
    /// Sign-extended immediate.
    Imm(i64),
}

impl fmt::Display for GMI {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GMI::Reg(r) => write!(f, "{r}"),
            GMI::Mem(m) => write!(f, "{m}"),
            GMI::Imm(i) => write!(f, "${i:#x}"),
        }
    }
}

/// An integer destination: register or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GM {
    /// General-purpose register.
    Reg(Gpr),
    /// 64-bit memory operand.
    Mem(MemRef),
}

impl fmt::Display for GM {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GM::Reg(r) => write!(f, "{r}"),
            GM::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Binary floating-point ALU operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpAluOp {
    /// Addition (`addss`/`addsd`/`addps`/`addpd`).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// IEEE minimum (x86 `min*` semantics: returns `src` if either is NaN).
    Min,
    /// IEEE maximum (x86 `max*` semantics).
    Max,
}

impl FpAluOp {
    /// Mnemonic stem (without precision suffix).
    pub fn stem(self) -> &'static str {
        match self {
            FpAluOp::Add => "add",
            FpAluOp::Sub => "sub",
            FpAluOp::Mul => "mul",
            FpAluOp::Div => "div",
            FpAluOp::Min => "min",
            FpAluOp::Max => "max",
        }
    }
}

/// Transcendental and unary math intrinsics.
///
/// Real binaries implement these with table lookups and bit manipulation
/// inside `libm`; the paper (§2.5) observes that special handling of such
/// functions both improves performance and increases the replaceable
/// fraction. We model that special handling as precision-typed intrinsic
/// instructions, and provide a software `libm` in `fpir` for the ablation
/// that instruments the bit-twiddling implementation instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFun {
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
}

impl MathFun {
    /// Mnemonic stem.
    pub fn stem(self) -> &'static str {
        match self {
            MathFun::Sin => "fsin",
            MathFun::Cos => "fcos",
            MathFun::Exp => "fexp",
            MathFun::Log => "flog",
            MathFun::Abs => "fabs",
            MathFun::Neg => "fneg",
        }
    }
}

/// Integer ALU operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping signed multiplication.
    Mul,
    /// Signed division (traps on divide-by-zero or overflow).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (count masked to 63).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl IntOp {
    /// Mnemonic.
    pub fn stem(self) -> &'static str {
        match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::Mul => "imul",
            IntOp::Div => "idiv",
            IntOp::Rem => "irem",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Shl => "shl",
            IntOp::Shr => "shr",
            IntOp::Sar => "sar",
        }
    }
}

/// Width of an untyped data move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32 bits (`movss`-style: low lane of an XMM register).
    W32,
    /// 64 bits (`movsd`-style).
    W64,
    /// 128 bits (`movdqu`-style: whole XMM register).
    W128,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::W32 => 4,
            Width::W64 => 8,
            Width::W128 => 16,
        }
    }
}

/// Branch conditions, evaluated against the machine's flag state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal / zero.
    Eq,
    /// Not equal / not zero.
    Ne,
    /// Signed less-than (integer compares).
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below — also "less than" for `ucomis*` FP compares.
    Below,
    /// Unsigned below-or-equal.
    BelowEq,
    /// Unsigned above.
    Above,
    /// Unsigned above-or-equal.
    AboveEq,
    /// FP compare was unordered (at least one NaN).
    Unordered,
    /// FP compare was ordered.
    Ordered,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "l",
            Cond::Le => "le",
            Cond::Gt => "g",
            Cond::Ge => "ge",
            Cond::Below => "b",
            Cond::BelowEq => "be",
            Cond::Above => "a",
            Cond::AboveEq => "ae",
            Cond::Unordered => "p",
            Cond::Ordered => "np",
        };
        f.write_str(s)
    }
}

/// Identifies a basic block within a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Identifies a function within a [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a module (compilation unit / shared object analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

/// Stable identity of an instruction in the *original* program.
///
/// Instruction ids survive patching: when the rewriter copies an original
/// instruction into a patched program it keeps the id, so precision
/// configurations and profiles (which are keyed by `InsnId`) remain valid
/// across binary modification — mirroring how the paper keys configurations
/// by instruction address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InsnId(pub u32);

/// An instruction operation, without its identity.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Binary FP arithmetic: `dst = dst op src`, scalar or packed.
    FpArith {
        /// The arithmetic operation.
        op: FpAluOp,
        /// Operation precision.
        prec: Prec,
        /// If true, operate on all lanes of the 128-bit register.
        packed: bool,
        /// Destination (and left-hand) register.
        dst: Xmm,
        /// Right-hand source operand.
        src: RM,
    },
    /// Square root: `dst = sqrt(src)`.
    FpSqrt {
        /// Operation precision.
        prec: Prec,
        /// If true, per-lane square root.
        packed: bool,
        /// Destination register.
        dst: Xmm,
        /// Source operand.
        src: RM,
    },
    /// Unary math intrinsic: `dst = fun(src)` (scalar only).
    FpMath {
        /// The intrinsic function.
        fun: MathFun,
        /// Operation precision.
        prec: Prec,
        /// Destination register.
        dst: Xmm,
        /// Source operand.
        src: RM,
    },
    /// Unordered FP compare (`ucomiss`/`ucomisd`): sets flags.
    FpUcomi {
        /// Compare precision.
        prec: Prec,
        /// Left-hand register.
        lhs: Xmm,
        /// Right-hand operand.
        src: RM,
    },
    /// Precision conversion between FP formats (`cvtsd2ss`/`cvtss2sd`).
    CvtF2F {
        /// Target precision (source is the other one).
        to: Prec,
        /// Destination register.
        dst: Xmm,
        /// Source operand.
        src: RM,
    },
    /// Signed 64-bit integer to FP (`cvtsi2sd`/`cvtsi2ss`).
    CvtI2F {
        /// Target FP precision.
        to: Prec,
        /// Destination register.
        dst: Xmm,
        /// Integer source.
        src: GMI,
    },
    /// FP to signed 64-bit integer with truncation (`cvttsd2si`).
    CvtF2I {
        /// Source FP precision.
        from: Prec,
        /// Destination register.
        dst: Gpr,
        /// FP source operand.
        src: RM,
    },
    /// Untyped scalar/whole-register FP move (`movss`/`movsd`/`movdqu`).
    ///
    /// Moves copy bit patterns and never inspect replacement flags, exactly
    /// like real `mov` instructions: a flagged value travels intact.
    MovF {
        /// Move width.
        width: Width,
        /// Destination location.
        dst: FpLoc,
        /// Source location.
        src: FpLoc,
    },
    /// Quantize one 64-bit lane of an XMM register to a reduced
    /// floating-point format, in place.
    ///
    /// The lane's low 32 bits are read as an f32 payload, rounded to
    /// nearest-even into a format with `mant` explicit mantissa bits
    /// and `exp` exponent bits (see [`crate::value::quantize_f32_bits`]),
    /// and the lane is rewritten as a NaN-boxed replaced slot
    /// (`FLAG_HI64 | payload`). Instrumentation snippets emit this
    /// after the single-precision op that emulates a half/bfloat16/
    /// custom-format operation; it has no hardware analogue and is
    /// never a replacement candidate itself.
    FpTrunc {
        /// Explicit mantissa bits of the target format (≤ 23).
        mant: u8,
        /// Exponent bits of the target format (1..=8).
        exp: u8,
        /// Register whose lane is quantized and re-flagged.
        dst: Xmm,
        /// Lane index (0 or 1).
        lane: u8,
    },
    /// Extract a 64-bit lane of an XMM register into a GPR (`pextrq`).
    PExtrQ {
        /// Destination GPR.
        dst: Gpr,
        /// Source XMM register.
        src: Xmm,
        /// Lane index (0 or 1).
        lane: u8,
    },
    /// Insert a GPR into a 64-bit lane of an XMM register (`pinsrq`).
    PInsrQ {
        /// Destination XMM register.
        dst: Xmm,
        /// Source GPR.
        src: Gpr,
        /// Lane index (0 or 1).
        lane: u8,
    },
    /// Integer ALU operation: `dst = dst op src`.
    IntAlu {
        /// The operation.
        op: IntOp,
        /// Destination register.
        dst: Gpr,
        /// Source operand.
        src: GMI,
    },
    /// 64-bit integer move.
    MovI {
        /// Destination.
        dst: GM,
        /// Source.
        src: GMI,
    },
    /// Integer compare: sets flags from `lhs - src`.
    Cmp {
        /// Left-hand register.
        lhs: Gpr,
        /// Right-hand operand.
        src: GMI,
    },
    /// Integer test: sets flags from `lhs & src`.
    Test {
        /// Left-hand register.
        lhs: Gpr,
        /// Right-hand operand.
        src: GMI,
    },
    /// Load effective address.
    Lea {
        /// Destination register.
        dst: Gpr,
        /// Address expression.
        mem: MemRef,
    },
    /// Push a GPR onto the stack.
    Push {
        /// Source register.
        src: Gpr,
    },
    /// Pop a GPR from the stack.
    Pop {
        /// Destination register.
        dst: Gpr,
    },
    /// Call a function. Arguments and return values follow the `fpir`
    /// calling convention (integer args in GPR0..5, FP args in XMM0..7).
    Call {
        /// Callee.
        func: FuncId,
    },
    /// No operation.
    Nop,
}

impl InstKind {
    /// True if this instruction is a *replacement candidate* in the sense of
    /// §2.1: a double-precision floating-point operation whose opcode can be
    /// swapped for its single-precision equivalent.
    ///
    /// Moves are excluded (they are typeless bit copies); conversions from
    /// integers produce fresh unflagged doubles and are excluded; compares,
    /// arithmetic, square roots, math intrinsics and FP→int conversions all
    /// consume doubles and must be instrumented.
    pub fn is_candidate(&self) -> bool {
        matches!(
            self,
            InstKind::FpArith { prec: Prec::Double, .. }
                | InstKind::FpSqrt { prec: Prec::Double, .. }
                | InstKind::FpMath { prec: Prec::Double, .. }
                | InstKind::FpUcomi { prec: Prec::Double, .. }
                | InstKind::CvtF2I { from: Prec::Double, .. }
                | InstKind::CvtF2F { to: Prec::Single, .. }
        )
    }

    /// True for any floating-point operation (any precision), used for
    /// dynamic FP-operation counting.
    pub fn is_fp_op(&self) -> bool {
        matches!(
            self,
            InstKind::FpArith { .. }
                | InstKind::FpSqrt { .. }
                | InstKind::FpMath { .. }
                | InstKind::FpUcomi { .. }
                | InstKind::CvtF2F { .. }
                | InstKind::CvtI2F { .. }
                | InstKind::CvtF2I { .. }
                | InstKind::FpTrunc { .. }
        )
    }

    /// The memory reference this instruction reads or writes, if any.
    pub fn mem_ref(&self) -> Option<&MemRef> {
        fn rm(r: &RM) -> Option<&MemRef> {
            match r {
                RM::Mem(m) => Some(m),
                RM::Reg(_) => None,
            }
        }
        fn gmi(r: &GMI) -> Option<&MemRef> {
            match r {
                GMI::Mem(m) => Some(m),
                _ => None,
            }
        }
        match self {
            InstKind::FpArith { src, .. }
            | InstKind::FpSqrt { src, .. }
            | InstKind::FpMath { src, .. }
            | InstKind::FpUcomi { src, .. }
            | InstKind::CvtF2F { src, .. }
            | InstKind::CvtF2I { src, .. } => rm(src),
            InstKind::CvtI2F { src, .. } => gmi(src),
            InstKind::MovF { dst, src, .. } => match (dst, src) {
                (FpLoc::Mem(m), _) => Some(m),
                (_, FpLoc::Mem(m)) => Some(m),
                _ => None,
            },
            InstKind::IntAlu { src, .. }
            | InstKind::Cmp { src, .. }
            | InstKind::Test { src, .. } => gmi(src),
            InstKind::MovI { dst, src } => match (dst, src) {
                (GM::Mem(m), _) => Some(m),
                (_, GMI::Mem(m)) => Some(m),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstKind::FpArith { op, prec, packed, dst, src } => {
                write!(f, "{}{} {src}, {dst}", op.stem(), prec.suffix(*packed))
            }
            InstKind::FpSqrt { prec, packed, dst, src } => {
                write!(f, "sqrt{} {src}, {dst}", prec.suffix(*packed))
            }
            InstKind::FpMath { fun, prec, dst, src } => {
                write!(f, "{}{} {src}, {dst}", fun.stem(), prec.suffix(false))
            }
            InstKind::FpUcomi { prec, lhs, src } => {
                write!(f, "ucomi{} {src}, {lhs}", prec.suffix(false))
            }
            InstKind::CvtF2F { to: Prec::Single, dst, src } => {
                write!(f, "cvtsd2ss {src}, {dst}")
            }
            InstKind::CvtF2F { to: Prec::Double, dst, src } => {
                write!(f, "cvtss2sd {src}, {dst}")
            }
            InstKind::CvtI2F { to, dst, src } => {
                write!(f, "cvtsi2{} {src}, {dst}", to.suffix(false))
            }
            InstKind::CvtF2I { from, dst, src } => {
                write!(f, "cvtt{}2si {src}, {dst}", from.suffix(false))
            }
            InstKind::MovF { width, dst, src } => {
                let m = match width {
                    Width::W32 => "movss",
                    Width::W64 => "movsd",
                    Width::W128 => "movdqu",
                };
                write!(f, "{m} {src}, {dst}")
            }
            InstKind::FpTrunc { mant, exp, dst, lane } => {
                write!(f, "fptrunc m{mant}e{exp} ${lane}, {dst}")
            }
            InstKind::PExtrQ { dst, src, lane } => write!(f, "pextrq ${lane}, {src}, {dst}"),
            InstKind::PInsrQ { dst, src, lane } => write!(f, "pinsrq ${lane}, {src}, {dst}"),
            InstKind::IntAlu { op, dst, src } => write!(f, "{} {src}, {dst}", op.stem()),
            InstKind::MovI { dst, src } => write!(f, "mov {src}, {dst}"),
            InstKind::Cmp { lhs, src } => write!(f, "cmp {src}, {lhs}"),
            InstKind::Test { lhs, src } => write!(f, "test {src}, {lhs}"),
            InstKind::Lea { dst, mem } => write!(f, "lea {mem}, {dst}"),
            InstKind::Push { src } => write!(f, "push {src}"),
            InstKind::Pop { dst } => write!(f, "pop {dst}"),
            InstKind::Call { func } => write!(f, "call f{}", func.0),
            InstKind::Nop => write!(f, "nop"),
        }
    }
}

/// A block terminator. Control flow only leaves a basic block here, which
/// is what makes the CFG-patching in [`crate::program`] well defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch on the current flags.
    Br {
        /// Branch condition.
        cond: Cond,
        /// Target when the condition holds.
        then_: BlockId,
        /// Target when it does not.
        else_: BlockId,
    },
    /// Return from the current function.
    Ret,
    /// Stop the whole program.
    Halt,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Ret | Terminator::Halt => vec![],
        }
    }

    /// Rewrite successor ids through `f` (used by the block patcher).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jmp(b) => *b = f(*b),
            Terminator::Br { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            _ => {}
        }
    }
}

/// An instruction with its stable identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Insn {
    /// Stable id (preserved across patching for original instructions).
    pub id: InsnId,
    /// Synthetic code address, analogous to the instruction addresses in
    /// the paper's configuration files (Fig. 3).
    pub addr: u64,
    /// For snippet-generated instructions: the original instruction this
    /// snippet implements. `None` for original program instructions.
    pub origin: Option<InsnId>,
    /// The operation.
    pub kind: InstKind,
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x} \"{}\"", self.addr, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disasm_matches_att_syntax() {
        let k = InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert_eq!(k.to_string(), "addsd %xmm1, %xmm0");
        let k = InstKind::FpArith {
            op: FpAluOp::Mul,
            prec: Prec::Single,
            packed: true,
            dst: Xmm(2),
            src: RM::Mem(MemRef::base_disp(Gpr::RAX, 16)),
        };
        assert_eq!(k.to_string(), "mulps 0x10(%rax), %xmm2");
    }

    #[test]
    fn candidate_classification() {
        let add_d = InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert!(add_d.is_candidate());
        let add_s = InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Single,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert!(!add_s.is_candidate());
        let mov =
            InstKind::MovF { width: Width::W64, dst: FpLoc::Reg(Xmm(0)), src: FpLoc::Reg(Xmm(1)) };
        assert!(!mov.is_candidate());
        // int->fp conversions produce fresh doubles; not candidates.
        let cvt = InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Reg(Gpr::RAX) };
        assert!(!cvt.is_candidate());
        assert!(cvt.is_fp_op());
    }

    #[test]
    fn terminator_successor_mapping() {
        let mut t = Terminator::Br { cond: Cond::Eq, then_: BlockId(1), else_: BlockId(2) };
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn memref_display() {
        assert_eq!(MemRef::abs(0x40).to_string(), "0x40");
        assert_eq!(MemRef::base_disp(Gpr::RSP, -8).to_string(), "-0x8(%rsp)");
        assert_eq!(MemRef::base_index(Gpr::RAX, Gpr::RBX, 8, 0).to_string(), "(%rax,%rbx,8)");
    }
}
