//! The compiled execution backend: threaded code + fused superinstructions.
//!
//! [`CompiledImage::compile`] lowers a [`Program`] (via the pre-decoded
//! [`ExecImage`]) into two cooperating tiers:
//!
//! * **Threaded tier** — every op is bound at compile time to a
//!   *specialized handler function*, monomorphized per op kind ×
//!   precision × operand shape (register/absolute/base/base+index/…, ALU
//!   operation, branch condition). Operand fields are baked into a flat
//!   `CInst` record, and dispatch is one indirect call per op — no
//!   operand-form matching in the hot loop at all.
//! * **Fused tier** — maximal straight-line *regions* (runs of non-control
//!   ops ending in their control op) are recognized at compile time.
//!   Step/cycle/fp accounting is batched per region (one fuel check and
//!   three counter adds per region instead of per op), and hot idioms
//!   (load→arith, arith→store, load→arith→store, compare→branch,
//!   add→compare→branch loop latches) execute as single fused
//!   *superinstruction kernels* with intermediate values kept in locals.
//!   Anything unrecognized runs through a generic span kernel that chains
//!   the threaded handlers, so the fused tier is total.
//!
//! Both tiers are required to be **bit-identical** to [`Vm::run`] and
//! [`Vm::run_image`]: same result (including the exact trap and trapping
//! instruction id), same [`RunStats`](crate::interp::RunStats), same final
//! machine state, same profile. `tests/exec_differential.rs` proves this
//! differentially on random and instrumented programs.
//!
//! **Observer/profiler fallback contract** (tested in this module and in
//! `tests/exec_differential.rs`): fused kernels cannot attribute per-op
//! profile hits, so [`Vm::run_compiled`] uses the fused tier only for
//! plain unobserved runs (`profile == None`). Profiled runs — either the
//! VM's own `profile: true` option or an attached [`StepObserver`] via
//! [`Vm::run_compiled_profiled`] — always take the threaded tier, which
//! keeps exact per-instruction attribution. `ExecObserver`-observed runs
//! (shadow analysis) stay on [`Vm::run_image_observed`]; the selection is
//! explicit in each caller, never silent. The same rule extends one tier
//! further for numerical health: both compiled tiers execute FP effects
//! inside opaque handlers and cannot expose per-operation values, so a
//! [`crate::exec::NumObserver`]-armed run always takes
//! [`Vm::run_image_numhealth`] (the observed fast path) regardless of the
//! selected backend — sound because the tiers are bit-identical.

use crate::cost::CostModel;
use crate::exec::{
    AddrD, ExecImage, ExecOp, FpLocD, GmiD, NoopStepObserver, OpK, RmD, StepObserver,
};
use crate::interp::{RunOutcome, Vm};
use crate::isa::{Cond, FpAluOp, Gpr, InsnId, IntOp, MathFun};
use crate::program::Program;
use crate::trap::Trap;
use std::marker::PhantomData;

/// Which execution engine runs a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The reference tree-walking interpreter ([`Vm::run`]).
    Interp,
    /// The pre-decoded linear image ([`Vm::run_image`]).
    Fast,
    /// The compiled backend ([`Vm::run_compiled`]): threaded code with
    /// fused superinstruction regions.
    #[default]
    Compiled,
}

impl Backend {
    /// Parse a backend name as used by `--backend=` CLI flags.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "interp" => Some(Backend::Interp),
            "fast" => Some(Backend::Fast),
            "compiled" => Some(Backend::Compiled),
            _ => None,
        }
    }

    /// The stable name of this backend (`interp`/`fast`/`compiled`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Fast => "fast",
            Backend::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A specialized op handler: executes one op's architectural effect and
/// returns the next pc (`u32::MAX` = halt). Accounting (fuel, steps,
/// cycles, fp, profile) is the caller's job, so the same handlers serve
/// the threaded loop, the fused span kernels, and the single-step
/// fallback identically.
pub(crate) type Handler = for<'p> fn(&mut Vm<'p>, &CInst, &mut Vec<u32>, u32) -> Result<u32, Trap>;

// Operand address-mode tags, kept in `CInst` for the fused kernels (the
// threaded handlers have the mode baked into their monomorphization and
// never read these).
const M_ABS: u8 = 0;
const M_BASE: u8 = 1;
const M_BIDX: u8 = 2;
const M_IDX: u8 = 3;
const M_REG: u8 = 4;
const M_IMM: u8 = 5;

/// One compiled instruction: a flat, fixed-size record with the bound
/// handler and all operand fields pre-resolved at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CInst {
    pub(crate) run: Handler,
    /// Destination / left-hand register index (GPR or XMM, per op).
    pub(crate) a: u8,
    /// Source register index (GPR or XMM, per op).
    pub(crate) b: u8,
    /// Source operand mode tag (`M_*`), for fused kernels.
    pub(crate) s_mode: u8,
    pub(crate) s_base: u8,
    pub(crate) s_index: u8,
    pub(crate) s_scale: u8,
    /// Destination memory operand mode tag (`M_*`).
    pub(crate) d_mode: u8,
    pub(crate) d_base: u8,
    pub(crate) d_index: u8,
    pub(crate) d_scale: u8,
    /// Raw discriminant of the op's ALU operation / branch condition,
    /// for fused kernels.
    pub(crate) aux: u8,
    /// Whether the op counts as a dynamic fp-op.
    pub(crate) fp: bool,
    pub(crate) id: InsnId,
    pub(crate) s_disp: i64,
    pub(crate) d_disp: i64,
    /// Immediate operand (also the `PExtrQ`/`PInsrQ` lane shift).
    pub(crate) imm: i64,
    /// Primary control target (jump target, branch-then, call entry).
    pub(crate) t0: u32,
    /// Secondary control target (branch-else).
    pub(crate) t1: u32,
    /// Pre-computed cycle cost.
    pub(crate) cost: u64,
}

fn set_s(i: &mut CInst, a: &AddrD) -> u8 {
    match a {
        AddrD::Abs(d) => {
            i.s_disp = *d as i64;
            i.s_mode = M_ABS;
        }
        AddrD::Base { base, disp } => {
            i.s_base = *base;
            i.s_disp = *disp;
            i.s_mode = M_BASE;
        }
        AddrD::BaseIdx { base, index, scale, disp } => {
            i.s_base = *base;
            i.s_index = *index;
            i.s_scale = *scale;
            i.s_disp = *disp;
            i.s_mode = M_BIDX;
        }
        AddrD::Idx { index, scale, disp } => {
            i.s_index = *index;
            i.s_scale = *scale;
            i.s_disp = *disp;
            i.s_mode = M_IDX;
        }
    }
    i.s_mode
}

fn set_d(i: &mut CInst, a: &AddrD) -> u8 {
    match a {
        AddrD::Abs(d) => {
            i.d_disp = *d as i64;
            i.d_mode = M_ABS;
        }
        AddrD::Base { base, disp } => {
            i.d_base = *base;
            i.d_disp = *disp;
            i.d_mode = M_BASE;
        }
        AddrD::BaseIdx { base, index, scale, disp } => {
            i.d_base = *base;
            i.d_index = *index;
            i.d_scale = *scale;
            i.d_disp = *disp;
            i.d_mode = M_BIDX;
        }
        AddrD::Idx { index, scale, disp } => {
            i.d_index = *index;
            i.d_scale = *scale;
            i.d_disp = *disp;
            i.d_mode = M_IDX;
        }
    }
    i.d_mode
}

// ---------------------------------------------------------------------------
// ZST operand shapes: each combination monomorphizes a handler with the
// address computation and operand access baked in.
// ---------------------------------------------------------------------------

/// Effective-address computation, specialized per address mode. Must match
/// `Vm::d_addr` bit-for-bit (wrapping arithmetic throughout).
pub(crate) trait Ea {
    fn ea(vm: &Vm<'_>, base: u8, index: u8, scale: u8, disp: i64) -> u64;
}

pub(crate) struct EAbs;
pub(crate) struct EBase;
pub(crate) struct EBaseIdx;
pub(crate) struct EIdx;

impl Ea for EAbs {
    #[inline(always)]
    fn ea(_vm: &Vm<'_>, _b: u8, _i: u8, _s: u8, disp: i64) -> u64 {
        disp as u64
    }
}

impl Ea for EBase {
    #[inline(always)]
    fn ea(vm: &Vm<'_>, b: u8, _i: u8, _s: u8, disp: i64) -> u64 {
        vm.gpr[b as usize].wrapping_add(disp as u64)
    }
}

impl Ea for EBaseIdx {
    #[inline(always)]
    fn ea(vm: &Vm<'_>, b: u8, i: u8, s: u8, disp: i64) -> u64 {
        vm.gpr[b as usize]
            .wrapping_add(vm.gpr[i as usize].wrapping_mul(s as u64))
            .wrapping_add(disp as u64)
    }
}

impl Ea for EIdx {
    #[inline(always)]
    fn ea(vm: &Vm<'_>, _b: u8, i: u8, s: u8, disp: i64) -> u64 {
        vm.gpr[i as usize].wrapping_mul(s as u64).wrapping_add(disp as u64)
    }
}

/// XMM-or-memory source operand (the pre-decoded `RmD` shape).
pub(crate) trait XS {
    fn lo64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap>;
    fn lo32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap>;
    fn full(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap>;
}

pub(crate) struct XsReg;
pub(crate) struct XsMem<A: Ea>(PhantomData<A>);

impl XS for XsReg {
    #[inline(always)]
    fn lo64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        Ok(vm.xmm[i.b as usize] as u64)
    }
    #[inline(always)]
    fn lo32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap> {
        Ok(vm.xmm[i.b as usize] as u32)
    }
    #[inline(always)]
    fn full(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap> {
        Ok(vm.xmm[i.b as usize])
    }
}

impl<A: Ea> XS for XsMem<A> {
    #[inline(always)]
    fn lo64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        vm.mem.load_u64(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
    #[inline(always)]
    fn lo32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap> {
        vm.mem.load_u32(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
    #[inline(always)]
    fn full(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap> {
        vm.mem.load_u128(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
}

/// GPR/memory/immediate source operand (the pre-decoded `GmiD` shape).
pub(crate) trait GS {
    fn val(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap>;
}

pub(crate) struct GsReg;
pub(crate) struct GsImm;
pub(crate) struct GsMem<A: Ea>(PhantomData<A>);

impl GS for GsReg {
    #[inline(always)]
    fn val(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        Ok(vm.gpr[i.b as usize])
    }
}

impl GS for GsImm {
    #[inline(always)]
    fn val(_vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        Ok(i.imm as u64)
    }
}

impl<A: Ea> GS for GsMem<A> {
    #[inline(always)]
    fn val(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        vm.mem.load_u64(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
}

/// FP-move source (XMM register or memory, all three widths).
pub(crate) trait FSrc {
    fn g32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap>;
    fn g64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap>;
    fn g128(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap>;
}

pub(crate) struct FsReg;
pub(crate) struct FsMem<A: Ea>(PhantomData<A>);

impl FSrc for FsReg {
    #[inline(always)]
    fn g32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap> {
        Ok(vm.xmm[i.b as usize] as u32)
    }
    #[inline(always)]
    fn g64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        Ok(vm.xmm[i.b as usize] as u64)
    }
    #[inline(always)]
    fn g128(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap> {
        Ok(vm.xmm[i.b as usize])
    }
}

impl<A: Ea> FSrc for FsMem<A> {
    #[inline(always)]
    fn g32(vm: &Vm<'_>, i: &CInst) -> Result<u32, Trap> {
        vm.mem.load_u32(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
    #[inline(always)]
    fn g64(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
        vm.mem.load_u64(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
    #[inline(always)]
    fn g128(vm: &Vm<'_>, i: &CInst) -> Result<u128, Trap> {
        vm.mem.load_u128(A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp))
    }
}

/// FP-move destination (XMM register or memory, all three widths).
pub(crate) trait FDst {
    fn p32(vm: &mut Vm<'_>, i: &CInst, v: u32) -> Result<(), Trap>;
    fn p64(vm: &mut Vm<'_>, i: &CInst, v: u64) -> Result<(), Trap>;
    fn p128(vm: &mut Vm<'_>, i: &CInst, v: u128) -> Result<(), Trap>;
}

pub(crate) struct FdReg;
pub(crate) struct FdMem<A: Ea>(PhantomData<A>);

impl FDst for FdReg {
    #[inline(always)]
    fn p32(vm: &mut Vm<'_>, i: &CInst, v: u32) -> Result<(), Trap> {
        vm.set_lo32(i.a, v);
        Ok(())
    }
    #[inline(always)]
    fn p64(vm: &mut Vm<'_>, i: &CInst, v: u64) -> Result<(), Trap> {
        vm.set_lo64(i.a, v);
        Ok(())
    }
    #[inline(always)]
    fn p128(vm: &mut Vm<'_>, i: &CInst, v: u128) -> Result<(), Trap> {
        vm.xmm[i.a as usize] = v;
        Ok(())
    }
}

impl<A: Ea> FDst for FdMem<A> {
    #[inline(always)]
    fn p32(vm: &mut Vm<'_>, i: &CInst, v: u32) -> Result<(), Trap> {
        vm.mem.store_u32(A::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp), v)
    }
    #[inline(always)]
    fn p64(vm: &mut Vm<'_>, i: &CInst, v: u64) -> Result<(), Trap> {
        vm.mem.store_u64(A::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp), v)
    }
    #[inline(always)]
    fn p128(vm: &mut Vm<'_>, i: &CInst, v: u128) -> Result<(), Trap> {
        vm.mem.store_u128(A::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp), v)
    }
}

// ---------------------------------------------------------------------------
// ZST operation selectors: the handler calls the interpreter's own
// semantic function with a *constant* discriminant, so the compiler folds
// the inner match away while the semantics stay shared (and therefore
// identical) by construction.
// ---------------------------------------------------------------------------

pub(crate) trait AluSel {
    const OP: FpAluOp;
}
pub(crate) trait MathSel {
    const FUN: MathFun;
}
pub(crate) trait IntSel {
    const OP: IntOp;
}
pub(crate) trait CondSel {
    const C: Cond;
}

macro_rules! sel {
    ($tr:ident, $assoc:ident, $ty:ident, $($z:ident => $v:ident),+ $(,)?) => {
        $(pub(crate) struct $z;
        impl $tr for $z {
            const $assoc: $ty = $ty::$v;
        })+
    };
}

sel!(AluSel, OP, FpAluOp, OAdd => Add, OSub => Sub, OMul => Mul, ODiv => Div, OMin => Min, OMax => Max);
sel!(MathSel, FUN, MathFun, MSin => Sin, MCos => Cos, MExp => Exp, MLog => Log, MAbs => Abs, MNeg => Neg);
sel!(
    IntSel, OP, IntOp,
    IAdd => Add, ISub => Sub, IMul => Mul, IDiv => Div, IRem => Rem,
    IAnd => And, IOr => Or, IXor => Xor, IShl => Shl, IShr => Shr, ISar => Sar,
);
sel!(
    CondSel, C, Cond,
    CEq => Eq, CNe => Ne, CLt => Lt, CLe => Le, CGt => Gt, CGe => Ge,
    CB => Below, CBe => BelowEq, CA => Above, CAe => AboveEq, CU => Unordered, CO => Ordered,
);

/// Shared integer-ALU semantics (identical to the interpreter's match,
/// including the div/rem trap conditions).
#[inline(always)]
fn int_alu(op: IntOp, a: u64, b: u64) -> Result<u64, Trap> {
    Ok(match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Div => {
            let (ai, bi) = (a as i64, b as i64);
            if bi == 0 || (ai == i64::MIN && bi == -1) {
                return Err(Trap::DivByZero);
            }
            (ai / bi) as u64
        }
        IntOp::Rem => {
            let (ai, bi) = (a as i64, b as i64);
            if bi == 0 || (ai == i64::MIN && bi == -1) {
                return Err(Trap::DivByZero);
            }
            (ai % bi) as u64
        }
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Shl => a << (b & 63),
        IntOp::Shr => a >> (b & 63),
        IntOp::Sar => ((a as i64) >> (b & 63)) as u64,
    })
}

// ---------------------------------------------------------------------------
// Threaded-tier handlers. Each replicates the corresponding `run_image`
// arm exactly (same read order, same trap points, same writes); only the
// operand decoding has been moved to compile time.
// ---------------------------------------------------------------------------

fn h_arith_f64<O: AluSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.xmm[i.a as usize] as u64;
    let b = S::lo64(vm, i)?;
    vm.check_flag64(a, i.id)?;
    vm.check_flag64(b, i.id)?;
    let r = Vm::fp_alu_f64(O::OP, f64::from_bits(a), f64::from_bits(b));
    vm.set_lo64(i.a, r.to_bits());
    Ok(pc + 1)
}

fn h_arith_f32<O: AluSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.xmm[i.a as usize] as u32;
    let b = S::lo32(vm, i)?;
    let r = Vm::fp_alu_f32(O::OP, f32::from_bits(a), f32::from_bits(b));
    vm.set_lo32(i.a, r.to_bits());
    Ok(pc + 1)
}

fn h_arith_pd<O: AluSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.xmm[i.a as usize];
    let b = S::full(vm, i)?;
    let mut out = 0u128;
    for lane in 0..2 {
        let ab = (a >> (64 * lane)) as u64;
        let bb = (b >> (64 * lane)) as u64;
        vm.check_flag64(ab, i.id)?;
        vm.check_flag64(bb, i.id)?;
        let r = Vm::fp_alu_f64(O::OP, f64::from_bits(ab), f64::from_bits(bb));
        out |= u128::from(r.to_bits()) << (64 * lane);
    }
    vm.xmm[i.a as usize] = out;
    Ok(pc + 1)
}

fn h_arith_ps<O: AluSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.xmm[i.a as usize];
    let b = S::full(vm, i)?;
    let mut out = 0u128;
    for lane in 0..4 {
        let ab = (a >> (32 * lane)) as u32;
        let bb = (b >> (32 * lane)) as u32;
        let r = Vm::fp_alu_f32(O::OP, f32::from_bits(ab), f32::from_bits(bb));
        out |= u128::from(r.to_bits()) << (32 * lane);
    }
    vm.xmm[i.a as usize] = out;
    Ok(pc + 1)
}

fn h_sqrt_f64<S: XS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let b = S::lo64(vm, i)?;
    vm.check_flag64(b, i.id)?;
    vm.set_lo64(i.a, f64::from_bits(b).sqrt().to_bits());
    Ok(pc + 1)
}

fn h_sqrt_f32<S: XS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let b = S::lo32(vm, i)?;
    vm.set_lo32(i.a, f32::from_bits(b).sqrt().to_bits());
    Ok(pc + 1)
}

fn h_sqrt_pd<S: XS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let b = S::full(vm, i)?;
    let mut out = 0u128;
    for lane in 0..2 {
        let bb = (b >> (64 * lane)) as u64;
        vm.check_flag64(bb, i.id)?;
        out |= u128::from(f64::from_bits(bb).sqrt().to_bits()) << (64 * lane);
    }
    vm.xmm[i.a as usize] = out;
    Ok(pc + 1)
}

fn h_sqrt_ps<S: XS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let b = S::full(vm, i)?;
    let mut out = 0u128;
    for lane in 0..4 {
        let bb = (b >> (32 * lane)) as u32;
        out |= u128::from(f32::from_bits(bb).sqrt().to_bits()) << (32 * lane);
    }
    vm.xmm[i.a as usize] = out;
    Ok(pc + 1)
}

fn h_math_f64<M: MathSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo64(vm, i)?;
    vm.check_flag64(b, i.id)?;
    vm.set_lo64(i.a, Vm::math_f64(M::FUN, f64::from_bits(b)).to_bits());
    Ok(pc + 1)
}

fn h_math_f32<M: MathSel, S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo32(vm, i)?;
    vm.set_lo32(i.a, Vm::math_f32(M::FUN, f32::from_bits(b)).to_bits());
    Ok(pc + 1)
}

fn h_ucomi_f64<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.xmm[i.a as usize] as u64;
    let b = S::lo64(vm, i)?;
    vm.check_flag64(a, i.id)?;
    vm.check_flag64(b, i.id)?;
    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
    vm.set_ucomi_flags(fa, fb, fa.is_nan() || fb.is_nan());
    Ok(pc + 1)
}

fn h_ucomi_f32<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = f32::from_bits(vm.xmm[i.a as usize] as u32);
    let b = f32::from_bits(S::lo32(vm, i)?);
    vm.set_ucomi_flags(a as f64, b as f64, a.is_nan() || b.is_nan());
    Ok(pc + 1)
}

fn h_cvt_to_f32<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo64(vm, i)?;
    vm.check_flag64(b, i.id)?;
    vm.set_lo32(i.a, (f64::from_bits(b) as f32).to_bits());
    Ok(pc + 1)
}

fn h_cvt_to_f64<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo32(vm, i)?;
    vm.set_lo64(i.a, (f32::from_bits(b) as f64).to_bits());
    Ok(pc + 1)
}

fn h_cvt_i2f64<G: GS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = G::val(vm, i)? as i64;
    vm.set_lo64(i.a, (v as f64).to_bits());
    Ok(pc + 1)
}

fn h_cvt_i2f32<G: GS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = G::val(vm, i)? as i64;
    vm.set_lo32(i.a, (v as f32).to_bits());
    Ok(pc + 1)
}

fn h_cvt_f64_to_i<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo64(vm, i)?;
    vm.check_flag64(b, i.id)?;
    vm.gpr[i.a as usize] = (f64::from_bits(b) as i64) as u64;
    Ok(pc + 1)
}

fn h_cvt_f32_to_i<S: XS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let b = S::lo32(vm, i)?;
    vm.gpr[i.a as usize] = (f32::from_bits(b) as i64) as u64;
    Ok(pc + 1)
}

fn h_mov32<S: FSrc, D: FDst>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = S::g32(vm, i)?;
    D::p32(vm, i, v)?;
    Ok(pc + 1)
}

fn h_mov64<S: FSrc, D: FDst>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = S::g64(vm, i)?;
    D::p64(vm, i, v)?;
    Ok(pc + 1)
}

fn h_mov128<S: FSrc, D: FDst>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = S::g128(vm, i)?;
    D::p128(vm, i, v)?;
    Ok(pc + 1)
}

fn h_pextrq(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    vm.gpr[i.a as usize] = (vm.xmm[i.b as usize] >> (i.imm as u32)) as u64;
    Ok(pc + 1)
}

fn h_pinsrq(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let sh = i.imm as u32;
    let v = vm.gpr[i.b as usize];
    let r = &mut vm.xmm[i.a as usize];
    *r = (*r & !(u128::from(u64::MAX) << sh)) | (u128::from(v) << sh);
    Ok(pc + 1)
}

fn h_fptrunc(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let sh = i.imm as u32;
    let slot = (vm.xmm[i.a as usize] >> sh) as u64;
    let q = crate::value::quantize_f32_bits(slot as u32, i.b as u32, i.aux as u32);
    let r = &mut vm.xmm[i.a as usize];
    *r = (*r & !(u128::from(u64::MAX) << sh))
        | (u128::from(crate::value::FLAG_HI64 | q as u64) << sh);
    Ok(pc + 1)
}

fn h_int_alu<I: IntSel, G: GS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let a = vm.gpr[i.a as usize];
    let b = G::val(vm, i)?;
    vm.gpr[i.a as usize] = int_alu(I::OP, a, b)?;
    Ok(pc + 1)
}

fn h_mov_ir<G: GS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    vm.gpr[i.a as usize] = G::val(vm, i)?;
    Ok(pc + 1)
}

fn h_mov_im<A: Ea, G: GS>(
    vm: &mut Vm<'_>,
    i: &CInst,
    _rs: &mut Vec<u32>,
    pc: u32,
) -> Result<u32, Trap> {
    let v = G::val(vm, i)?;
    vm.mem.store_u64(A::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp), v)?;
    Ok(pc + 1)
}

fn h_cmp<G: GS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let a = vm.gpr[i.a as usize];
    let b = G::val(vm, i)?;
    vm.set_cmp_flags(a, b);
    Ok(pc + 1)
}

fn h_test<G: GS>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let r = vm.gpr[i.a as usize] & G::val(vm, i)?;
    vm.set_test_flags(r);
    Ok(pc + 1)
}

fn h_lea<A: Ea>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    vm.gpr[i.a as usize] = A::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp);
    Ok(pc + 1)
}

fn h_push(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let rsp = vm.gpr[Gpr::RSP.0 as usize].wrapping_sub(8);
    vm.mem.store_u64(rsp, vm.gpr[i.b as usize])?;
    vm.gpr[Gpr::RSP.0 as usize] = rsp;
    Ok(pc + 1)
}

fn h_pop(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    let rsp = vm.gpr[Gpr::RSP.0 as usize];
    let v = vm.mem.load_u64(rsp)?;
    vm.gpr[i.a as usize] = v;
    vm.gpr[Gpr::RSP.0 as usize] = rsp.wrapping_add(8);
    Ok(pc + 1)
}

fn h_call(vm: &mut Vm<'_>, i: &CInst, rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    if rs.len() >= vm.opts.max_call_depth {
        return Err(Trap::CallDepth);
    }
    if i.t0 == u32::MAX {
        return Err(Trap::NoEntry);
    }
    rs.push(pc + 1);
    Ok(i.t0)
}

fn h_nop(_vm: &mut Vm<'_>, _i: &CInst, _rs: &mut Vec<u32>, pc: u32) -> Result<u32, Trap> {
    Ok(pc + 1)
}

fn h_jmp(_vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, _pc: u32) -> Result<u32, Trap> {
    Ok(i.t0)
}

fn h_br<C: CondSel>(vm: &mut Vm<'_>, i: &CInst, _rs: &mut Vec<u32>, _pc: u32) -> Result<u32, Trap> {
    Ok(if vm.cond_holds(C::C) { i.t0 } else { i.t1 })
}

fn h_ret(_vm: &mut Vm<'_>, _i: &CInst, rs: &mut Vec<u32>, _pc: u32) -> Result<u32, Trap> {
    match rs.pop() {
        Some(r) => Ok(r),
        None => Err(Trap::ReturnFromEntry),
    }
}

fn h_halt(_vm: &mut Vm<'_>, _i: &CInst, _rs: &mut Vec<u32>, _pc: u32) -> Result<u32, Trap> {
    Ok(u32::MAX)
}

// ---------------------------------------------------------------------------
// Binding: pick the monomorphized handler for a decoded op and bake its
// operands into the `CInst`. The macros fan out over operand shapes;
// every arm yields a `Handler`.
// ---------------------------------------------------------------------------

macro_rules! xsrc {
    ($i:expr, $src:expr, $h:ident $(, $g:ty)*) => {
        match $src {
            RmD::Reg(x) => {
                $i.b = *x;
                $i.s_mode = M_REG;
                $h::<$($g,)* XsReg> as Handler
            }
            RmD::Mem(m) => match set_s(&mut $i, m) {
                M_ABS => $h::<$($g,)* XsMem<EAbs>> as Handler,
                M_BASE => $h::<$($g,)* XsMem<EBase>> as Handler,
                M_BIDX => $h::<$($g,)* XsMem<EBaseIdx>> as Handler,
                _ => $h::<$($g,)* XsMem<EIdx>> as Handler,
            },
        }
    };
}

macro_rules! gsrc {
    ($i:expr, $src:expr, $h:ident $(, $g:ty)*) => {
        match $src {
            GmiD::Reg(r) => {
                $i.b = *r;
                $i.s_mode = M_REG;
                $h::<$($g,)* GsReg> as Handler
            }
            GmiD::Imm(v) => {
                $i.imm = *v;
                $i.s_mode = M_IMM;
                $h::<$($g,)* GsImm> as Handler
            }
            GmiD::Mem(m) => match set_s(&mut $i, m) {
                M_ABS => $h::<$($g,)* GsMem<EAbs>> as Handler,
                M_BASE => $h::<$($g,)* GsMem<EBase>> as Handler,
                M_BIDX => $h::<$($g,)* GsMem<EBaseIdx>> as Handler,
                _ => $h::<$($g,)* GsMem<EIdx>> as Handler,
            },
        }
    };
}

macro_rules! alu {
    ($i:expr, $op:expr, $src:expr, $h:ident) => {
        match $op {
            FpAluOp::Add => xsrc!($i, $src, $h, OAdd),
            FpAluOp::Sub => xsrc!($i, $src, $h, OSub),
            FpAluOp::Mul => xsrc!($i, $src, $h, OMul),
            FpAluOp::Div => xsrc!($i, $src, $h, ODiv),
            FpAluOp::Min => xsrc!($i, $src, $h, OMin),
            FpAluOp::Max => xsrc!($i, $src, $h, OMax),
        }
    };
}

macro_rules! mth {
    ($i:expr, $fun:expr, $src:expr, $h:ident) => {
        match $fun {
            MathFun::Sin => xsrc!($i, $src, $h, MSin),
            MathFun::Cos => xsrc!($i, $src, $h, MCos),
            MathFun::Exp => xsrc!($i, $src, $h, MExp),
            MathFun::Log => xsrc!($i, $src, $h, MLog),
            MathFun::Abs => xsrc!($i, $src, $h, MAbs),
            MathFun::Neg => xsrc!($i, $src, $h, MNeg),
        }
    };
}

macro_rules! itm {
    ($i:expr, $op:expr, $src:expr) => {
        match $op {
            IntOp::Add => gsrc!($i, $src, h_int_alu, IAdd),
            IntOp::Sub => gsrc!($i, $src, h_int_alu, ISub),
            IntOp::Mul => gsrc!($i, $src, h_int_alu, IMul),
            IntOp::Div => gsrc!($i, $src, h_int_alu, IDiv),
            IntOp::Rem => gsrc!($i, $src, h_int_alu, IRem),
            IntOp::And => gsrc!($i, $src, h_int_alu, IAnd),
            IntOp::Or => gsrc!($i, $src, h_int_alu, IOr),
            IntOp::Xor => gsrc!($i, $src, h_int_alu, IXor),
            IntOp::Shl => gsrc!($i, $src, h_int_alu, IShl),
            IntOp::Shr => gsrc!($i, $src, h_int_alu, IShr),
            IntOp::Sar => gsrc!($i, $src, h_int_alu, ISar),
        }
    };
}

macro_rules! cnd {
    ($cond:expr) => {
        match $cond {
            Cond::Eq => h_br::<CEq> as Handler,
            Cond::Ne => h_br::<CNe> as Handler,
            Cond::Lt => h_br::<CLt> as Handler,
            Cond::Le => h_br::<CLe> as Handler,
            Cond::Gt => h_br::<CGt> as Handler,
            Cond::Ge => h_br::<CGe> as Handler,
            Cond::Below => h_br::<CB> as Handler,
            Cond::BelowEq => h_br::<CBe> as Handler,
            Cond::Above => h_br::<CA> as Handler,
            Cond::AboveEq => h_br::<CAe> as Handler,
            Cond::Unordered => h_br::<CU> as Handler,
            Cond::Ordered => h_br::<CO> as Handler,
        }
    };
}

macro_rules! fdst {
    ($i:expr, $dst:expr, $h:ident, $s:ty) => {
        match $dst {
            FpLocD::Reg(x) => {
                $i.a = *x;
                $h::<$s, FdReg> as Handler
            }
            FpLocD::Mem(m) => match set_d(&mut $i, m) {
                M_ABS => $h::<$s, FdMem<EAbs>> as Handler,
                M_BASE => $h::<$s, FdMem<EBase>> as Handler,
                M_BIDX => $h::<$s, FdMem<EBaseIdx>> as Handler,
                _ => $h::<$s, FdMem<EIdx>> as Handler,
            },
        }
    };
}

macro_rules! fmov {
    ($i:expr, $dst:expr, $src:expr, $h:ident) => {
        match $src {
            FpLocD::Reg(x) => {
                $i.b = *x;
                $i.s_mode = M_REG;
                fdst!($i, $dst, $h, FsReg)
            }
            FpLocD::Mem(m) => match set_s(&mut $i, m) {
                M_ABS => fdst!($i, $dst, $h, FsMem<EAbs>),
                M_BASE => fdst!($i, $dst, $h, FsMem<EBase>),
                M_BIDX => fdst!($i, $dst, $h, FsMem<EBaseIdx>),
                _ => fdst!($i, $dst, $h, FsMem<EIdx>),
            },
        }
    };
}

macro_rules! movim {
    ($i:expr, $dm:expr, $src:expr) => {
        match set_d(&mut $i, $dm) {
            M_ABS => gsrc!($i, $src, h_mov_im, EAbs),
            M_BASE => gsrc!($i, $src, h_mov_im, EBase),
            M_BIDX => gsrc!($i, $src, h_mov_im, EBaseIdx),
            _ => gsrc!($i, $src, h_mov_im, EIdx),
        }
    };
}

/// Lower one decoded op into a bound `CInst`.
fn bind(op: &ExecOp) -> CInst {
    let mut i = CInst {
        run: h_nop,
        a: 0,
        b: 0,
        s_mode: 0,
        s_base: 0,
        s_index: 0,
        s_scale: 0,
        d_mode: 0,
        d_base: 0,
        d_index: 0,
        d_scale: 0,
        aux: 0,
        fp: op.fp,
        id: op.id,
        s_disp: 0,
        d_disp: 0,
        imm: 0,
        t0: 0,
        t1: 0,
        cost: op.cost,
    };
    i.run = match &op.kind {
        OpK::ArithF64 { op: o, dst, src } => {
            i.a = *dst;
            i.aux = *o as u8;
            alu!(i, o, src, h_arith_f64)
        }
        OpK::ArithF32 { op: o, dst, src } => {
            i.a = *dst;
            i.aux = *o as u8;
            alu!(i, o, src, h_arith_f32)
        }
        OpK::ArithPd { op: o, dst, src } => {
            i.a = *dst;
            i.aux = *o as u8;
            alu!(i, o, src, h_arith_pd)
        }
        OpK::ArithPs { op: o, dst, src } => {
            i.a = *dst;
            i.aux = *o as u8;
            alu!(i, o, src, h_arith_ps)
        }
        OpK::SqrtF64 { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_sqrt_f64)
        }
        OpK::SqrtF32 { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_sqrt_f32)
        }
        OpK::SqrtPd { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_sqrt_pd)
        }
        OpK::SqrtPs { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_sqrt_ps)
        }
        OpK::MathF64 { fun, dst, src } => {
            i.a = *dst;
            mth!(i, fun, src, h_math_f64)
        }
        OpK::MathF32 { fun, dst, src } => {
            i.a = *dst;
            mth!(i, fun, src, h_math_f32)
        }
        OpK::UcomiF64 { lhs, src } => {
            i.a = *lhs;
            xsrc!(i, src, h_ucomi_f64)
        }
        OpK::UcomiF32 { lhs, src } => {
            i.a = *lhs;
            xsrc!(i, src, h_ucomi_f32)
        }
        OpK::CvtToF32 { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_cvt_to_f32)
        }
        OpK::CvtToF64 { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_cvt_to_f64)
        }
        OpK::CvtI2F64 { dst, src } => {
            i.a = *dst;
            gsrc!(i, src, h_cvt_i2f64)
        }
        OpK::CvtI2F32 { dst, src } => {
            i.a = *dst;
            gsrc!(i, src, h_cvt_i2f32)
        }
        OpK::CvtF64ToI { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_cvt_f64_to_i)
        }
        OpK::CvtF32ToI { dst, src } => {
            i.a = *dst;
            xsrc!(i, src, h_cvt_f32_to_i)
        }
        OpK::MovF32 { dst, src } => fmov!(i, dst, src, h_mov32),
        OpK::MovF64 { dst, src } => fmov!(i, dst, src, h_mov64),
        OpK::MovF128 { dst, src } => fmov!(i, dst, src, h_mov128),
        OpK::PExtrQ { dst, src, sh } => {
            i.a = *dst;
            i.b = *src;
            i.imm = *sh as i64;
            h_pextrq
        }
        OpK::PInsrQ { dst, src, sh } => {
            i.a = *dst;
            i.b = *src;
            i.imm = *sh as i64;
            h_pinsrq
        }
        OpK::FpTrunc { mant, exp, dst, sh } => {
            i.a = *dst;
            i.b = *mant;
            i.aux = *exp;
            i.imm = *sh as i64;
            h_fptrunc
        }
        OpK::IntAlu { op: o, dst, src } => {
            i.a = *dst;
            i.aux = *o as u8;
            itm!(i, o, src)
        }
        OpK::MovIR { dst, src } => {
            i.a = *dst;
            gsrc!(i, src, h_mov_ir)
        }
        OpK::MovIM { dst, src } => movim!(i, dst, src),
        OpK::Cmp { lhs, src } => {
            i.a = *lhs;
            gsrc!(i, src, h_cmp)
        }
        OpK::Test { lhs, src } => {
            i.a = *lhs;
            gsrc!(i, src, h_test)
        }
        OpK::Lea { dst, mem } => {
            i.a = *dst;
            match set_s(&mut i, mem) {
                M_ABS => h_lea::<EAbs> as Handler,
                M_BASE => h_lea::<EBase> as Handler,
                M_BIDX => h_lea::<EBaseIdx> as Handler,
                _ => h_lea::<EIdx> as Handler,
            }
        }
        OpK::Push { src } => {
            i.b = *src;
            h_push
        }
        OpK::Pop { dst } => {
            i.a = *dst;
            h_pop
        }
        OpK::Call { entry } => {
            i.t0 = *entry;
            h_call
        }
        OpK::Nop => h_nop,
        OpK::Jmp { target } => {
            i.t0 = *target;
            h_jmp
        }
        OpK::Br { cond, then_, else_ } => {
            i.t0 = *then_;
            i.t1 = *else_;
            i.aux = *cond as u8;
            cnd!(cond)
        }
        OpK::Ret => h_ret,
        OpK::Halt => h_halt,
    };
    i
}

// ---------------------------------------------------------------------------
// Fused superinstruction kernels. A kernel executes a *window* of
// consecutive `CInst`s as one call; accounting for the whole region is
// batched by the caller, so kernels only perform architectural effects.
// On a trap they report the index of the trapping constituent within the
// window so the caller can roll accounting back precisely.
// ---------------------------------------------------------------------------

/// A fused kernel over `window` (= `insts[base..base+len]`): returns the
/// next pc (non-final kernels return `base + len`), or the trapping
/// constituent's window index plus the trap.
pub(crate) type KHandler =
    for<'p> fn(&mut Vm<'p>, &mut Vec<u32>, &[CInst], u32) -> Result<u32, (u16, Trap)>;

#[inline(always)]
fn ea_s(vm: &Vm<'_>, i: &CInst) -> u64 {
    match i.s_mode {
        M_ABS => EAbs::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp),
        M_BASE => EBase::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp),
        M_BIDX => EBaseIdx::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp),
        _ => EIdx::ea(vm, i.s_base, i.s_index, i.s_scale, i.s_disp),
    }
}

#[inline(always)]
fn ea_d(vm: &Vm<'_>, i: &CInst) -> u64 {
    match i.d_mode {
        M_ABS => EAbs::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp),
        M_BASE => EBase::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp),
        M_BIDX => EBaseIdx::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp),
        _ => EIdx::ea(vm, i.d_base, i.d_index, i.d_scale, i.d_disp),
    }
}

/// Read an `RmD` source's low 64 bits via the runtime mode tag.
#[inline(always)]
fn rm64_s(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
    if i.s_mode == M_REG {
        Ok(vm.xmm[i.b as usize] as u64)
    } else {
        vm.mem.load_u64(ea_s(vm, i))
    }
}

/// Read a `GmiD` source via the runtime mode tag.
#[inline(always)]
fn gmi_s(vm: &Vm<'_>, i: &CInst) -> Result<u64, Trap> {
    match i.s_mode {
        M_REG => Ok(vm.gpr[i.b as usize]),
        M_IMM => Ok(i.imm as u64),
        _ => vm.mem.load_u64(ea_s(vm, i)),
    }
}

#[inline(always)]
fn alu_of(aux: u8) -> FpAluOp {
    match aux {
        0 => FpAluOp::Add,
        1 => FpAluOp::Sub,
        2 => FpAluOp::Mul,
        3 => FpAluOp::Div,
        4 => FpAluOp::Min,
        _ => FpAluOp::Max,
    }
}

#[inline(always)]
fn int_of(aux: u8) -> IntOp {
    match aux {
        0 => IntOp::Add,
        1 => IntOp::Sub,
        2 => IntOp::Mul,
        3 => IntOp::Div,
        4 => IntOp::Rem,
        5 => IntOp::And,
        6 => IntOp::Or,
        7 => IntOp::Xor,
        8 => IntOp::Shl,
        9 => IntOp::Shr,
        _ => IntOp::Sar,
    }
}

#[inline(always)]
fn cond_of(aux: u8) -> Cond {
    match aux {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        6 => Cond::Below,
        7 => Cond::BelowEq,
        8 => Cond::Above,
        9 => Cond::AboveEq,
        10 => Cond::Unordered,
        _ => Cond::Ordered,
    }
}

/// Generic span kernel: chain the constituents' threaded handlers.
fn k_span(vm: &mut Vm<'_>, rs: &mut Vec<u32>, w: &[CInst], base: u32) -> Result<u32, (u16, Trap)> {
    let mut pc = base;
    for (j, i) in w.iter().enumerate() {
        pc = (i.run)(vm, i, rs, pc).map_err(|t| (j as u16, t))?;
    }
    Ok(pc)
}

/// `movsd xmm, mem; arith64 xmm2, xmm` — load feeding a scalar-double
/// arithmetic op, with the intermediate kept in a local.
fn k_ld_arith64(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let v = vm.mem.load_u64(ea_s(vm, &w[0])).map_err(|t| (0u16, t))?;
    vm.set_lo64(w[0].a, v);
    let a = vm.xmm[w[1].a as usize] as u64;
    vm.check_flag64(a, w[1].id).map_err(|t| (1u16, t))?;
    vm.check_flag64(v, w[1].id).map_err(|t| (1u16, t))?;
    let r = Vm::fp_alu_f64(alu_of(w[1].aux), f64::from_bits(a), f64::from_bits(v));
    vm.set_lo64(w[1].a, r.to_bits());
    Ok(base + 2)
}

/// `arith64 xmm, src; movsd mem, xmm` — scalar-double arithmetic feeding
/// a store.
fn k_arith64_st(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let a = vm.xmm[w[0].a as usize] as u64;
    let b = rm64_s(vm, &w[0]).map_err(|t| (0u16, t))?;
    vm.check_flag64(a, w[0].id).map_err(|t| (0u16, t))?;
    vm.check_flag64(b, w[0].id).map_err(|t| (0u16, t))?;
    let r = Vm::fp_alu_f64(alu_of(w[0].aux), f64::from_bits(a), f64::from_bits(b)).to_bits();
    vm.set_lo64(w[0].a, r);
    vm.mem.store_u64(ea_d(vm, &w[1]), r).map_err(|t| (1u16, t))?;
    Ok(base + 2)
}

/// `movsd xmm, mem; arith64 xmm2, xmm; movsd mem2, xmm2` — full
/// load-op-store idiom in one call.
fn k_ld_arith64_st(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let v = vm.mem.load_u64(ea_s(vm, &w[0])).map_err(|t| (0u16, t))?;
    vm.set_lo64(w[0].a, v);
    let a = vm.xmm[w[1].a as usize] as u64;
    vm.check_flag64(a, w[1].id).map_err(|t| (1u16, t))?;
    vm.check_flag64(v, w[1].id).map_err(|t| (1u16, t))?;
    let r = Vm::fp_alu_f64(alu_of(w[1].aux), f64::from_bits(a), f64::from_bits(v)).to_bits();
    vm.set_lo64(w[1].a, r);
    vm.mem.store_u64(ea_d(vm, &w[2]), r).map_err(|t| (2u16, t))?;
    Ok(base + 3)
}

/// `intalu r, src; cmp r2, src2; br` — the canonical counted-loop latch.
fn k_alu_cmp_br(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    _base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let a = vm.gpr[w[0].a as usize];
    let b = gmi_s(vm, &w[0]).map_err(|t| (0u16, t))?;
    vm.gpr[w[0].a as usize] = int_alu(int_of(w[0].aux), a, b).map_err(|t| (0u16, t))?;
    let ca = vm.gpr[w[1].a as usize];
    let cb = gmi_s(vm, &w[1]).map_err(|t| (1u16, t))?;
    vm.set_cmp_flags(ca, cb);
    Ok(if vm.cond_holds(cond_of(w[2].aux)) { w[2].t0 } else { w[2].t1 })
}

/// `cmp r, src; br` — compare-branch fusion.
fn k_cmp_br(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    _base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let a = vm.gpr[w[0].a as usize];
    let b = gmi_s(vm, &w[0]).map_err(|t| (0u16, t))?;
    vm.set_cmp_flags(a, b);
    Ok(if vm.cond_holds(cond_of(w[1].aux)) { w[1].t0 } else { w[1].t1 })
}

/// `test r, src; br` — test-branch fusion.
fn k_test_br(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    _base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let a = vm.gpr[w[0].a as usize];
    let b = gmi_s(vm, &w[0]).map_err(|t| (0u16, t))?;
    vm.set_test_flags(a & b);
    Ok(if vm.cond_holds(cond_of(w[1].aux)) { w[1].t0 } else { w[1].t1 })
}

/// `ucomisd xmm, src; br` — float compare-branch fusion.
fn k_ucomi64_br(
    vm: &mut Vm<'_>,
    rs: &mut Vec<u32>,
    w: &[CInst],
    _base: u32,
) -> Result<u32, (u16, Trap)> {
    let _ = rs;
    let a = vm.xmm[w[0].a as usize] as u64;
    let b = rm64_s(vm, &w[0]).map_err(|t| (0u16, t))?;
    vm.check_flag64(a, w[0].id).map_err(|t| (0u16, t))?;
    vm.check_flag64(b, w[0].id).map_err(|t| (0u16, t))?;
    let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
    vm.set_ucomi_flags(fa, fb, fa.is_nan() || fb.is_nan());
    Ok(if vm.cond_holds(cond_of(w[1].aux)) { w[1].t0 } else { w[1].t1 })
}

// ---------------------------------------------------------------------------
// Regions and the compiled image.
// ---------------------------------------------------------------------------

/// One fused kernel instance inside a region.
#[derive(Debug, Clone, Copy)]
struct Kern {
    run: KHandler,
    /// Absolute pc of the kernel's first constituent.
    base: u32,
    /// Number of constituent ops.
    len: u16,
}

/// A maximal straight-line run of ops ending in its control op, with
/// batched accounting totals and a kernel schedule.
#[derive(Debug, Clone)]
struct Region {
    start: u32,
    len: u32,
    /// Accounting totals for executing the whole region once.
    steps: u64,
    cycles: u64,
    fp: u64,
    kerns: Vec<Kern>,
}

fn is_control(k: &OpK) -> bool {
    matches!(k, OpK::Call { .. } | OpK::Jmp { .. } | OpK::Br { .. } | OpK::Ret | OpK::Halt)
}

/// Try to recognize a fused idiom starting at `j`; returns the kernel and
/// how many ops it consumes.
fn try_idiom(ops: &[ExecOp], j: usize) -> Option<(KHandler, usize)> {
    use OpK::*;
    if j + 3 <= ops.len() {
        match (&ops[j].kind, &ops[j + 1].kind, &ops[j + 2].kind) {
            (
                MovF64 { dst: FpLocD::Reg(r), src: FpLocD::Mem(_) },
                ArithF64 { dst, src: RmD::Reg(r2), .. },
                MovF64 { dst: FpLocD::Mem(_), src: FpLocD::Reg(s2) },
            ) if r2 == r && s2 == dst => return Some((k_ld_arith64_st as KHandler, 3)),
            (IntAlu { .. }, Cmp { .. }, Br { .. }) => return Some((k_alu_cmp_br as KHandler, 3)),
            _ => {}
        }
    }
    if j + 2 <= ops.len() {
        match (&ops[j].kind, &ops[j + 1].kind) {
            (
                MovF64 { dst: FpLocD::Reg(r), src: FpLocD::Mem(_) },
                ArithF64 { src: RmD::Reg(r2), .. },
            ) if r2 == r => return Some((k_ld_arith64 as KHandler, 2)),
            (ArithF64 { dst, .. }, MovF64 { dst: FpLocD::Mem(_), src: FpLocD::Reg(s) })
                if s == dst =>
            {
                return Some((k_arith64_st as KHandler, 2))
            }
            (Cmp { .. }, Br { .. }) => return Some((k_cmp_br as KHandler, 2)),
            (Test { .. }, Br { .. }) => return Some((k_test_br as KHandler, 2)),
            (UcomiF64 { .. }, Br { .. }) => return Some((k_ucomi64_br as KHandler, 2)),
            _ => {}
        }
    }
    None
}

/// Greedy kernel schedule for one region: fused idioms where recognized,
/// generic spans for everything between.
fn build_kernels(ops: &[ExecOp], base: u32, fused: &mut usize) -> Vec<Kern> {
    fn flush(kerns: &mut Vec<Kern>, base: u32, from: usize, to: usize) {
        if to > from {
            kerns.push(Kern { run: k_span, base: base + from as u32, len: (to - from) as u16 });
        }
    }
    let mut kerns = Vec::new();
    let mut span_start = 0usize;
    let mut j = 0usize;
    while j < ops.len() {
        if let Some((run, len)) = try_idiom(ops, j) {
            flush(&mut kerns, base, span_start, j);
            kerns.push(Kern { run, base: base + j as u32, len: len as u16 });
            *fused += 1;
            j += len;
            span_start = j;
        } else {
            j += 1;
        }
    }
    flush(&mut kerns, base, span_start, ops.len());
    kerns
}

/// A program lowered for the compiled backend: bound threaded
/// instructions plus the fused-region schedule over them.
#[derive(Debug, Clone)]
pub struct CompiledImage {
    insts: Vec<CInst>,
    regions: Vec<Region>,
    /// pc → index of the region containing it.
    region_at: Vec<u32>,
    entry: u32,
    insn_bound: usize,
    cost: CostModel,
    /// Number of non-span (idiom) kernels emitted.
    fused: usize,
}

impl CompiledImage {
    /// Compile `prog` end-to-end (decode to an [`ExecImage`], then bind).
    pub fn compile(prog: &Program, cost: &CostModel) -> CompiledImage {
        CompiledImage::from_image(&ExecImage::compile(prog, cost))
    }

    /// Bind an already-decoded image.
    pub fn from_image(image: &ExecImage) -> CompiledImage {
        let insts: Vec<CInst> = image.ops.iter().map(bind).collect();
        let n = insts.len();
        let mut regions: Vec<Region> = Vec::new();
        let mut region_at = vec![0u32; n];
        let mut fused = 0usize;
        let mut start = 0usize;
        for pc in 0..n {
            if is_control(&image.ops[pc].kind) || pc + 1 == n {
                let len = pc - start + 1;
                let ops = &image.ops[start..start + len];
                let mut cycles = 0u64;
                let mut fp = 0u64;
                for o in ops {
                    cycles += o.cost;
                    fp += o.fp as u64;
                }
                let kerns = build_kernels(ops, start as u32, &mut fused);
                let idx = regions.len() as u32;
                for q in region_at.iter_mut().take(start + len).skip(start) {
                    *q = idx;
                }
                regions.push(Region {
                    start: start as u32,
                    len: len as u32,
                    steps: len as u64,
                    cycles,
                    fp,
                    kerns,
                });
                start = pc + 1;
            }
        }
        CompiledImage {
            insts,
            regions,
            region_at,
            entry: image.entry,
            insn_bound: image.insn_bound,
            cost: image.cost.clone(),
            fused,
        }
    }

    /// Number of compiled instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of straight-line regions.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of fused idiom kernels (excluding generic spans).
    pub fn fused_kernels(&self) -> usize {
        self.fused
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

impl<'p> Vm<'p> {
    fn check_compiled(&self, image: &CompiledImage) {
        assert_eq!(
            image.insn_bound,
            self.prog.insn_id_bound(),
            "CompiledImage does not match this VM's program"
        );
        assert_eq!(
            image.cost, self.opts.cost,
            "CompiledImage compiled under a different cost model"
        );
    }

    /// The threaded tier: exact per-op accounting (fuel, steps, cycles,
    /// fp, profile, step observer), dispatching through the bound
    /// handlers. Also serves as the exact fallback for the fused tier.
    fn threaded_from<P: StepObserver>(
        &mut self,
        img: &CompiledImage,
        mut pc: u32,
        rs: &mut Vec<u32>,
        prof: &mut P,
    ) -> Result<(), Trap> {
        let insts = &img.insts[..];
        let fuel = self.opts.fuel;
        loop {
            if pc == u32::MAX {
                return Ok(());
            }
            if self.stats.steps >= fuel {
                return Err(Trap::FuelExhausted);
            }
            let i = &insts[pc as usize];
            self.stats.steps += 1;
            self.stats.cycles += i.cost;
            self.stats.fp_ops += i.fp as u64;
            if let Some(p) = &mut self.profile {
                if i.id.0 != u32::MAX {
                    p.bump(i.id);
                }
            }
            if P::ENABLED {
                prof.step(i.id, i.cost);
            }
            pc = (i.run)(self, i, rs, pc)?;
        }
    }

    /// The fused tier: regions whose full execution fits in the fuel
    /// budget run with batched accounting and fused kernels; anything
    /// else (mid-region entry, fuel boundary) falls back to the exact
    /// threaded tier for the rest of the run.
    fn run_fused(&mut self, img: &CompiledImage) -> Result<(), Trap> {
        let mut pc = img.entry;
        let mut rs: Vec<u32> = Vec::with_capacity(64);
        let fuel = self.opts.fuel;
        loop {
            if pc == u32::MAX {
                return Ok(());
            }
            let r = &img.regions[img.region_at[pc as usize] as usize];
            if r.start != pc || self.stats.steps + r.steps > fuel {
                return self.threaded_from(img, pc, &mut rs, &mut NoopStepObserver);
            }
            // Charge the whole region up front; per-op checks are
            // provably redundant inside it.
            self.stats.steps += r.steps;
            self.stats.cycles += r.cycles;
            self.stats.fp_ops += r.fp;
            for k in &r.kerns {
                let w = &img.insts[k.base as usize..k.base as usize + k.len as usize];
                match (k.run)(self, &mut rs, w, k.base) {
                    Ok(np) => pc = np,
                    Err((j, trap)) => {
                        // Roll the batched accounting back to the
                        // trapping op's prefix (the trapping op itself
                        // stays charged, matching the interpreter's
                        // account-then-execute order).
                        let abs = k.base as usize + j as usize;
                        let end = (r.start + r.len) as usize;
                        for q in &img.insts[abs + 1..end] {
                            self.stats.cycles -= q.cost;
                            self.stats.fp_ops -= q.fp as u64;
                        }
                        self.stats.steps -= (end - (abs + 1)) as u64;
                        return Err(trap);
                    }
                }
            }
        }
    }

    /// Run under the compiled backend. Unobserved, unprofiled runs take
    /// the fused tier; runs with `profile: true` fall back to the
    /// threaded tier so per-instruction attribution stays exact (the
    /// documented observer/profiler fallback contract).
    pub fn run_compiled(&mut self, image: &CompiledImage) -> RunOutcome {
        self.check_compiled(image);
        let result = if self.profile.is_some() {
            let mut rs: Vec<u32> = Vec::with_capacity(64);
            self.threaded_from(image, image.entry, &mut rs, &mut NoopStepObserver)
        } else {
            self.run_fused(image)
        };
        RunOutcome { stats: self.stats, result, profile: self.profile.take() }
    }

    /// Run the threaded tier unconditionally (no fusion). Primarily for
    /// differential testing of the tiers against each other.
    pub fn run_compiled_threaded(&mut self, image: &CompiledImage) -> RunOutcome {
        self.run_compiled_profiled(image, &mut NoopStepObserver)
    }

    /// Run with an attached [`StepObserver`]. Always uses the threaded
    /// tier: fused kernels cannot attribute steps per instruction, so an
    /// observed run never takes the fused tier.
    pub fn run_compiled_profiled<P: StepObserver>(
        &mut self,
        image: &CompiledImage,
        prof: &mut P,
    ) -> RunOutcome {
        self.check_compiled(image);
        let mut rs: Vec<u32> = Vec::with_capacity(64);
        let result = self.threaded_from(image, image.entry, &mut rs, prof);
        RunOutcome { stats: self.stats, result, profile: self.profile.take() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::VmOptions;
    use crate::isa::{FpLoc, InstKind, MemRef, Prec, Terminator, Width, Xmm, GM, GMI, RM};

    /// A small program covering arithmetic, control flow, and a call —
    /// the same shape as the `exec` module's demo.
    fn demo_prog() -> Program {
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let fmain = p.add_function(m, "main");
        let fsq = p.add_function(m, "sq");
        let bs = p.add_block(fsq);
        p.funcs[fsq.0 as usize].entry = bs;
        p.push_insn(
            bs,
            InstKind::FpArith {
                op: FpAluOp::Mul,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(0)),
            },
        );
        p.block_mut(bs).term = Terminator::Ret;

        let head = p.add_block(fmain);
        let body = p.add_block(fmain);
        let done = p.add_block(fmain);
        p.funcs[fmain.0 as usize].entry = head;
        p.entry = fmain;
        p.globals = vec![0u8; 32];
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr(2)), src: GMI::Imm(1) });
        p.push_insn(head, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(0) });
        p.block_mut(head).term = Terminator::Jmp(body);
        p.push_insn(
            body,
            InstKind::IntAlu { op: IntOp::Add, dst: Gpr::RAX, src: GMI::Reg(Gpr(2)) },
        );
        p.push_insn(body, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(2), src: GMI::Imm(1) });
        p.push_insn(body, InstKind::Cmp { lhs: Gpr(2), src: GMI::Imm(10) });
        p.block_mut(body).term = Terminator::Br { cond: Cond::Le, then_: body, else_: done };
        p.push_insn(
            done,
            InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Reg(Gpr::RAX) },
        );
        p.push_insn(done, InstKind::Call { func: fsq });
        p.push_insn(
            done,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(0)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(done).term = Terminator::Halt;
        p
    }

    /// Run `p` through the fast image and both compiled tiers and assert
    /// every observable is bit-identical.
    fn agree(p: &Program, opts: &VmOptions) {
        let image = ExecImage::compile(p, &opts.cost);
        let cimg = CompiledImage::from_image(&image);

        let mut fast = Vm::new(p, opts.clone());
        let fo = fast.run_image(&image);
        let mut fused = Vm::new(p, opts.clone());
        let co = fused.run_compiled(&cimg);
        let mut thr = Vm::new(p, opts.clone());
        let to = thr.run_compiled_threaded(&cimg);

        for (name, vm, out) in [("fused", &fused, &co), ("threaded", &thr, &to)] {
            assert_eq!(fo.result, out.result, "{name}: result/trap diverges");
            assert_eq!(fo.stats.steps, out.stats.steps, "{name}: steps diverge");
            assert_eq!(fo.stats.cycles, out.stats.cycles, "{name}: cycles diverge");
            assert_eq!(fo.stats.fp_ops, out.stats.fp_ops, "{name}: fp_ops diverge");
            assert_eq!(fast.gpr, vm.gpr, "{name}: gpr diverges");
            assert_eq!(fast.xmm, vm.xmm, "{name}: xmm diverges");
            let words = fast.mem.len() / 8;
            assert_eq!(
                fast.mem.read_u64_slice(0, words).unwrap(),
                vm.mem.read_u64_slice(0, words).unwrap(),
                "{name}: memory diverges"
            );
            match (&fo.profile, &out.profile) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    for k in 0..p.insn_id_bound() {
                        let id = InsnId(k as u32);
                        assert_eq!(a.count(id), b.count(id), "{name}: profile at {id:?}");
                    }
                }
                _ => panic!("{name}: profile presence diverges"),
            }
        }
    }

    #[test]
    fn compiled_matches_fast_on_demo_program() {
        let p = demo_prog();
        agree(&p, &VmOptions::default());
        agree(&p, &VmOptions { profile: true, ..Default::default() });
        let cimg = CompiledImage::compile(&p, &CostModel::default());
        let mut vm = Vm::new(&p, VmOptions::default());
        let out = vm.run_compiled(&cimg);
        assert!(out.result.is_ok());
        assert_eq!(vm.mem.read_f64_slice(0, 1).unwrap()[0], 55.0 * 55.0);
    }

    #[test]
    fn fused_tier_emits_idiom_kernels() {
        let p = demo_prog();
        let cimg = CompiledImage::compile(&p, &CostModel::default());
        // The loop latch (add; cmp; br) must fuse.
        assert!(cimg.fused_kernels() > 0, "no idiom kernels on the demo loop");
        assert!(cimg.regions() > 1);
        assert!(!cimg.is_empty());
        assert_eq!(cimg.len(), ExecImage::compile(&p, &CostModel::default()).len());
    }

    #[test]
    fn fuel_exhaustion_matches_at_every_boundary() {
        let p = demo_prog();
        for fuel in 0..40u64 {
            agree(&p, &VmOptions { fuel, ..Default::default() });
        }
    }

    #[test]
    fn flagged_nan_trap_matches_with_insn_id() {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.globals = crate::value::replace(1.5).to_le_bytes().to_vec();
        p.push_insn(
            b,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(0)),
            },
        );
        p.block_mut(b).term = Terminator::Halt;
        let cimg = CompiledImage::compile(&p, &CostModel::default());
        let o1 = Vm::new(&p, VmOptions::default()).run();
        let o2 = Vm::new(&p, VmOptions::default()).run_compiled(&cimg);
        assert!(matches!(o1.result, Err(Trap::FlaggedNanConsumed { .. })));
        assert_eq!(o1.result, o2.result);
        assert_eq!(o1.stats.steps, o2.stats.steps);
        assert_eq!(o1.stats.cycles, o2.stats.cycles);
        assert_eq!(o1.stats.fp_ops, o2.stats.fp_ops);
        agree(&p, &VmOptions::default());
    }

    #[test]
    fn div_by_zero_mid_region_rolls_accounting_back() {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Imm(7) });
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr(1)), src: GMI::Imm(0) });
        p.push_insn(b, InstKind::IntAlu { op: IntOp::Div, dst: Gpr::RAX, src: GMI::Reg(Gpr(1)) });
        p.push_insn(b, InstKind::IntAlu { op: IntOp::Add, dst: Gpr::RAX, src: GMI::Imm(1) });
        p.block_mut(b).term = Terminator::Halt;
        agree(&p, &VmOptions::default());
        let cimg = CompiledImage::compile(&p, &CostModel::default());
        let o = Vm::new(&p, VmOptions::default()).run_compiled(&cimg);
        assert_eq!(o.result, Err(Trap::DivByZero));
    }

    #[test]
    fn step_observer_sees_identical_stream_on_both_paths() {
        struct Rec(Vec<(u32, u64)>);
        impl StepObserver for Rec {
            const ENABLED: bool = true;
            fn step(&mut self, insn: InsnId, cost: u64) {
                self.0.push((insn.0, cost));
            }
        }
        let p = demo_prog();
        let image = ExecImage::compile(&p, &CostModel::default());
        let cimg = CompiledImage::from_image(&image);
        let mut r1 = Rec(Vec::new());
        let o1 = Vm::new(&p, VmOptions::default()).run_image_profiled(&image, &mut r1);
        let mut r2 = Rec(Vec::new());
        let o2 = Vm::new(&p, VmOptions::default()).run_compiled_profiled(&cimg, &mut r2);
        assert_eq!(o1.result, o2.result);
        assert_eq!(o1.stats.cycles, o2.stats.cycles);
        assert_eq!(r1.0, r2.0, "per-step observer streams diverge");
        assert!(!r1.0.is_empty());
    }

    #[test]
    fn profiled_runs_fall_back_to_the_threaded_tier_exactly() {
        let p = demo_prog();
        let image = ExecImage::compile(&p, &CostModel::default());
        let cimg = CompiledImage::from_image(&image);
        let opts = VmOptions { profile: true, ..Default::default() };
        let a = Vm::new(&p, opts.clone()).run_image(&image).profile.unwrap();
        let b = Vm::new(&p, opts).run_compiled(&cimg).profile.unwrap();
        for k in 0..p.insn_id_bound() {
            let id = InsnId(k as u32);
            assert_eq!(a.count(id), b.count(id), "profile diverges at {id:?}");
        }
    }

    #[test]
    fn mismatched_cost_model_is_rejected() {
        let p = demo_prog();
        let cimg = CompiledImage::compile(&p, &CostModel { call: 99, ..Default::default() });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Vm::new(&p, VmOptions::default()).run_compiled(&cimg)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn backend_names_round_trip() {
        assert_eq!(Backend::default(), Backend::Compiled);
        for b in [Backend::Interp, Backend::Fast, Backend::Compiled] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("jit"), None);
    }
}
