//! Flat byte-addressed memory with bounds-checked typed accessors.

use crate::trap::Trap;

/// The machine's memory: data segment at address 0, heap above it, stack
/// descending from the top.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` zeroed bytes and copy `image` to address 0.
    pub fn new(size: usize, image: &[u8]) -> Self {
        let mut bytes = vec![0u8; size];
        bytes[..image.len()].copy_from_slice(image);
        Memory { bytes }
    }

    /// Re-initialize in place to `size` zeroed bytes with `image` copied to
    /// address 0, reusing the existing allocation when large enough — the
    /// evaluation loop's way to avoid one multi-megabyte allocation per run.
    pub fn reset(&mut self, size: usize, image: &[u8]) {
        self.bytes.clear();
        self.bytes.resize(size, 0);
        self.bytes[..image.len()].copy_from_slice(image);
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn check(&self, addr: u64, size: usize) -> Result<usize, Trap> {
        let a = addr as usize;
        if addr > usize::MAX as u64 || a.checked_add(size).is_none_or(|end| end > self.bytes.len())
        {
            Err(Trap::OutOfBounds { addr, size })
        } else {
            Ok(a)
        }
    }

    /// Load an unsigned 32-bit little-endian value.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> Result<u32, Trap> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(self.bytes[a..a + 4].try_into().unwrap()))
    }

    /// Load an unsigned 64-bit little-endian value.
    #[inline]
    pub fn load_u64(&self, addr: u64) -> Result<u64, Trap> {
        let a = self.check(addr, 8)?;
        Ok(u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap()))
    }

    /// Load a 128-bit little-endian value.
    #[inline]
    pub fn load_u128(&self, addr: u64) -> Result<u128, Trap> {
        let a = self.check(addr, 16)?;
        Ok(u128::from_le_bytes(self.bytes[a..a + 16].try_into().unwrap()))
    }

    /// Store an unsigned 32-bit little-endian value.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, v: u32) -> Result<(), Trap> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Store an unsigned 64-bit little-endian value.
    #[inline]
    pub fn store_u64(&mut self, addr: u64, v: u64) -> Result<(), Trap> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Store a 128-bit little-endian value.
    #[inline]
    pub fn store_u128(&mut self, addr: u64, v: u128) -> Result<(), Trap> {
        let a = self.check(addr, 16)?;
        self.bytes[a..a + 16].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Read `n` consecutive f64 slots starting at `addr`, upcasting any
    /// replaced (flagged) slots — the view a verification routine wants.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Result<Vec<f64>, Trap> {
        (0..n).map(|i| Ok(crate::value::read_as_f64(self.load_u64(addr + 8 * i as u64)?))).collect()
    }

    /// Read `n` consecutive f32 slots starting at `addr`.
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Result<Vec<f32>, Trap> {
        (0..n).map(|i| Ok(f32::from_bits(self.load_u32(addr + 4 * i as u64)?))).collect()
    }

    /// Read `n` consecutive raw 64-bit slots starting at `addr` (no flag
    /// interpretation) — used by bit-exactness experiments.
    pub fn read_u64_slice(&self, addr: u64, n: usize) -> Result<Vec<u64>, Trap> {
        (0..n).map(|i| self.load_u64(addr + 8 * i as u64)).collect()
    }

    /// Read `n` consecutive i64 slots starting at `addr`.
    pub fn read_i64_slice(&self, addr: u64, n: usize) -> Result<Vec<i64>, Trap> {
        (0..n).map(|i| Ok(self.load_u64(addr + 8 * i as u64)? as i64)).collect()
    }

    /// Write a slice of f64 values starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, vals: &[f64]) -> Result<(), Trap> {
        for (i, v) in vals.iter().enumerate() {
            self.store_u64(addr + 8 * i as u64, v.to_bits())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_endianness() {
        let mut m = Memory::new(64, &[]);
        m.store_u64(8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load_u64(8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load_u32(8).unwrap(), 0x5566_7788);
        assert_eq!(m.load_u32(12).unwrap(), 0x1122_3344);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::new(16, &[]);
        assert!(m.load_u64(9).is_err());
        assert!(m.load_u64(16).is_err());
        assert!(m.store_u128(1, 0).is_err());
        assert!(m.load_u64(u64::MAX).is_err());
        assert!(m.load_u64(8).is_ok());
    }

    #[test]
    fn image_loaded_at_zero() {
        let m = Memory::new(32, &[1, 2, 3, 4]);
        assert_eq!(m.load_u32(0).unwrap(), 0x0403_0201);
        assert_eq!(m.load_u32(4).unwrap(), 0);
    }

    #[test]
    fn f64_slice_upcasts_flags() {
        let mut m = Memory::new(64, &[]);
        m.store_u64(0, 2.5f64.to_bits()).unwrap();
        m.store_u64(8, crate::value::replace(0.75)).unwrap();
        let v = m.read_f64_slice(0, 2).unwrap();
        assert_eq!(v, vec![2.5, 0.75]);
    }
}
