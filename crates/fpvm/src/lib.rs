//! # fpvm — the virtual floating-point machine
//!
//! This crate is the *binary substrate* of the reproduction: it stands in
//! for the x86-64 machine code, the XED decoder, and the executable images
//! that the original framework (built on Dyninst and Pin) operates on.
//!
//! It provides:
//!
//! * [`isa`] — an SSE2-modelled virtual instruction set: scalar and packed
//!   FP arithmetic on 128-bit XMM registers, integer ALU, flat memory,
//!   flags, and block-structured control flow;
//! * [`program`] — program images (modules → functions → basic blocks →
//!   instructions) with CFG editing primitives (block splitting, edge
//!   rewiring) used by the instrumentation layer;
//! * [`interp`] — a bit-faithful interpreter with profiling, fuel, and the
//!   crash-on-miss trap for replaced values;
//! * [`value`] — the in-place downcast-and-flag representation of replaced
//!   doubles (`0x7FF4DEAD`, paper Fig. 5);
//! * [`cost`] — a documented cycle/bandwidth model for *modelled* speedups;
//! * [`exec`] — a pre-decoded linear execution image, the interpreter's
//!   fast path (bit-identical to [`interp`], differentially tested);
//! * [`compiled`] — the compiled backend: threaded-code dispatch over
//!   monomorphized op handlers plus block-fused superinstruction regions
//!   (bit-identical to [`exec`], differentially tested);
//! * [`cluster`] — an intra-node MPI-rank analogue for the scaling
//!   experiments (paper Fig. 8).

#![warn(missing_docs)]

pub mod cluster;
pub mod compiled;
pub mod cost;
pub mod exec;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod profile;
pub mod program;
pub mod trap;
pub mod value;

pub use compiled::{Backend, CompiledImage};
pub use cost::CostModel;
pub use exec::{
    ExecImage, ExecObserver, FpEvent, FpLocV, NoopNumObserver, NoopObserver, NoopStepObserver,
    NumObserver, StepObserver,
};
pub use interp::{RunOutcome, RunStats, Vm, VmOptions};
pub use isa::{
    BlockId, Cond, FpAluOp, FpLoc, FuncId, Gpr, Insn, InsnId, InstKind, IntOp, MathFun, MemRef,
    ModuleId, Prec, Terminator, Width, Xmm, GM, GMI, RM,
};
pub use mem::Memory;
pub use profile::Profile;
pub use program::{BasicBlock, Function, Module, Program};
pub use trap::Trap;
