//! Intra-node "MPI rank" runtime.
//!
//! The paper's Fig. 8 measures how instrumentation overhead scales with the
//! number of MPI tasks on one node. We reproduce the setup with N
//! interpreter instances on N OS threads, each executing a rank-specific
//! program image (the workload generator writes `rank`/`nranks` into the
//! data segment so each rank computes its shard). Like the NAS kernels'
//! final `MPI_Reduce`, cross-rank reduction happens after completion via
//! the caller-provided reducer.

use crate::interp::{RunOutcome, Vm, VmOptions};
use crate::program::Program;

/// Result of a cluster run: per-rank outcomes, in rank order.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// One outcome per rank.
    pub ranks: Vec<RunOutcome>,
}

impl ClusterOutcome {
    /// True if every rank halted normally.
    pub fn ok(&self) -> bool {
        self.ranks.iter().all(|r| r.ok())
    }

    /// Total dynamic instructions across all ranks.
    pub fn total_steps(&self) -> u64 {
        self.ranks.iter().map(|r| r.stats.steps).sum()
    }

    /// Wall-clock-proxy: the slowest rank's step count (ranks run
    /// concurrently, so the critical path is the maximum).
    pub fn critical_steps(&self) -> u64 {
        self.ranks.iter().map(|r| r.stats.steps).max().unwrap_or(0)
    }
}

/// Run `nranks` rank-specialized programs concurrently, one OS thread each.
///
/// `make_rank(rank)` produces the program image for each rank (typically
/// the same code with rank-dependent data). Each rank additionally gets a
/// post-run inspection hook `collect(rank, &vm)` to extract partial
/// results before the VM is dropped.
pub fn run_ranks<T: Send>(
    nranks: usize,
    opts: &VmOptions,
    make_rank: impl Fn(usize) -> Program + Sync,
    collect: impl Fn(usize, &Vm<'_>) -> T + Sync,
) -> (ClusterOutcome, Vec<T>) {
    assert!(nranks > 0, "need at least one rank");
    let mut slots: Vec<Option<(RunOutcome, T)>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|s| {
        for (rank, slot) in slots.iter_mut().enumerate() {
            let opts = opts.clone();
            let make_rank = &make_rank;
            let collect = &collect;
            s.spawn(move || {
                let prog = make_rank(rank);
                let mut vm = Vm::new(&prog, opts);
                let outcome = vm.run();
                let extra = collect(rank, &vm);
                *slot = Some((outcome, extra));
            });
        }
    });
    let (ranks, extras) = slots.into_iter().map(|s| s.expect("rank did not finish")).unzip();
    (ClusterOutcome { ranks }, extras)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::*;
    use crate::program::Program;

    /// Each rank computes rank * 10 into memory; host reduces with a sum.
    fn rank_prog(rank: usize) -> Program {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        p.globals = vec![0u8; 16];
        p.globals[..8].copy_from_slice(&(rank as u64).to_le_bytes());
        p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Mem(MemRef::abs(0)) });
        p.push_insn(b, InstKind::IntAlu { op: IntOp::Mul, dst: Gpr::RAX, src: GMI::Imm(10) });
        p.push_insn(b, InstKind::MovI { dst: GM::Mem(MemRef::abs(8)), src: GMI::Reg(Gpr::RAX) });
        p.block_mut(b).term = Terminator::Halt;
        p
    }

    #[test]
    fn ranks_run_concurrently_and_reduce() {
        let opts = crate::interp::VmOptions::default();
        let (outcome, partials) =
            run_ranks(4, &opts, rank_prog, |_, vm| vm.mem.load_u64(8).unwrap());
        assert!(outcome.ok());
        assert_eq!(partials, vec![0, 10, 20, 30]);
        assert_eq!(outcome.ranks.len(), 4);
        assert!(outcome.critical_steps() <= outcome.total_steps());
    }

    #[test]
    fn single_rank_works() {
        let opts = crate::interp::VmOptions::default();
        let (outcome, partials) =
            run_ranks(1, &opts, rank_prog, |_, vm| vm.mem.load_u64(8).unwrap());
        assert!(outcome.ok());
        assert_eq!(partials, vec![0]);
    }
}
