//! Cycle/bandwidth cost model.
//!
//! An interpreter cannot exhibit the hardware effects that make single
//! precision faster — halved memory traffic, doubled SIMD lane count, and
//! (on some architectures) cheaper arithmetic — so we model them, exactly
//! the mechanisms the paper's introduction cites. The model is used for
//! *speedup* results (AMG §3.2, SuperLU §3.3) and is always reported as
//! modelled; *overhead* results (Figs. 8–9) use real interpreted
//! instruction counts and wall time instead.
//!
//! Default calibration: double-precision arithmetic costs twice its
//! single-precision equivalent, division/sqrt are an order of magnitude
//! dearer than add/mul, and memory costs a pure bandwidth term (cycles
//! per 4 bytes). Integer ALU/control instructions are costed at zero:
//! the tree-walk code generator emits several times more addressing and
//! loop-control instructions than an optimizing compiler would, and on
//! an out-of-order core that work overlaps the floating-point stream —
//! leaving it in the model would bury the precision signal under
//! codegen noise. With these defaults an FP/bandwidth-bound all-double
//! kernel sees close to 2× modelled speedup when fully converted to
//! single, matching the 2× / "2.5×" figures the paper reports/cites.

use crate::isa::{FpAluOp, InstKind, Prec, Width};

/// Per-operation cycle costs. All values are in abstract cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Add/sub/mul/min/max, single precision.
    pub fp_simple_single: u64,
    /// Add/sub/mul/min/max, double precision.
    pub fp_simple_double: u64,
    /// Divide & square root, single precision.
    pub fp_div_single: u64,
    /// Divide & square root, double precision.
    pub fp_div_double: u64,
    /// Transcendental intrinsics, single precision.
    pub fp_math_single: u64,
    /// Transcendental intrinsics, double precision.
    pub fp_math_double: u64,
    /// Precision conversions and FP compares.
    pub fp_cvt: u64,
    /// Integer ALU / mov / lea / push / pop base cost.
    pub int_op: u64,
    /// Fixed cost of any memory access.
    pub mem_base: u64,
    /// Bandwidth term: cycles per 4 bytes transferred.
    pub mem_per_4bytes: u64,
    /// Call/return linkage cost.
    pub call: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fp_simple_single: 1,
            fp_simple_double: 2,
            fp_div_single: 11,
            fp_div_double: 22,
            fp_math_single: 20,
            fp_math_double: 40,
            fp_cvt: 2,
            int_op: 0,
            mem_base: 0,
            mem_per_4bytes: 1,
            call: 2,
        }
    }
}

impl CostModel {
    /// Cost of one memory access of `bytes` bytes.
    #[inline]
    pub fn mem(&self, bytes: usize) -> u64 {
        self.mem_base + self.mem_per_4bytes * (bytes as u64).div_ceil(4)
    }

    /// Cost of executing `kind` once.
    ///
    /// Only *floating-point data* traffic is charged to the bandwidth
    /// term: integer loads/stores in this ISA are almost exclusively
    /// loop counters, spilled index variables and addressing state that
    /// an optimizing compiler keeps in registers, so charging them would
    /// (like the integer ALU work) bury the precision signal under
    /// code-generator noise. Stack pushes/pops keep their memory cost —
    /// instrumentation snippets pay for their register saves.
    pub fn cost(&self, kind: &InstKind) -> u64 {
        let is_fp_data = matches!(
            kind,
            InstKind::FpArith { .. }
                | InstKind::FpSqrt { .. }
                | InstKind::FpMath { .. }
                | InstKind::FpUcomi { .. }
                | InstKind::CvtF2F { .. }
                | InstKind::CvtI2F { .. }
                | InstKind::CvtF2I { .. }
                | InstKind::MovF { .. }
        );
        let mem_extra = kind
            .mem_ref()
            .filter(|_| is_fp_data)
            .map(|_| {
                let bytes = match kind {
                    InstKind::FpArith { prec, packed, .. }
                    | InstKind::FpSqrt { prec, packed, .. } => {
                        if *packed {
                            16
                        } else {
                            prec.bytes()
                        }
                    }
                    InstKind::FpMath { prec, .. }
                    | InstKind::FpUcomi { prec, .. }
                    | InstKind::CvtF2I { from: prec, .. } => prec.bytes(),
                    InstKind::CvtF2F { to, .. } => match to {
                        Prec::Single => 8, // reads a double
                        Prec::Double => 4, // reads a single
                    },
                    InstKind::MovF { width, .. } => width.bytes(),
                    _ => 8,
                };
                self.mem(bytes)
            })
            .unwrap_or(0);

        let op = match kind {
            InstKind::FpArith { op, prec, .. } => match (op, prec) {
                (FpAluOp::Div, Prec::Single) => self.fp_div_single,
                (FpAluOp::Div, Prec::Double) => self.fp_div_double,
                (_, Prec::Single) => self.fp_simple_single,
                (_, Prec::Double) => self.fp_simple_double,
            },
            InstKind::FpSqrt { prec, .. } => match prec {
                Prec::Single => self.fp_div_single,
                Prec::Double => self.fp_div_double,
            },
            InstKind::FpMath { prec, .. } => match prec {
                Prec::Single => self.fp_math_single,
                Prec::Double => self.fp_math_double,
            },
            InstKind::FpUcomi { .. }
            | InstKind::CvtF2F { .. }
            | InstKind::CvtI2F { .. }
            | InstKind::CvtF2I { .. }
            | InstKind::FpTrunc { .. } => self.fp_cvt,
            InstKind::MovF { width, dst, src } => {
                // register-to-register moves are cheap; the bandwidth term
                // above covers memory traffic.
                let _ = (dst, src);
                match width {
                    Width::W128 => 2 * self.int_op,
                    _ => self.int_op,
                }
            }
            InstKind::Push { .. } | InstKind::Pop { .. } => self.int_op + self.mem(8),
            InstKind::Call { .. } => self.call,
            InstKind::Nop => 0,
            _ => self.int_op,
        };
        op + mem_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{FpLoc, MemRef, Xmm, RM};

    #[test]
    fn double_costs_more_than_single() {
        let cm = CostModel::default();
        let add = |prec| InstKind::FpArith {
            op: FpAluOp::Add,
            prec,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert!(cm.cost(&add(Prec::Double)) > cm.cost(&add(Prec::Single)));
        let div = |prec| InstKind::FpArith {
            op: FpAluOp::Div,
            prec,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert_eq!(cm.cost(&div(Prec::Double)), 2 * cm.cost(&div(Prec::Single)));
    }

    #[test]
    fn memory_traffic_scales_with_width() {
        let cm = CostModel::default();
        let load = |width| InstKind::MovF {
            width,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::abs(0)),
        };
        let c32 = cm.cost(&load(Width::W32));
        let c64 = cm.cost(&load(Width::W64));
        let c128 = cm.cost(&load(Width::W128));
        assert!(c32 < c64 && c64 < c128);
    }

    #[test]
    fn nop_is_free() {
        assert_eq!(CostModel::default().cost(&InstKind::Nop), 0);
    }
}
