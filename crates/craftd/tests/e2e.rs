//! End-to-end daemon tests over real TCP: submit jobs, follow live
//! streams, and check that daemon runs are byte-comparable with
//! in-process analyses, that the cross-job cache pays off, and that the
//! daemon survives crashing jobs, sheds load, and drains gracefully.

use craftd::{http, DaemonConfig, JobManager, Server};
use mixedprec::{AnalysisSystem, JobSpec};
use mptrace::json::{self, Value};
use mptrace::stream::LiveLog;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spin up a daemon on an ephemeral port with a fresh data dir.
struct Daemon {
    addr: String,
    mgr: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    data_dir: PathBuf,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(tag: &str, tweak: impl FnOnce(&mut DaemonConfig)) -> Daemon {
        let data_dir =
            std::env::temp_dir().join(format!("craftd-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let mut cfg = DaemonConfig {
            data_dir: data_dir.clone(),
            workers: 4,
            max_running: 2,
            queue_cap: 8,
            ..Default::default()
        };
        tweak(&mut cfg);
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let mgr = Arc::clone(server.manager());
        let stop = server.stop_handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));
        Daemon { addr, mgr, stop, data_dir, thread: Some(thread) }
    }

    fn submit(&self, spec: &JobSpec) -> (u16, Value) {
        let (status, body) =
            http::request(&self.addr, "POST", "/jobs", Some(&spec.to_json())).expect("submit");
        (status, json::parse(&body).expect("submit response json"))
    }

    fn status(&self, id: &str) -> Value {
        let (status, body) =
            http::request(&self.addr, "GET", &format!("/jobs/{id}"), None).expect("status");
        assert_eq!(status, 200, "status for {id}: {body}");
        json::parse(&body).expect("status json")
    }

    /// Poll until the job reaches a terminal state; panic on timeout.
    fn wait_terminal(&self, id: &str) -> Value {
        let t0 = Instant::now();
        loop {
            let v = self.status(id);
            let state = v.get("state").and_then(Value::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "crashed" | "pending") {
                return v;
            }
            assert!(t0.elapsed() < Duration::from_secs(120), "job {id} stuck in {state:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}

fn ep_spec() -> JobSpec {
    JobSpec { bench: "ep".into(), class: "s".into(), threads: Some(2), ..Default::default() }
}

fn vecops_spec() -> JobSpec {
    JobSpec { bench: "vecops".into(), class: "s".into(), threads: Some(2), ..Default::default() }
}

#[test]
fn daemon_run_matches_in_process_and_second_job_hits_shared_cache() {
    let d = Daemon::start("identity", |_| {});

    // Submit and follow the live stream to completion.
    let (status, resp) = d.submit(&ep_spec());
    assert_eq!(status, 202, "{resp:?}");
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let mut streamed = String::new();
    let code = http::stream(&d.addr, "GET", &format!("/jobs/{id}/live"), None, |piece| {
        streamed.push_str(piece)
    })
    .expect("live stream");
    assert_eq!(code, 200);
    // The follower saw the whole stream: meta line first, whole records
    // only, ending in the forced "done" progress record.
    assert!(streamed.starts_with('{') && streamed.contains("mptrace-live"), "{streamed:?}");
    let log = LiveLog::parse_tolerant(&streamed).expect("streamed live log folds");
    assert!(log.warning.is_none(), "torn line reached a follower: {:?}", log.warning);
    assert_eq!(log.latest_progress().expect("progress").progress.phase, "done");

    let job = d.wait_terminal(&id);
    assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{job:?}");

    // The daemon's answer must be identical to the same options run
    // in-process (elapsed and cache hits are the only run-dependent
    // figures, and neither is compared).
    let spec = ep_spec();
    let sys = AnalysisSystem::with_options(spec.workload().unwrap(), spec.options().unwrap());
    let rec = sys.recommend();
    let summary = job.get("summary").expect("summary");
    assert_eq!(
        summary.get("candidates").and_then(Value::as_u64),
        Some(rec.report.candidates as u64)
    );
    assert_eq!(
        summary.get("tested").and_then(Value::as_u64),
        Some(rec.report.configs_tested as u64)
    );
    assert_eq!(summary.get("static_pct").and_then(Value::as_f64), Some(rec.report.static_pct));
    assert_eq!(summary.get("dynamic_pct").and_then(Value::as_f64), Some(rec.report.dynamic_pct));
    assert_eq!(summary.get("final_pass").and_then(Value::as_bool), Some(rec.report.final_pass));
    assert_eq!(
        job.get("fig10").and_then(Value::as_str),
        Some(rec.report.figure10_row("ep.s").as_str())
    );
    assert_eq!(job.get("modelled_speedup").and_then(Value::as_f64), Some(rec.modelled_speedup));
    assert_eq!(
        job.get("config_hash").and_then(Value::as_str),
        Some(mptrace::registry::fnv1a64(&rec.config_text).as_str())
    );

    // An identical second job is answered from the shared cross-job
    // cache: same report, and every evaluation a cache hit.
    let (status, resp) = d.submit(&ep_spec());
    assert_eq!(status, 202);
    let id2 = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let job2 = d.wait_terminal(&id2);
    assert_eq!(job2.get("state").and_then(Value::as_str), Some("done"), "{job2:?}");
    let hits2 = job2.get("cache_hits").and_then(Value::as_u64).unwrap();
    assert!(hits2 > 0, "second identical job should hit the shared cache: {job2:?}");
    assert!(d.mgr.cache().hits() > 0, "shared cache saw no hits");
    assert_eq!(job2.get("fig10"), job.get("fig10"));

    // Daemon metrics expose the lifecycle and cache counters.
    let (code, metrics) = http::request(&d.addr, "GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(metrics.contains("craft_daemon_jobs_submitted_total 2"), "{metrics}");
    assert!(metrics.contains("craft_daemon_jobs_completed_total 2"), "{metrics}");
    assert!(metrics.contains("craft_daemon_cache_hits"), "{metrics}");

    // Per-job metrics come back labelled with the job id.
    let (code, jm) = http::request(&d.addr, "GET", &format!("/jobs/{id}/metrics"), None).unwrap();
    assert_eq!(code, 200);
    assert!(jm.contains(&format!("job=\"{id}\"")), "{jm}");
    assert!(jm.contains("bench=\"ep\""), "{jm}");

    // The run directory is a full craft-compatible artifact set.
    let dir = d.mgr.job_dir(&id);
    for f in
        ["job.json", "status.json", "live.jsonl", "events.jsonl", "trace.jsonl", "manifest.json"]
    {
        assert!(dir.join(f).is_file(), "missing {f} in {}", dir.display());
    }
    // The second run of the same bench got a compare-on-completion diff.
    assert!(
        d.mgr.job_dir(&id2).join("compare.txt").is_file(),
        "second run should have been compared against the first"
    );
    assert!(job2.get("regressions").and_then(Value::as_u64).is_some(), "{job2:?}");
}

#[test]
fn one_connection_serves_a_whole_request_sequence() {
    // Keep-alive against the real daemon: a client's submit → poll →
    // metrics sequence rides one TCP connection instead of one per
    // request.
    let d = Daemon::start("keepalive", |cfg| cfg.max_running = 0);
    let mut client = http::Client::new(&d.addr);
    let (code, body) = client.request("POST", "/jobs", Some(&vecops_spec().to_json())).unwrap();
    assert_eq!(code, 202, "{body}");
    let id = json::parse(&body)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
        .expect("job id");
    let (code, _) = client.request("GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(code, 200);
    let (code, _) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    // The regression this guards: the second and third request reused
    // the first request's connection.
    assert_eq!(client.reused(), 2);
}

#[test]
fn lattice_jobs_round_trip_through_the_daemon() {
    let d = Daemon::start("lattice", |_| {});
    let spec = JobSpec { lattice: "s,b".into(), ..ep_spec() };
    let (status, resp) = d.submit(&spec);
    assert_eq!(status, 202, "{resp:?}");
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let job = d.wait_terminal(&id);
    assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{job:?}");
    // The lattice travels into the spec echo and the run manifest.
    assert_eq!(job.get("spec").and_then(|s| s.get("lattice")).and_then(Value::as_str), Some("s,b"));
    let manifest = mptrace::registry::RunManifest::load(d.mgr.job_dir(&id))
        .expect("manifest parses")
        .expect("manifest written");
    assert_eq!(manifest.lattice, "s,b");
    // A malformed lattice is rejected at the door.
    let (status, resp) = d.submit(&JobSpec { lattice: "s,x".into(), ..ep_spec() });
    assert_eq!(status, 400, "{resp:?}");
}

#[test]
fn crashing_job_is_isolated_and_daemon_keeps_serving() {
    let d = Daemon::start("crash", |cfg| cfg.max_running = 1);

    let (status, resp) = d.submit(&JobSpec { inject_runner_panic: true, ..vecops_spec() });
    assert_eq!(status, 202);
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let job = d.wait_terminal(&id);
    assert_eq!(job.get("state").and_then(Value::as_str), Some("crashed"), "{job:?}");
    let err = job.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(err.contains("injected runner panic"), "{err:?}");

    // The daemon is still alive and still runs jobs to completion.
    let (code, body) = http::request(&d.addr, "GET", "/healthz", None).unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 202);
    let id2 = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let job2 = d.wait_terminal(&id2);
    assert_eq!(job2.get("state").and_then(Value::as_str), Some("done"), "{job2:?}");

    let (_, metrics) = http::request(&d.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("craft_daemon_jobs_crashed_total 1"), "{metrics}");
}

#[test]
fn full_queue_sheds_and_drain_persists_queued_jobs_as_pending() {
    // No runners at all: everything stays queued, making shedding and
    // drain deterministic.
    let d = Daemon::start("shed", |cfg| {
        cfg.max_running = 0;
        cfg.queue_cap = 1;
    });

    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 202);
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();

    // The queue is bounded at 1: the next submission is shed with an
    // explicit 429, not silently delayed.
    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 429, "{resp:?}");
    assert!(
        resp.get("error").and_then(Value::as_str).unwrap_or("").contains("shedding"),
        "{resp:?}"
    );
    let (_, metrics) = http::request(&d.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("craft_daemon_jobs_shed_total 1"), "{metrics}");

    // Drain: the queued job is persisted as `pending` and the daemon
    // shuts down; the record survives on disk for resubmission.
    let (code, _) = http::request(&d.addr, "POST", "/admin/drain", None).unwrap();
    assert_eq!(code, 200);
    // Drain rewrote the queued job to `pending` synchronously, on disk.
    let status_file = d.mgr.job_dir(&id).join("status.json");
    let text = std::fs::read_to_string(&status_file).expect("persisted status.json");
    let v = json::parse(text.trim()).unwrap();
    assert_eq!(v.get("state").and_then(Value::as_str), Some("pending"), "{text}");
    assert_eq!(
        d.mgr.submit(vecops_spec(), None),
        Err(craftd::SubmitError::Draining),
        "a draining daemon accepts no new work"
    );
    let mgr = Arc::clone(&d.mgr);
    drop(d); // joins the server thread — drain must complete, not hang
    assert!(mgr.is_drained());
}

#[test]
fn garbage_request_is_counted_logged_and_does_not_kill_the_daemon() {
    use std::io::{Read, Write};
    let d = Daemon::start("garbage", |cfg| cfg.max_running = 0);

    let mut conn = std::net::TcpStream::connect(&d.addr).expect("connect");
    conn.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // The connection loop survived: the daemon still answers, and the
    // failure is visible in both the metrics and the structured log.
    let (code, body) = http::request(&d.addr, "GET", "/healthz", None).unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (_, metrics) = http::request(&d.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("craft_http_parse_errors_total 1"), "{metrics}");
    assert!(metrics.contains("craft_http_parse_errors_bad_request_line_total 1"), "{metrics}");

    let (records, warn) =
        craftd::obs::read_log(&d.data_dir.join(craftd::obs::LOG_FILE)).expect("daemon log reads");
    assert!(warn.is_none(), "{warn:?}");
    let parse_err = records
        .iter()
        .find(|r| r.event == "http_parse_error")
        .expect("parse error reached the daemon log");
    assert_eq!(parse_err.level, craftd::obs::Level::Warn);
    assert!(
        parse_err.fields.iter().any(
            |(k, v)| k == "reason" && *v == craftd::obs::LogField::S("bad_request_line".into())
        ),
        "{parse_err:?}"
    );
}

#[test]
fn job_metrics_wait_with_retry_after_then_fold_partial_live_deltas() {
    use std::io::{Read, Write};
    // No runners: the job stays queued, so it has produced no telemetry.
    let d = Daemon::start("partial", |cfg| cfg.max_running = 0);
    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 202);
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();

    // A scraper gets "come back soon", not "no such job".
    let mut conn = std::net::TcpStream::connect(&d.addr).expect("connect");
    write!(conn, "GET /jobs/{id}/metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 1"), "{raw}");
    drop(d);

    // Once deltas exist they fold into a partial snapshot even with no
    // final trace.jsonl (the running-job view): finish a job, then
    // serve its metrics from live.jsonl alone.
    let d = Daemon::start("partial2", |cfg| cfg.max_running = 1);
    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 202);
    let id = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let job = d.wait_terminal(&id);
    assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{job:?}");
    std::fs::remove_file(d.mgr.job_dir(&id).join("trace.jsonl")).unwrap();
    let (code, jm) = http::request(&d.addr, "GET", &format!("/jobs/{id}/metrics"), None).unwrap();
    assert_eq!(code, 200, "{jm}");
    assert!(jm.contains(&format!("job=\"{id}\"")), "{jm}");
    // A terminal job with no artifacts at all is a 404, not a retry.
    std::fs::remove_file(d.mgr.job_dir(&id).join("live.jsonl")).unwrap();
    let (code, _) = http::request(&d.addr, "GET", &format!("/jobs/{id}/metrics"), None).unwrap();
    assert_eq!(code, 404);
}

#[test]
fn trace_id_flows_from_client_to_log_record_manifest_and_spans() {
    let d = Daemon::start("trace", |_| {});
    let mut client = http::Client::new(&d.addr);
    client.set_trace("tr-e2e-42-0");
    let (code, body) = client.request("POST", "/jobs", Some(&vecops_spec().to_json())).unwrap();
    assert_eq!(code, 202, "{body}");
    let id = json::parse(&body)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
        .expect("job id");
    let job = d.wait_terminal(&id);
    assert_eq!(job.get("state").and_then(Value::as_str), Some("done"), "{job:?}");

    // 1. The job record carries the client's id.
    assert_eq!(job.get("trace").and_then(Value::as_str), Some("tr-e2e-42-0"), "{job:?}");

    // 2. So does the run manifest…
    let manifest = mptrace::registry::RunManifest::load(d.mgr.job_dir(&id))
        .expect("manifest parses")
        .expect("manifest written");
    assert_eq!(manifest.trace_id, "tr-e2e-42-0");

    // 3. …the run-dir spans (the `trace:<id>` span name)…
    let spans = std::fs::read_to_string(d.mgr.job_dir(&id).join("trace.jsonl")).unwrap();
    assert!(spans.contains("trace:tr-e2e-42-0"), "{spans}");

    // 4. …and the structured daemon log, on both the request record and
    // the job lifecycle records.
    let (records, _) =
        craftd::obs::read_log(&d.data_dir.join(craftd::obs::LOG_FILE)).expect("daemon log reads");
    let has = |event: &str| {
        records.iter().any(|r| {
            r.event == event
                && r.fields.iter().any(|(k, v)| {
                    k == "trace" && *v == craftd::obs::LogField::S("tr-e2e-42-0".into())
                })
        })
    };
    assert!(has("request"), "no request record with the trace id: {records:?}");
    assert!(has("job_queued"), "no intake record with the trace id");
    assert!(has("job_state"), "no lifecycle record with the trace id");

    // A client that sends no id still gets a traceable job: the daemon
    // mints one at intake.
    let (status, resp) = d.submit(&vecops_spec());
    assert_eq!(status, 202);
    let id2 = resp.get("id").and_then(Value::as_str).unwrap().to_string();
    let minted = d.status(&id2).get("trace").and_then(Value::as_str).unwrap_or("").to_string();
    assert!(minted.starts_with("tr-"), "daemon should mint a trace id, got {minted:?}");

    // The unified /metrics exposition holds daemon request telemetry and
    // the per-job series side by side. Reuse the keep-alive client so
    // the reuse counter has something to show.
    let (code, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(code, 200);
    let (code, metrics) = http::request(&d.addr, "GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(metrics.contains("craft_http_requests_total"), "{metrics}");
    assert!(metrics.contains("craft_http_latency_us_bucket"), "{metrics}");
    assert!(metrics.contains("craft_http_keepalive_reuse_total"), "{metrics}");
    assert!(metrics.contains(&format!("job=\"{id}\"")), "{metrics}");
    assert!(metrics.contains("bench=\"vecops\""), "{metrics}");
    assert!(metrics.contains("lattice=\"classic\""), "{metrics}");
}
