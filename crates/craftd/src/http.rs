//! A hand-rolled HTTP/1.1 subset on `std::net` — just enough protocol
//! for the daemon's job API and its tests, with zero dependencies.
//!
//! Server side: [`read_request`] parses one request (request line,
//! headers, `Content-Length` body) off a stream; [`respond`] /
//! [`respond_json`] write a complete keep-alive response (the
//! connection stays open for the next request unless the client asked
//! `Connection: close`); and [`Chunked`] writes a
//! `Transfer-Encoding: chunked` body incrementally, which is how
//! `GET /jobs/<id>/live` streams a `live.jsonl` file that is still
//! being written — a live follow ties up the connection for the job's
//! lifetime, so it is the one response that declares
//! `Connection: close`.
//!
//! Client side ([`Client`], plus the one-shot [`request`] / [`stream`]
//! wrappers): the matching minimal client, used by the end-to-end tests
//! (and mirrored by `craft submit`). A [`Client`] holds one connection
//! open across requests (HTTP/1.1 keep-alive) and reconnects
//! transparently when the server closed it in between; body framing is
//! `Content-Length`, chunked, or read-to-EOF (EOF framing ends reuse).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/jobs/ep-1/live`).
    pub path: String,
    /// Raw query string after `?` (empty if absent).
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// The client sent `Connection: close` — respond, then hang up
    /// instead of waiting for another request.
    pub close: bool,
    /// The `x-craft-trace` request id, if the client sent one. The
    /// daemon stamps it on the request's log record and, for job
    /// submissions, onto the job itself (record, manifest, run-dir
    /// spans), stitching one client call to everything it caused.
    pub trace: Option<String>,
}

/// Map a [`read_request`] error message to a stable low-cardinality
/// reason token, suitable as a metric-name suffix
/// (`http.parse_errors.<reason>`).
pub fn parse_error_reason(err: &str) -> &'static str {
    if err.contains("head too large") {
        "head_too_large"
    } else if err.contains("body too large") {
        "body_too_large"
    } else if err.contains("malformed request line") {
        "bad_request_line"
    } else if err.contains("bad content-length") {
        "bad_content_length"
    } else if err.contains("mid-request") || err.contains("read body") {
        "truncated"
    } else {
        "other"
    }
}

/// Read and parse one request from `stream`. Returns `Ok(None)` on a
/// clean EOF before any bytes (client connected and went away, or a
/// kept-alive connection ended between requests).
pub fn read_request(stream: &mut impl Read) -> Result<Option<Request>, String> {
    // Accumulate the head byte-wise until the blank line; reading past
    // it would eat the start of a pipelined successor on a kept-alive
    // connection.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => return Ok(None),
            Ok(0) => return Err("connection closed mid-request".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("read: {e}")),
        }
        if head.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
    }
    let head = String::from_utf8_lossy(&head[..head.len() - 4]).into_owned();
    let mut lines = head.split("\r\n");
    let reqline = lines.next().unwrap_or_default();
    let mut parts = reqline.split_ascii_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default();
    if method.is_empty() || !target.starts_with('/') {
        return Err(format!("malformed request line {reqline:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    let mut close = false;
    let mut trace = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim(), value.trim());
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.parse().map_err(|_| format!("bad content-length {value:?}"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("x-craft-trace") && !value.is_empty() {
                trace = Some(value.to_string());
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("request body too large".into());
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
    Ok(Some(Request { method, path, query, body, close, trace }))
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response with a `Content-Length` body. The
/// connection stays usable for the next request (keep-alive); honoring
/// a client's `Connection: close` is the accept loop's job.
pub fn respond(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    respond_with(w, status, content_type, &[], body)
}

/// [`respond`] with extra response headers (e.g. `Retry-After` on a
/// `503` for a job that has produced no telemetry yet). Header names
/// and values are written verbatim.
pub fn respond_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: keep-alive\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// [`respond`] with `application/json`.
pub fn respond_json(w: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    respond(w, status, "application/json", body.as_bytes())
}

/// An in-progress `Transfer-Encoding: chunked` response body. Declares
/// `Connection: close`: a chunked response here is a live follow that
/// holds the connection for the job's lifetime, so it ends the
/// keep-alive sequence.
pub struct Chunked<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> Chunked<'a, W> {
    /// Write the response head and start the chunked body.
    pub fn start(w: &'a mut W, status: u16, content_type: &str) -> std::io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        )?;
        Ok(Chunked { w })
    }

    /// Write one chunk. Empty input is skipped (a zero-length chunk
    /// would terminate the body).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Write the terminal chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// One-shot: send a single request on a fresh connection and collect
/// the whole response. Returns `(status, body)`. For request sequences,
/// hold a [`Client`] instead and reuse its connection.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    Client::new(addr).request(method, path, body)
}

/// One-shot [`Client::stream`] on a fresh connection.
pub fn stream(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    mut on_data: impl FnMut(&str),
) -> Result<u16, String> {
    Client::new(addr).stream(method, path, body, &mut on_data)
}

/// A keep-alive HTTP/1.1 client: holds one connection to the server
/// open across requests, reconnecting transparently (one retry) when
/// the server closed it between requests. Reuse ends when a response
/// declares `Connection: close` or is framed by EOF.
pub struct Client {
    addr: String,
    conn: Option<TcpStream>,
    reused: usize,
    trace: Option<String>,
}

impl Client {
    /// A client for `addr`; no connection is made until the first
    /// request.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), conn: None, reused: 0, trace: None }
    }

    /// Send `x-craft-trace: id` with every subsequent request, so the
    /// server can stitch this client's calls to their effects. Pass an
    /// empty id to stop.
    pub fn set_trace(&mut self, id: impl Into<String>) {
        let id = id.into();
        self.trace = if id.is_empty() { None } else { Some(id) };
    }

    /// Requests that completed over an already-open connection — the
    /// keep-alive hit count.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Send one request and collect the whole response body. Returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let mut out = String::new();
        let status = self.stream(method, path, body, &mut |piece: &str| out.push_str(piece))?;
        Ok((status, out))
    }

    /// Like [`Client::request`], but hands body pieces to `on_data` as
    /// they arrive (chunk-by-chunk for chunked responses), so a caller
    /// can follow a live stream. Returns the status code once the body
    /// is complete.
    pub fn stream(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        on_data: &mut dyn FnMut(&str),
    ) -> Result<u16, String> {
        // A cached connection may have been closed by the server since
        // the last exchange; that surfaces as a send/status-line error
        // before any body data arrives, so one retry on a fresh
        // connection is safe. Once `on_data` has seen bytes the request
        // is committed and errors propagate.
        let had_cached = self.conn.is_some();
        let mut delivered = false;
        match self.attempt(method, path, body, on_data, &mut delivered) {
            Err(_) if had_cached && !delivered => {
                self.conn = None;
                self.attempt(method, path, body, on_data, &mut delivered)
            }
            done => done,
        }
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        on_data: &mut dyn FnMut(&str),
        delivered: &mut bool,
    ) -> Result<u16, String> {
        let addr = &self.addr;
        let was_cached = self.conn.is_some();
        let mut conn = match self.conn.take() {
            Some(c) => c,
            None => TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?,
        };
        let payload = body.unwrap_or("");
        let trace_header = match &self.trace {
            Some(id) => format!("x-craft-trace: {id}\r\n"),
            None => String::new(),
        };
        write!(
            conn,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: keep-alive\r\n{trace_header}\r\n{payload}",
            payload.len()
        )
        .map_err(|e| format!("send: {e}"))?;
        conn.flush().map_err(|e| format!("send: {e}"))?;

        let read_line = |conn: &mut TcpStream| -> Result<String, String> {
            let mut line = Vec::new();
            let mut byte = [0u8; 1];
            while !line.ends_with(b"\r\n") {
                match conn.read(&mut byte) {
                    Ok(0) => return Err("connection closed mid-line".into()),
                    Ok(_) => line.push(byte[0]),
                    Err(e) => return Err(format!("read: {e}")),
                }
            }
            line.truncate(line.len() - 2);
            Ok(String::from_utf8_lossy(&line).into_owned())
        };

        let status_line = read_line(&mut conn)?;
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
        let mut chunked = false;
        let mut server_close = false;
        let mut content_length: Option<usize> = None;
        loop {
            let line = read_line(&mut conn)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
                if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                    chunked = true;
                } else if name == "content-length" {
                    content_length =
                        Some(value.parse().map_err(|_| format!("bad content-length {value:?}"))?);
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    server_close = true;
                }
            }
        }

        let mut reusable = !server_close;
        if chunked {
            loop {
                let size_line = read_line(&mut conn)?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| format!("bad chunk size {size_line:?}"))?;
                let mut data = vec![0u8; size + 2]; // payload + trailing CRLF
                conn.read_exact(&mut data).map_err(|e| format!("read chunk: {e}"))?;
                if size == 0 {
                    break;
                }
                *delivered = true;
                on_data(&String::from_utf8_lossy(&data[..size]));
            }
        } else if let Some(n) = content_length {
            let mut data = vec![0u8; n];
            conn.read_exact(&mut data).map_err(|e| format!("read body: {e}"))?;
            *delivered = true;
            on_data(&String::from_utf8_lossy(&data));
        } else {
            // EOF-framed: the body ends with the connection.
            reusable = false;
            let mut data = Vec::new();
            conn.read_to_end(&mut data).map_err(|e| format!("read body: {e}"))?;
            *delivered = true;
            on_data(&String::from_utf8_lossy(&data));
        }
        if reusable {
            self.conn = Some(conn);
        }
        if was_cached {
            self.reused += 1;
        }
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn empty_connection_is_not_an_error() {
        assert!(read_request(&mut &b""[..]).unwrap().is_none());
        assert!(read_request(&mut &b"GARBAGE"[..]).is_err());
    }

    #[test]
    fn chunked_writer_frames_correctly() {
        let mut out = Vec::new();
        let mut ch = Chunked::start(&mut out, 200, "text/plain").unwrap();
        ch.chunk(b"hello ").unwrap();
        ch.chunk(b"").unwrap(); // skipped, not a terminator
        ch.chunk(b"world").unwrap();
        ch.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"));
    }

    #[test]
    fn client_and_server_round_trip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: plain response; second: chunked.
            let (mut a, _) = listener.accept().unwrap();
            let req = read_request(&mut a).unwrap().unwrap();
            assert_eq!(req.body, b"{\"k\":1}");
            respond_json(&mut a, 202, "{\"ok\":true}").unwrap();
            let (mut b, _) = listener.accept().unwrap();
            read_request(&mut b).unwrap().unwrap();
            let mut ch = Chunked::start(&mut b, 200, "application/jsonl").unwrap();
            ch.chunk(b"line1\n").unwrap();
            ch.chunk(b"line2\n").unwrap();
            ch.finish().unwrap();
        });
        let (status, body) = request(&addr, "POST", "/jobs", Some("{\"k\":1}")).unwrap();
        assert_eq!((status, body.as_str()), (202, "{\"ok\":true}"));
        let mut pieces = Vec::new();
        let status = stream(&addr, "GET", "/x/live", None, |p| pieces.push(p.to_string())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(pieces.join(""), "line1\nline2\n");
        server.join().unwrap();
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let server_accepts = Arc::clone(&accepts);
        let server = std::thread::spawn(move || {
            // Accept once, then serve every request the connection
            // carries — the server side of keep-alive.
            let (mut c, _) = listener.accept().unwrap();
            server_accepts.fetch_add(1, Ordering::SeqCst);
            while let Ok(Some(req)) = read_request(&mut c) {
                respond_json(&mut c, 200, &format!("{{\"path\":\"{}\"}}", req.path)).unwrap();
                if req.close {
                    break;
                }
            }
        });
        let mut client = Client::new(&addr);
        let (s1, b1) = client.request("GET", "/a", None).unwrap();
        let (s2, b2) = client.request("GET", "/b", None).unwrap();
        assert_eq!((s1, s2), (200, 200));
        assert!(b1.contains("/a") && b2.contains("/b"));
        // The regression this guards: both requests went over ONE
        // connection.
        assert_eq!(client.reused(), 1);
        drop(client);
        server.join().unwrap();
        assert_eq!(accepts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn client_reconnects_when_the_server_closed_in_between() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // A server that hangs up after every response despite the
            // keep-alive advertisement.
            for _ in 0..2 {
                let (mut c, _) = listener.accept().unwrap();
                read_request(&mut c).unwrap().unwrap();
                respond_json(&mut c, 200, "{}").unwrap();
            }
        });
        let mut client = Client::new(&addr);
        assert_eq!(client.request("GET", "/a", None).unwrap().0, 200);
        // The cached connection is dead; the client must retry on a
        // fresh one instead of surfacing the stale-socket error.
        assert_eq!(client.request("GET", "/b", None).unwrap().0, 200);
        assert_eq!(client.reused(), 0);
        server.join().unwrap();
    }

    #[test]
    fn trace_header_is_parsed_and_sent() {
        let raw = b"GET / HTTP/1.1\r\nX-Craft-Trace: tr-1-2-3\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.trace.as_deref(), Some("tr-1-2-3"));
        let raw = b"GET / HTTP/1.1\r\n\r\n";
        assert!(read_request(&mut &raw[..]).unwrap().unwrap().trace.is_none());

        // Client side: set_trace puts the header on the wire.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut c, _) = listener.accept().unwrap();
            let req = read_request(&mut c).unwrap().unwrap();
            respond_json(&mut c, 200, "{}").unwrap();
            req.trace
        });
        let mut client = Client::new(&addr);
        client.set_trace("tr-9-9-9");
        assert_eq!(client.request("GET", "/", None).unwrap().0, 200);
        assert_eq!(server.join().unwrap().as_deref(), Some("tr-9-9-9"));
    }

    #[test]
    fn parse_error_reasons_are_stable_tokens() {
        assert_eq!(parse_error_reason("request head too large"), "head_too_large");
        assert_eq!(parse_error_reason("request body too large"), "body_too_large");
        assert_eq!(parse_error_reason("malformed request line \"GARBAGE\""), "bad_request_line");
        assert_eq!(parse_error_reason("bad content-length \"x\""), "bad_content_length");
        assert_eq!(parse_error_reason("connection closed mid-request"), "truncated");
        assert_eq!(parse_error_reason("read: broken pipe"), "other");
    }

    #[test]
    fn extra_response_headers_are_written() {
        let mut out = Vec::new();
        respond_with(&mut out, 503, "application/json", &[("Retry-After", "1")], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn requests_advertise_keep_alive_and_parse_close() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(read_request(&mut &raw[..]).unwrap().unwrap().close);
        let raw = b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        assert!(!read_request(&mut &raw[..]).unwrap().unwrap().close);
        let raw = b"GET / HTTP/1.1\r\n\r\n";
        assert!(!read_request(&mut &raw[..]).unwrap().unwrap().close);
    }
}
