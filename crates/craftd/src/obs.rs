//! Structured daemon logging: leveled JSONL records with trace ids.
//!
//! The daemon's request and job lifecycle is written to
//! `daemon.log.jsonl` in the data directory — one JSON object per line,
//! in a fixed field order so records round-trip **byte-exactly** through
//! [`LogRecord::to_json`] / [`LogRecord::parse`] (the same discipline as
//! `mptrace`'s manifest and live-log formats). The file is size-capped:
//! when it would exceed the configured limit it is rotated once to
//! `daemon.log.jsonl.1`, keeping at most two generations on disk.
//!
//! Records carry free-form key/value fields; by convention request
//! records include a `trace` field holding the `x-craft-trace` id, which
//! is the string that stitches a client call to the daemon decision, the
//! job manifest, and the run-dir spans.

use mptrace::json::{self, esc, Value};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Name of the daemon log inside the data directory.
pub const LOG_FILE: &str = "daemon.log.jsonl";

/// Severity of a [`LogRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine lifecycle events (requests, job transitions).
    Info,
    /// Recoverable anomalies worth surfacing (parse errors, sheds).
    Warn,
    /// Failures (job crashes, I/O errors).
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
    fn from_str(s: &str) -> Option<Level> {
        match s {
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A field value on a [`LogRecord`]: a string or an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogField {
    /// String-valued field.
    S(String),
    /// Integer-valued field (counts, sizes, durations in µs).
    U(u64),
}

/// One structured log line.
///
/// Serialized field order is fixed (`t_us`, `level`, `event`, then the
/// free-form fields in insertion order), which makes
/// `parse(rec.to_json()) == rec` and `parse(x).to_json() == x` hold
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Unix time of the event in microseconds.
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Short machine-readable event name, e.g. `request`, `job_done`.
    pub event: String,
    /// Free-form key/value payload, in insertion order.
    pub fields: Vec<(String, LogField)>,
}

impl LogRecord {
    /// Build a record stamped with the current wall-clock time.
    pub fn now(level: Level, event: &str) -> LogRecord {
        let t_us =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
        LogRecord { t_us, level, event: event.to_string(), fields: Vec::new() }
    }

    /// Append a string field (builder style).
    pub fn s(mut self, key: &str, val: impl Into<String>) -> LogRecord {
        self.fields.push((key.to_string(), LogField::S(val.into())));
        self
    }

    /// Append an integer field (builder style).
    pub fn u(mut self, key: &str, val: u64) -> LogRecord {
        self.fields.push((key.to_string(), LogField::U(val)));
        self
    }

    /// Serialize to a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t_us\":");
        s.push_str(&self.t_us.to_string());
        s.push_str(",\"level\":\"");
        s.push_str(self.level.as_str());
        s.push_str("\",\"event\":");
        esc(&mut s, &self.event);
        for (k, v) in &self.fields {
            s.push(',');
            esc(&mut s, k);
            s.push(':');
            match v {
                LogField::S(text) => esc(&mut s, text),
                LogField::U(n) => s.push_str(&n.to_string()),
            }
        }
        s.push('}');
        s
    }

    /// Parse a record produced by [`to_json`](LogRecord::to_json).
    pub fn parse(line: &str) -> Result<LogRecord, String> {
        let v = json::parse(line)?;
        Self::from_value(&v)
    }

    fn from_value(v: &Value) -> Result<LogRecord, String> {
        let obj = match v {
            Value::Obj(fields) => fields,
            _ => return Err("log record is not an object".into()),
        };
        let mut t_us = None;
        let mut level = None;
        let mut event = None;
        let mut fields = Vec::new();
        for (k, val) in obj {
            match (k.as_str(), val) {
                ("t_us", v) => t_us = v.as_u64(),
                ("level", Value::Str(s)) => level = Level::from_str(s),
                ("event", Value::Str(s)) => event = Some(s.clone()),
                (k, Value::Str(s)) => fields.push((k.to_string(), LogField::S(s.clone()))),
                (k, v) => {
                    // `Value::as_u64` truncates floats; a log field must
                    // be a string or a whole non-negative number.
                    let n = v
                        .as_f64()
                        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                        .map(|n| n as u64)
                        .ok_or_else(|| format!("field {k:?}: not a string or u64"))?;
                    fields.push((k.to_string(), LogField::U(n)));
                }
            }
        }
        Ok(LogRecord {
            t_us: t_us.ok_or("missing t_us")?,
            level: level.ok_or("missing/bad level")?,
            event: event.ok_or("missing event")?,
            fields,
        })
    }
}

/// Size-capped, append-only JSONL daemon log.
///
/// Thread-safe; every [`log`](DaemonLog::log) call appends one line and
/// flushes. When the file would grow past `max_bytes` it is first
/// rotated to `<path>.1` (replacing any previous generation), so the
/// live file plus one archive bound disk usage at roughly `2 × max_bytes`.
pub struct DaemonLog {
    inner: Mutex<LogInner>,
    path: PathBuf,
    max_bytes: u64,
}

struct LogInner {
    file: File,
    written: u64,
}

impl DaemonLog {
    /// Open (appending) or create the log at `path`.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<DaemonLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(DaemonLog { inner: Mutex::new(LogInner { file, written }), path, max_bytes })
    }

    /// Append one record. Rotation and I/O errors are swallowed after a
    /// best-effort stderr note — logging must never take the daemon down.
    pub fn log(&self, rec: &LogRecord) {
        let line = rec.to_json();
        // Poison-proof: a panicked holder leaves a usable inner value.
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let len = line.len() as u64 + 1;
        if inner.written > 0 && inner.written + len > self.max_bytes {
            if let Err(e) = self.rotate(&mut inner) {
                eprintln!("craftd: log rotation failed: {e}");
            }
        }
        if let Err(e) = writeln!(inner.file, "{line}") {
            eprintln!("craftd: log write failed: {e}");
            return;
        }
        inner.written += len;
        let _ = inner.file.flush();
    }

    fn rotate(&self, inner: &mut LogInner) -> std::io::Result<()> {
        inner.file.flush()?;
        let archive = self.path.with_extension("jsonl.1");
        fs::rename(&self.path, &archive)?;
        inner.file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        inner.written = 0;
        Ok(())
    }

    /// Path of the live log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read a daemon log file, tolerating a torn final line (daemon killed
/// mid-write). Returns the parsed records plus an optional warning
/// describing a dropped truncated tail.
pub fn read_log(path: &Path) -> Result<(Vec<LogRecord>, Option<String>), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let (lines, warn) = json::parse_jsonl_tolerant(&text)?;
    let mut out = Vec::with_capacity(lines.len());
    for (lineno, v) in &lines {
        out.push(LogRecord::from_value(v).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok((out, warn))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("craftd-obs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn log_record_round_trips_byte_exactly() {
        let rec = LogRecord {
            t_us: 1_700_000_000_123_456,
            level: Level::Warn,
            event: "request".into(),
            fields: vec![],
        }
        .s("method", "POST")
        .s("path", "/jobs")
        .u("status", 503)
        .u("us", 412)
        .s("trace", "tr-1700000000-42-0")
        .s("note", "queue \"full\"\nshed");
        let line = rec.to_json();
        let back = LogRecord::parse(&line).unwrap();
        assert_eq!(back, rec);
        // Byte-exact in both directions.
        assert_eq!(back.to_json(), line);
        let reparsed = LogRecord::parse(&back.to_json()).unwrap();
        assert_eq!(reparsed.to_json(), line);
    }

    #[test]
    fn log_record_rejects_missing_or_bad_header_fields() {
        assert!(LogRecord::parse("{\"level\":\"info\",\"event\":\"x\"}").is_err());
        assert!(LogRecord::parse("{\"t_us\":1,\"level\":\"loud\",\"event\":\"x\"}").is_err());
        assert!(LogRecord::parse("{\"t_us\":1,\"level\":\"info\"}").is_err());
        assert!(LogRecord::parse("[1,2]").is_err());
        // A float payload field is neither a string nor a u64.
        assert!(
            LogRecord::parse("{\"t_us\":1,\"level\":\"info\",\"event\":\"x\",\"f\":1.5}").is_err()
        );
    }

    #[test]
    fn rotation_keeps_at_most_two_generations() {
        let dir = tmp_dir("rotate");
        let path = dir.join(LOG_FILE);
        // Each record serializes to well under 200 bytes; cap at 256 so a
        // few appends force several rotations.
        let log = DaemonLog::open(&path, 256).unwrap();
        for i in 0..20 {
            log.log(&LogRecord::now(Level::Info, "tick").u("n", i));
        }
        let live = fs::metadata(&path).unwrap().len();
        assert!(live <= 256, "live log {live} bytes exceeds cap");
        let archive = path.with_extension("jsonl.1");
        let archived = fs::metadata(&archive).unwrap().len();
        assert!(archived <= 256, "archive {archived} bytes exceeds cap");
        // Both generations still parse cleanly.
        let (recs, warn) = read_log(&path).unwrap();
        assert!(warn.is_none());
        assert!(!recs.is_empty());
        let (old, warn) = read_log(&archive).unwrap();
        assert!(warn.is_none());
        assert!(!old.is_empty());
        // Sequence numbers are contiguous across the rotation boundary.
        let last_old = match old.last().unwrap().fields[0].1 {
            LogField::U(n) => n,
            _ => panic!("expected u64 field"),
        };
        let first_new = match recs.first().unwrap().fields[0].1 {
            LogField::U(n) => n,
            _ => panic!("expected u64 field"),
        };
        assert_eq!(first_new, last_old + 1, "rotation dropped records");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_single_record_still_lands() {
        let dir = tmp_dir("oversize");
        let path = dir.join(LOG_FILE);
        let log = DaemonLog::open(&path, 64).unwrap();
        let big = "x".repeat(200);
        log.log(&LogRecord::now(Level::Info, "big").s("payload", &big));
        log.log(&LogRecord::now(Level::Info, "after"));
        let (recs, _) = read_log(&path).unwrap();
        assert!(!recs.is_empty(), "oversized record must still be written");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let dir = tmp_dir("torn");
        let path = dir.join(LOG_FILE);
        let log = DaemonLog::open(&path, 1 << 20).unwrap();
        log.log(&LogRecord::now(Level::Info, "a"));
        log.log(&LogRecord::now(Level::Error, "b").s("err", "boom"));
        // Simulate a crash mid-write: append half a record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"t_us\":12,\"level\":\"inf").unwrap();
        drop(f);
        let (recs, warn) = read_log(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].event, "b");
        assert_eq!(recs[1].level, Level::Error);
        assert!(warn.unwrap().contains("truncated"), "torn tail must warn");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_and_respects_existing_size() {
        let dir = tmp_dir("reopen");
        let path = dir.join(LOG_FILE);
        {
            let log = DaemonLog::open(&path, 1 << 20).unwrap();
            log.log(&LogRecord::now(Level::Info, "first"));
        }
        {
            let log = DaemonLog::open(&path, 1 << 20).unwrap();
            log.log(&LogRecord::now(Level::Info, "second"));
        }
        let (recs, _) = read_log(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event, "first");
        assert_eq!(recs[1].event, "second");
        let _ = fs::remove_dir_all(&dir);
    }
}
