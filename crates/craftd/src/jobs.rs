//! Job lifecycle: bounded intake queue, runner threads, per-job run
//! directories, crash isolation, registry recording, and graceful
//! drain.
//!
//! A job moves `queued → running → done | failed | crashed`; a drain
//! rewrites still-queued jobs to `pending` (persisted, resubmittable)
//! and lets running jobs finish. Submission past the queue bound is
//! *shed* with an explicit error rather than silently delayed — the
//! daemon is multi-tenant, and a full queue is the tenant's signal to
//! back off.
//!
//! Every job gets its own run directory `<data>/jobs/<id>/` holding the
//! same artifact set `craft analyze --trace=DIR` writes (`job.json` +
//! `status.json` on top of `live.jsonl` / `events.jsonl` /
//! `trace.jsonl` / `manifest.json`), so the whole `craft report` /
//! `watch` / `compare` toolchain works on daemon runs unchanged.
//! Completed jobs are recorded in the daemon's registry and compared
//! against the previous run of the same benchmark (compare-on-
//! completion); regressions are counted on the job record and written
//! to `compare.txt`, not turned into a failure — the gate's verdict
//! belongs to the caller.

use crate::cache::SharedEvalCache;
use crate::obs::{DaemonLog, Level, LogRecord, LOG_FILE};
use mixedprec::{AnalysisSystem, EvalMiddleware, JobSpec};
use mpsearch::events::EventLog;
use mpsearch::{SearchHooks, SearchReport, WorkerPool};
use mptrace::compare::{compare, CompareOptions};
use mptrace::registry::{self, Registry, RunManifest, RunSummary};
use mptrace::stream::{LiveLog, StreamOptions, StreamSink};
use mptrace::{json, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Daemon-wide knobs, fixed at startup.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the daemon's on-disk state: `jobs/<id>/` run directories
    /// plus the `registry/` index.
    pub data_dir: PathBuf,
    /// OS threads in the shared evaluation [`WorkerPool`]. Every job's
    /// search multiplexes over this one pool; a job's `threads` request
    /// is clamped to it.
    pub workers: usize,
    /// Jobs allowed to run concurrently (runner threads).
    pub max_running: usize,
    /// Bound on the intake queue; submissions past it are shed.
    pub queue_cap: usize,
    /// Per-evaluation fuel quota applied to jobs that do not set their
    /// own (multi-tenant default).
    pub default_fuel_limit: Option<u64>,
    /// Per-evaluation wall quota (ms) applied to jobs that do not set
    /// their own.
    pub default_wall_limit_ms: Option<u64>,
    /// Size cap on `daemon.log.jsonl` before it is rotated to
    /// `daemon.log.jsonl.1` (one archive generation is kept).
    pub log_max_bytes: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            data_dir: PathBuf::from("craftd-data"),
            workers: mpsearch::SearchOptions::default_threads(),
            max_running: 2,
            queue_cap: 16,
            default_fuel_limit: None,
            default_wall_limit_ms: None,
            log_max_bytes: 4 << 20,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a runner.
    Queued,
    /// A runner is executing the analysis.
    Running,
    /// Finished; summary fields are populated.
    Done,
    /// The analysis returned an error (bad spec deep in the pipeline,
    /// unwritable artifacts).
    Failed,
    /// The runner panicked; the daemon caught it and kept serving.
    Crashed,
    /// Was still queued when the daemon drained; persisted for
    /// resubmission.
    Pending,
}

impl JobState {
    /// Lower-case wire name (`status.json` / the HTTP API).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Crashed => "crashed",
            JobState::Pending => "pending",
        }
    }

    /// No further transitions happen from this state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's record, as the API reports it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Registry-style id (`{bench}-{unix}-{pid}-{n}`).
    pub id: String,
    /// Cross-process trace id (`x-craft-trace`): the client's id when it
    /// sent one, otherwise minted by the daemon at intake. Stitches the
    /// client call, the daemon log, the job manifest, and the run-dir
    /// spans together.
    pub trace: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Failure/crash message, if any.
    pub error: Option<String>,
    /// Unix seconds at submission.
    pub created_unix: u64,
    /// Wall time of the analysis, microseconds (0 until done).
    pub wall_us: u64,
    /// Final search summary (populated on `done`).
    pub summary: Option<RunSummary>,
    /// Evaluations answered by a cache (per-run + cross-job shared).
    pub cache_hits: usize,
    /// The run's Fig. 10 row (populated on `done`).
    pub fig10: String,
    /// Modelled speedup of the recommendation.
    pub modelled_speedup: f64,
    /// FNV-1a hash of the recommended configuration text.
    pub config_hash: String,
    /// Regressions found by compare-on-completion against the previous
    /// run of the same bench (`None` = no previous run to compare).
    pub regressions: Option<usize>,
}

impl JobRecord {
    /// Serialize for `status.json` and `GET /jobs/<id>`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"id\":");
        json::esc(&mut s, &self.id);
        s.push_str(",\"trace\":");
        json::esc(&mut s, &self.trace);
        s.push_str(",\"state\":");
        json::esc(&mut s, self.state.as_str());
        s.push_str(",\"bench\":");
        json::esc(&mut s, &self.spec.bench);
        s.push_str(",\"class\":");
        json::esc(&mut s, &self.spec.class);
        match &self.error {
            None => s.push_str(",\"error\":null"),
            Some(e) => {
                s.push_str(",\"error\":");
                json::esc(&mut s, e);
            }
        }
        s.push_str(&format!(
            ",\"created_unix\":{},\"wall_us\":{},\"cache_hits\":{},\"modelled_speedup\":{:?}",
            self.created_unix, self.wall_us, self.cache_hits, self.modelled_speedup
        ));
        s.push_str(",\"fig10\":");
        json::esc(&mut s, &self.fig10);
        s.push_str(",\"config_hash\":");
        json::esc(&mut s, &self.config_hash);
        match self.regressions {
            None => s.push_str(",\"regressions\":null"),
            Some(n) => s.push_str(&format!(",\"regressions\":{n}")),
        }
        match &self.summary {
            None => s.push_str(",\"summary\":null"),
            Some(r) => s.push_str(&format!(
                ",\"summary\":{{\"candidates\":{},\"tested\":{},\"static_pct\":{:?},\
                 \"dynamic_pct\":{:?},\"final_pass\":{}}}",
                r.candidates, r.tested, r.static_pct, r.dynamic_pct, r.final_pass
            )),
        }
        s.push_str(",\"spec\":");
        s.push_str(&self.spec.to_json());
        s.push('}');
        s
    }
}

/// Why a submission was rejected (mapped to an HTTP status by the
/// server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec did not validate (HTTP 400).
    Invalid(String),
    /// The bounded queue is full — shed, back off (HTTP 429).
    QueueFull,
    /// The daemon is draining and accepts no new work (HTTP 503).
    Draining,
}

struct MgrState {
    jobs: BTreeMap<String, JobRecord>,
    queue: VecDeque<String>,
    running: usize,
    runners_alive: usize,
    draining: bool,
}

/// The daemon's job engine: intake queue, runner threads, shared
/// worker pool and evaluation cache, registry.
pub struct JobManager {
    cfg: DaemonConfig,
    pool: WorkerPool,
    cache: Arc<SharedEvalCache>,
    tracer: Tracer,
    state: Mutex<MgrState>,
    cond: Condvar,
    registry: Option<Registry>,
    log: Option<DaemonLog>,
    open_connections: AtomicI64,
    in_flight: AtomicI64,
}

impl JobManager {
    /// Create the on-disk layout and start `max_running` runner
    /// threads.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Arc<JobManager>> {
        std::fs::create_dir_all(cfg.data_dir.join("jobs"))?;
        let registry = Registry::open(cfg.data_dir.join("registry")).ok();
        let log = DaemonLog::open(cfg.data_dir.join(LOG_FILE), cfg.log_max_bytes)
            .map_err(|e| {
                eprintln!("craftd: cannot open daemon log: {e}");
                e
            })
            .ok();
        let mgr = Arc::new(JobManager {
            pool: WorkerPool::new(cfg.workers.max(1)),
            cache: Arc::new(SharedEvalCache::new()),
            tracer: Tracer::new(),
            state: Mutex::new(MgrState {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                running: 0,
                runners_alive: cfg.max_running,
                draining: false,
            }),
            cond: Condvar::new(),
            registry,
            log,
            open_connections: AtomicI64::new(0),
            in_flight: AtomicI64::new(0),
            cfg,
        });
        mgr.log_event(
            LogRecord::now(Level::Info, "daemon_start")
                .u("workers", mgr.cfg.workers as u64)
                .u("max_running", mgr.cfg.max_running as u64)
                .u("queue_cap", mgr.cfg.queue_cap as u64),
        );
        for _ in 0..mgr.cfg.max_running {
            let m = Arc::clone(&mgr);
            std::thread::spawn(move || m.runner_loop());
        }
        Ok(mgr)
    }

    /// The daemon-level metrics tracer (jobs submitted/completed/shed,
    /// queue and cache gauges, request telemetry).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The structured daemon log (`daemon.log.jsonl`), if it opened.
    pub fn log(&self) -> Option<&DaemonLog> {
        self.log.as_ref()
    }

    /// Append one record to the daemon log (no-op when the log failed
    /// to open — logging must never take the daemon down).
    pub fn log_event(&self, rec: LogRecord) {
        if let Some(log) = &self.log {
            log.log(&rec);
        }
    }

    /// Count one handled HTTP request: aggregate + per-route/status
    /// counters and aggregate + per-route log2 latency histograms.
    pub fn observe_request(&self, route: &str, status: u16, latency_us: u64) {
        self.tracer.incr("http.requests", 1);
        self.tracer.incr(&format!("http.requests.{route}.{status}"), 1);
        self.tracer.observe("http.latency_us", latency_us);
        self.tracer.observe(&format!("http.latency_us.{route}"), latency_us);
    }

    /// Count a connection accept and raise the open-connection gauge.
    pub fn connection_opened(&self) {
        self.tracer.incr("http.connections", 1);
        let n = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.tracer.gauge("http.open_connections", n as f64);
    }

    /// Lower the open-connection gauge when a connection ends.
    pub fn connection_closed(&self) {
        let n = self.open_connections.fetch_sub(1, Ordering::Relaxed) - 1;
        self.tracer.gauge("http.open_connections", n.max(0) as f64);
    }

    /// Count a second-or-later request on a kept-alive connection.
    pub fn keepalive_reused(&self) {
        self.tracer.incr("http.keepalive_reuse", 1);
    }

    /// Raise the in-flight gauge as a request starts being handled.
    pub fn request_begin(&self) {
        let n = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.tracer.gauge("http.in_flight", n as f64);
    }

    /// Lower the in-flight gauge once the response is written.
    pub fn request_end(&self) {
        let n = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.tracer.gauge("http.in_flight", n.max(0) as f64);
    }

    /// Count (by stable reason token) and warn-log one malformed or
    /// oversized request that the HTTP parser rejected.
    pub fn count_parse_error(&self, err: &str) {
        let reason = crate::http::parse_error_reason(err);
        self.tracer.incr("http.parse_errors", 1);
        self.tracer.incr(&format!("http.parse_errors.{reason}"), 1);
        self.log_event(
            LogRecord::now(Level::Warn, "http_parse_error").s("reason", reason).s("err", err),
        );
    }

    /// The shared cross-job evaluation cache.
    pub fn cache(&self) -> &SharedEvalCache {
        &self.cache
    }

    /// The daemon configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// This job's run directory (`<data>/jobs/<id>`).
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.cfg.data_dir.join("jobs").join(id)
    }

    fn lock(&self) -> MutexGuard<'_, MgrState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Accept a job: validate, allocate an id and run directory, queue
    /// it. Sheds with [`SubmitError::QueueFull`] once the bounded queue
    /// is at capacity.
    ///
    /// `trace` is the client's `x-craft-trace` id; when the client sent
    /// none the daemon mints one (`tr-{unix}-{pid}-{n}`) so every job
    /// is traceable. The intake decision — queued, shed, or rejected —
    /// is logged with that id.
    pub fn submit(&self, spec: JobSpec, trace: Option<String>) -> Result<String, SubmitError> {
        let created = registry::unix_now();
        let trace =
            trace.filter(|t| !t.is_empty()).unwrap_or_else(|| registry::new_run_id("tr", created));
        if let Err(e) = spec.validate() {
            self.log_event(
                LogRecord::now(Level::Warn, "job_rejected").s("trace", &trace).s("err", &e),
            );
            return Err(SubmitError::Invalid(e));
        }
        let id = registry::new_run_id(&spec.bench, created);
        let record = JobRecord {
            id: id.clone(),
            trace: trace.clone(),
            spec,
            state: JobState::Queued,
            error: None,
            created_unix: created,
            wall_us: 0,
            summary: None,
            cache_hits: 0,
            fig10: String::new(),
            modelled_speedup: 0.0,
            config_hash: String::new(),
            regressions: None,
        };
        {
            let mut st = self.lock();
            if st.draining {
                self.log_event(
                    LogRecord::now(Level::Warn, "job_refused_draining").s("trace", &trace),
                );
                return Err(SubmitError::Draining);
            }
            if st.queue.len() >= self.cfg.queue_cap {
                self.tracer.incr("daemon.jobs_shed", 1);
                self.log_event(
                    LogRecord::now(Level::Warn, "job_shed")
                        .s("trace", &trace)
                        .s("bench", &record.spec.bench)
                        .u("queue_depth", st.queue.len() as u64),
                );
                return Err(SubmitError::QueueFull);
            }
            st.queue.push_back(id.clone());
            st.jobs.insert(id.clone(), record.clone());
            self.tracer.incr("daemon.jobs_submitted", 1);
            self.tracer.gauge("daemon.queue_depth", st.queue.len() as f64);
        }
        self.log_event(
            LogRecord::now(Level::Info, "job_queued")
                .s("job", &id)
                .s("trace", &trace)
                .s("bench", &record.spec.bench)
                .s("class", &record.spec.class),
        );
        let dir = self.job_dir(&id);
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(dir.join("job.json"), record.spec.to_json() + "\n");
        self.persist(&record);
        self.cond.notify_all();
        Ok(id)
    }

    /// A snapshot of one job's record.
    pub fn job(&self, id: &str) -> Option<JobRecord> {
        self.lock().jobs.get(id).cloned()
    }

    /// Snapshots of every known job, in id order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.lock().jobs.values().cloned().collect()
    }

    /// Begin a graceful drain: stop accepting submissions, rewrite
    /// queued jobs to `pending` (persisted), and let running jobs
    /// finish. Idempotent.
    pub fn drain(&self) {
        let mut pending = Vec::new();
        {
            let mut st = self.lock();
            if st.draining {
                return;
            }
            st.draining = true;
            while let Some(id) = st.queue.pop_front() {
                if let Some(j) = st.jobs.get_mut(&id) {
                    j.state = JobState::Pending;
                    pending.push(j.clone());
                }
            }
            self.tracer.gauge("daemon.queue_depth", 0.0);
        }
        self.log_event(LogRecord::now(Level::Info, "drain").u("pending", pending.len() as u64));
        for j in &pending {
            self.log_event(
                LogRecord::now(Level::Info, "job_state")
                    .s("job", &j.id)
                    .s("trace", &j.trace)
                    .s("state", j.state.as_str()),
            );
            self.persist(j);
        }
        self.cond.notify_all();
    }

    /// True once [`JobManager::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// True once a drain has been requested *and* completed: nothing
    /// running, all runner threads exited.
    pub fn is_drained(&self) -> bool {
        let st = self.lock();
        st.draining && st.running == 0 && st.runners_alive == 0
    }

    /// Block until the drain is complete: no job running, all runner
    /// threads exited.
    pub fn wait_drained(&self) {
        let mut st = self.lock();
        while st.running > 0 || st.runners_alive > 0 {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Refresh scrape-time gauges (queue, running, cache occupancy) on
    /// the daemon tracer. Called by `GET /metrics`.
    pub fn publish_gauges(&self) {
        let (queued, running) = {
            let st = self.lock();
            (st.queue.len(), st.running)
        };
        self.tracer.gauge("daemon.queue_depth", queued as f64);
        self.tracer.gauge("daemon.jobs_running", running as f64);
        self.tracer.gauge("daemon.cache_entries", self.cache.entries() as f64);
        self.tracer.gauge("daemon.cache_hits", self.cache.hits() as f64);
        self.tracer.gauge("daemon.cache_misses", self.cache.misses() as f64);
    }

    /// Write `status.json` into the job's run directory (best-effort;
    /// the in-memory record is authoritative while the daemon lives).
    fn persist(&self, job: &JobRecord) {
        let dir = self.job_dir(&job.id);
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(dir.join("status.json"), job.to_json() + "\n");
    }

    fn set_state(&self, id: &str, state: JobState, error: Option<String>) {
        let snapshot = {
            let mut st = self.lock();
            if let Some(j) = st.jobs.get_mut(id) {
                j.state = state;
                j.error = error;
                Some(j.clone())
            } else {
                None
            }
        };
        if let Some(j) = snapshot {
            let level = match j.state {
                JobState::Failed | JobState::Crashed => Level::Error,
                _ => Level::Info,
            };
            let mut rec = LogRecord::now(level, "job_state")
                .s("job", &j.id)
                .s("trace", &j.trace)
                .s("state", j.state.as_str());
            if let Some(e) = &j.error {
                rec = rec.s("err", e);
            }
            if j.wall_us > 0 {
                rec = rec.u("wall_us", j.wall_us);
            }
            self.log_event(rec);
            self.persist(&j);
        }
        self.cond.notify_all();
    }

    fn runner_loop(&self) {
        loop {
            let id = {
                let mut st = self.lock();
                loop {
                    if let Some(id) = st.queue.pop_front() {
                        st.running += 1;
                        self.tracer.gauge("daemon.queue_depth", st.queue.len() as f64);
                        self.tracer.gauge("daemon.jobs_running", st.running as f64);
                        break id;
                    }
                    if st.draining {
                        st.runners_alive -= 1;
                        drop(st);
                        self.cond.notify_all();
                        return;
                    }
                    st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.set_state(&id, JobState::Running, None);
            // The panic boundary: a crashing job must not take the
            // daemon down. `AssertUnwindSafe` is fine — the only state
            // crossing the boundary is the job's own run directory and
            // the shared cache, which is only ever appended to under
            // its own lock.
            let result = catch_unwind(AssertUnwindSafe(|| self.run_job(&id)));
            match result {
                Ok(Ok(())) => {
                    self.tracer.incr("daemon.jobs_completed", 1);
                    self.set_state(&id, JobState::Done, None);
                }
                Ok(Err(e)) => {
                    self.tracer.incr("daemon.jobs_failed", 1);
                    self.set_state(&id, JobState::Failed, Some(e));
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job runner panicked".into());
                    self.tracer.incr("daemon.jobs_crashed", 1);
                    self.set_state(&id, JobState::Crashed, Some(msg));
                }
            }
            {
                let mut st = self.lock();
                st.running -= 1;
                self.tracer.gauge("daemon.jobs_running", st.running as f64);
            }
            self.cond.notify_all();
        }
    }

    /// Execute one job end-to-end. Runs on a runner thread inside the
    /// panic boundary; the evaluation work itself is sharded over the
    /// shared [`WorkerPool`].
    fn run_job(&self, id: &str) -> Result<(), String> {
        let job = self.job(id).ok_or_else(|| format!("job {id} vanished"))?;
        let trace_id = job.trace;
        let spec = job.spec;
        let workload = spec.workload()?;
        let tol = workload.tol;
        let mut opts = spec.options()?;
        // Multi-tenant quotas: daemon defaults apply when the job did
        // not bring its own; thread requests clamp to the shared pool.
        if opts.search.exec.fuel_limit.is_none() {
            opts.search.exec.fuel_limit = self.cfg.default_fuel_limit;
        }
        if opts.search.exec.wall_limit.is_none() {
            opts.search.exec.wall_limit =
                self.cfg.default_wall_limit_ms.map(std::time::Duration::from_millis);
        }
        opts.search.threads = opts.search.threads.clamp(1, self.pool.workers());
        let threads = opts.search.threads;
        let bench_label = format!("{}.{}", spec.bench, spec.class);

        let mut sys = AnalysisSystem::with_options(workload, opts);
        let tracer = Tracer::new();
        sys.set_tracer(tracer.clone());
        sys.set_middleware(
            Arc::clone(&self.cache) as Arc<dyn EvalMiddleware>,
            spec.cache_namespace(),
        );

        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let live_path = dir.join("live.jsonl").display().to_string();
        let stream = StreamSink::to_file(&live_path, &tracer, StreamOptions::default())
            .map_err(|e| format!("cannot stream to {live_path}: {e}"))?;
        let events_path = dir.join("events.jsonl").display().to_string();
        let events = EventLog::to_file(&events_path)
            .map_err(|e| format!("cannot create event log {events_path}: {e}"))?;
        let hooks = SearchHooks {
            bench: bench_label,
            events: Some(&events),
            stream: Some(&stream),
            pool: Some(&self.pool),
            ..Default::default()
        };

        if spec.inject_runner_panic {
            panic!("injected runner panic (crashed-job isolation drill)");
        }

        // The trace-propagation span: its name carries the cross-process
        // id, so `x-craft-trace` shows up verbatim in the run-dir
        // `trace.jsonl` spans (dropped before the snapshot is written).
        let trace_span = tracer.span(format!("trace:{trace_id}"));
        let t0 = Instant::now();
        let rec = sys.recommend_with(&hooks);
        let wall_us = t0.elapsed().as_micros() as u64;
        drop(stream); // flush the final live delta before readers diff it
        drop(trace_span);

        // PR-8 precision-quality counters: guard refusals and shadow
        // prunes are already counted by the search; add the per-format
        // replacement breakdown so `/metrics` exports it per job.
        for (tok, n) in rec.report.format_breakdown(sys.tree()) {
            tracer.incr(&format!("search.replaced.{tok}"), n as u64);
        }

        let trace_path = dir.join("trace.jsonl");
        std::fs::write(&trace_path, tracer.snapshot().to_jsonl())
            .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        // Decision provenance: one record per instruction explaining its
        // final format. Served verbatim by `GET /jobs/<id>/decisions`
        // and rendered by `craft explain`; never fails a finished job.
        let decisions_path = dir.join("decisions.jsonl");
        if let Err(e) = mpsearch::decisions::save(&decisions_path, &rec.report.decisions) {
            self.tracer.incr("daemon.decisions_write_errors", 1);
            eprintln!("craftd: warning: cannot write {}: {e}", decisions_path.display());
        }

        let report = &rec.report;
        let config_hash = registry::fnv1a64(&rec.config_text);
        let manifest = RunManifest {
            id: id.to_string(),
            bench: spec.bench.clone(),
            class: spec.class.clone(),
            backend: sys_backend_name(&spec),
            lattice: spec.lattice.clone(),
            trace_id: trace_id.clone(),
            config_hash: config_hash.clone(),
            tol,
            threads,
            git: String::new(),
            created_unix: self.job(id).map(|j| j.created_unix).unwrap_or(0),
            wall_us,
            summary: Some(summary_of(report)),
            bench_min_ns: Default::default(),
        };
        let _ = manifest.save(&dir);

        // Compare-on-completion: the previous recorded run of the same
        // bench, if any, before this one is recorded.
        let regressions = self.compare_with_previous(&spec.bench, &dir, &manifest);
        if let Some(reg) = &self.registry {
            let _ = reg.record(&manifest, &dir);
        }

        let snapshot = {
            let mut st = self.lock();
            let j = st.jobs.get_mut(id).ok_or_else(|| format!("job {id} vanished"))?;
            j.wall_us = wall_us;
            j.summary = Some(summary_of(report));
            j.cache_hits = report.cache_hits;
            j.fig10 = report.figure10_row(&format!("{}.{}", spec.bench, spec.class));
            j.modelled_speedup = rec.modelled_speedup;
            j.config_hash = config_hash;
            j.regressions = regressions;
            j.clone()
        };
        self.persist(&snapshot);
        Ok(())
    }

    /// Diff this run's trace against the previous recorded run of the
    /// same bench. Returns the regression count (`None` when there is
    /// no comparable predecessor); the full report goes to
    /// `compare.txt` in the run directory.
    fn compare_with_previous(
        &self,
        bench: &str,
        dir: &std::path::Path,
        manifest: &RunManifest,
    ) -> Option<usize> {
        let reg = self.registry.as_ref()?;
        let prev = reg.latest(Some(bench)).ok().flatten()?;
        let prev_snap = load_snapshot(&prev.path)?;
        let cur_snap = load_snapshot(dir)?;
        let prev_manifest = RunManifest::load(&prev.path).ok().flatten();
        let rep = compare(
            &prev_snap,
            &cur_snap,
            &prev.path.display().to_string(),
            &dir.display().to_string(),
            prev_manifest.as_ref(),
            Some(manifest),
            &CompareOptions::default(),
        );
        let _ = std::fs::write(dir.join("compare.txt"), &rep.text);
        Some(rep.regressions.len())
    }
}

/// Fold a trace snapshot out of a run directory (`trace.jsonl`, or the
/// live stream for a run that died before writing one).
fn load_snapshot(dir: &std::path::Path) -> Option<mptrace::snapshot::TraceSnapshot> {
    let trace = dir.join("trace.jsonl");
    if let Ok(text) = std::fs::read_to_string(&trace) {
        if let Ok((snap, _)) = mptrace::snapshot::TraceSnapshot::parse_tolerant(&text) {
            return Some(snap);
        }
    }
    LiveLog::from_file(dir.join("live.jsonl")).ok().map(|log| log.final_snapshot())
}

fn sys_backend_name(spec: &JobSpec) -> String {
    if spec.backend.is_empty() {
        fpvm::Backend::default().name().to_string()
    } else {
        spec.backend.clone()
    }
}

/// Fold a [`SearchReport`] into the manifest's [`RunSummary`].
fn summary_of(r: &SearchReport) -> RunSummary {
    RunSummary {
        candidates: r.candidates,
        tested: r.configs_tested,
        static_pct: r.static_pct,
        dynamic_pct: r.dynamic_pct,
        final_pass: r.final_pass,
        timeouts: r.timeouts,
        crashes: r.crashes,
        retries: r.retries,
        quarantined: r.quarantined,
        pruned_by_shadow: r.pruned_by_shadow,
    }
}
