//! `craftd` — run the tuning-search daemon.
//!
//! ```text
//! craftd [--addr=HOST] [--port=N] [--data=DIR] [--workers=N]
//!        [--max-running=N] [--queue-cap=N]
//!        [--fuel-limit=N] [--wall-limit-ms=N] [--log-max-bytes=N]
//! ```
//!
//! Defaults: `127.0.0.1:7050`, data under `$CRAFTD_DATA`, else
//! `$HOME/.craft/craftd`, else `./craftd-data`. On SIGTERM/SIGINT the
//! daemon drains gracefully: in-flight jobs finish, queued jobs are
//! persisted as `pending`, then it exits 0.

use craftd::{DaemonConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn usage(msg: &str) -> ! {
    eprintln!("craftd: {msg}");
    eprintln!(
        "usage: craftd [--addr=HOST] [--port=N] [--data=DIR] [--workers=N] \
         [--max-running=N] [--queue-cap=N] [--fuel-limit=N] [--wall-limit-ms=N] \
         [--log-max-bytes=N]"
    );
    std::process::exit(2)
}

/// The drain flag the signal handler raises. A handler may only do
/// async-signal-safe work, which an atomic store (via a lock-free
/// `OnceLock` read) is.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_signal(_sig: i32) {
    if let Some(flag) = STOP.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

#[cfg(unix)]
fn install_signal_handlers(flag: Arc<AtomicBool>) {
    // Hand-rolled signal(2) binding: the toolchain has no libc crate,
    // and the daemon only needs "flip a flag on SIGTERM/SIGINT".
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = STOP.set(flag);
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_flag: Arc<AtomicBool>) {}

fn default_data_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CRAFTD_DATA") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    match std::env::var_os("HOME") {
        Some(h) => PathBuf::from(h).join(".craft").join("craftd"),
        None => PathBuf::from("craftd-data"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };
    for a in &args {
        let known = [
            "--addr",
            "--port",
            "--data",
            "--workers",
            "--max-running",
            "--queue-cap",
            "--fuel-limit",
            "--wall-limit-ms",
            "--log-max-bytes",
        ];
        if !known.iter().any(|k| a.starts_with(&format!("{k}="))) {
            usage(&format!("unknown argument {a:?}"));
        }
    }
    let parse_num = |name: &str| -> Option<u64> {
        opt(name).map(|v| {
            v.parse().unwrap_or_else(|_| usage(&format!("{name} wants a number, got {v:?}")))
        })
    };

    let host = opt("--addr").unwrap_or_else(|| "127.0.0.1".into());
    let port = parse_num("--port").unwrap_or(7050);
    let defaults = DaemonConfig::default();
    let cfg = DaemonConfig {
        data_dir: opt("--data").map(PathBuf::from).unwrap_or_else(default_data_dir),
        workers: parse_num("--workers").map(|n| n as usize).unwrap_or(defaults.workers),
        max_running: parse_num("--max-running").map(|n| n as usize).unwrap_or(defaults.max_running),
        queue_cap: parse_num("--queue-cap").map(|n| n as usize).unwrap_or(defaults.queue_cap),
        default_fuel_limit: parse_num("--fuel-limit"),
        default_wall_limit_ms: parse_num("--wall-limit-ms"),
        log_max_bytes: parse_num("--log-max-bytes").unwrap_or(defaults.log_max_bytes),
    };

    let server = Server::bind(&format!("{host}:{port}"), cfg.clone())
        .unwrap_or_else(|e| usage(&format!("cannot bind {host}:{port}: {e}")));
    install_signal_handlers(server.stop_handle());
    let addr = server.local_addr().map(|a| a.to_string()).unwrap_or_default();
    eprintln!(
        "craftd: listening on {addr}  (data {}, {} pool workers, {} runners, queue cap {})",
        cfg.data_dir.display(),
        cfg.workers,
        cfg.max_running,
        cfg.queue_cap
    );
    match server.run() {
        Ok(()) => eprintln!("craftd: drained, bye"),
        Err(e) => {
            eprintln!("craftd: server error: {e}");
            std::process::exit(1);
        }
    }
}
