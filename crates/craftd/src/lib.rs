//! # craftd — the sharded multi-tenant tuning-search daemon
//!
//! A long-running service wrapping the mixed-precision analysis
//! system: tenants `POST` tuning jobs over HTTP, the daemon shards
//! candidate-configuration evaluation across one shared work-stealing
//! [`WorkerPool`](mpsearch::WorkerPool), streams each job's live
//! telemetry to followers, and persists completed jobs into the same
//! run-registry format the `craft` CLI writes — so `craft report` /
//! `watch` / `compare` work on daemon runs unchanged.
//!
//! The protocol (all bodies JSON; connections are HTTP/1.1 keep-alive —
//! a client can issue its whole request sequence over one connection,
//! except that a live follow ends its connection when the job does):
//!
//! | Method & path          | Meaning                                     |
//! |------------------------|---------------------------------------------|
//! | `POST /jobs`           | Submit a [`JobSpec`] body → `202 {"id":…}`, `400` invalid, `429` queue full (shed), `503` draining |
//! | `GET /jobs`            | All job records                             |
//! | `GET /jobs/<id>`       | One job's status record                     |
//! | `GET /jobs/<id>/live`  | Chunked follow of the job's `live.jsonl` until it finishes |
//! | `GET /jobs/<id>/metrics` | The job's trace as Prometheus text, labelled `job`/`bench`/`backend`/`lattice`; running jobs fold `live.jsonl` into a partial snapshot, `503 + Retry-After` until the first delta exists |
//! | `GET /jobs/<id>/decisions` | The job's `decisions.jsonl` verbatim — per-instruction precision decision provenance; `503 + Retry-After` while the job is still running, `404` if it finished without recording any |
//! | `GET /metrics`         | Unified exposition: daemon series (jobs, queue, cache, request telemetry) + every job's series, labelled — including the `craft_fp_*` numerical-health family for `num_health` jobs |
//! | `GET /healthz`         | Liveness probe                              |
//! | `POST /admin/drain`    | Begin graceful drain                        |
//!
//! Multi-tenancy is enforced by bounded intake (submissions past
//! `queue_cap` are shed with `429`), a fixed runner count
//! (`max_running`), one shared evaluation pool sized independently of
//! job demand, daemon-default fuel/wall quotas for jobs that bring
//! none, and a cross-job evaluation cache namespaced by each job's
//! verdict-determining options (see [`cache::SharedEvalCache`]).
//!
//! ## Observability
//!
//! Every request is counted (aggregate + per-route/status) and timed
//! into log2 latency histograms on the daemon-lifetime tracer;
//! connection, in-flight, keep-alive-reuse, and parse-error series ride
//! along (see DESIGN.md §16 for the naming scheme). Requests carrying an
//! `x-craft-trace` header have the id stamped through the job record,
//! manifest, run-dir spans, and the structured daemon log
//! (`daemon.log.jsonl`, see [`obs`]), so one id stitches a client call
//! to everything it caused.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod jobs;
pub mod obs;

pub use cache::SharedEvalCache;
pub use jobs::{DaemonConfig, JobManager, JobRecord, JobState, SubmitError};

use mixedprec::JobSpec;
use mptrace::sinks;
use mptrace::stream::LiveTail;
use obs::{Level, LogRecord};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the accept loop polls the stop flag, and how often a live
/// stream polls its file for new bytes.
const POLL: Duration = Duration::from_millis(50);

/// The daemon: a bound listener plus the job engine behind it.
pub struct Server {
    mgr: Arc<JobManager>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the job engine with `cfg`.
    pub fn bind(addr: &str, cfg: DaemonConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            mgr: JobManager::start(cfg)?,
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The job engine.
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.mgr
    }

    /// A handle that makes [`Server::run`] begin a graceful drain when
    /// set (wired to SIGTERM by the binary, or set directly by tests).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serve until the stop handle is raised (or `POST /admin/drain`
    /// arrives) *and* the drain completes. Read endpoints keep working
    /// while in-flight jobs finish; queued jobs are persisted as
    /// `pending`; then this returns.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((conn, _peer)) => {
                    let mgr = Arc::clone(&self.mgr);
                    std::thread::spawn(move || handle_connection(conn, &mgr));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.stop.load(Ordering::SeqCst) {
                        self.mgr.drain();
                    }
                    if self.mgr.is_drained() {
                        break;
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Serve one connection: parse requests and respond until the client
/// goes away, asks `Connection: close`, a live follow consumes the
/// connection, or a request is malformed (framing can no longer be
/// trusted after one).
fn handle_connection(mut conn: TcpStream, mgr: &Arc<JobManager>) {
    mgr.connection_opened();
    serve_connection(&mut conn, mgr);
    mgr.connection_closed();
}

fn serve_connection(conn: &mut TcpStream, mgr: &Arc<JobManager>) {
    let mut served = 0u64;
    loop {
        let request = match http::read_request(conn) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                // A garbage request must not take the connection loop
                // (let alone the daemon) down: count it, warn-log it,
                // answer 400, and drop only this connection — framing
                // can no longer be trusted after a parse failure.
                mgr.count_parse_error(&e);
                let body = error_json(&e);
                let _ = http::respond_json(conn, 400, &body);
                return;
            }
        };
        if served > 0 {
            mgr.keepalive_reused();
        }
        served += 1;
        mgr.request_begin();
        let t0 = Instant::now();
        let outcome = route(conn, mgr, &request);
        let latency_us = t0.elapsed().as_micros() as u64;
        mgr.request_end();
        match outcome {
            Ok((status, keep)) => {
                mgr.observe_request(route_key(&request), status, latency_us);
                let mut rec = LogRecord::now(Level::Info, "request")
                    .s("method", &request.method)
                    .s("path", &request.path)
                    .u("status", status as u64)
                    .u("us", latency_us);
                if let Some(trace) = &request.trace {
                    rec = rec.s("trace", trace);
                }
                mgr.log_event(rec);
                if !keep || request.close {
                    return;
                }
            }
            // `Err` = the client went away mid-response; nothing to
            // clean up either way.
            Err(_) => return,
        }
    }
}

/// Stable per-route key used in metric names (`http.requests.<key>.<status>`,
/// `http.latency_us.<key>`).
fn route_key(req: &http::Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => "post_jobs",
        ("GET", ["jobs"]) => "get_jobs",
        ("GET", ["jobs", _]) => "get_job",
        ("GET", ["jobs", _, "live"]) => "get_job_live",
        ("GET", ["jobs", _, "metrics"]) => "get_job_metrics",
        ("GET", ["jobs", _, "decisions"]) => "get_job_decisions",
        ("GET", ["metrics"]) => "get_metrics",
        ("GET", ["healthz"]) => "healthz",
        ("POST", ["admin", "drain"]) => "drain",
        _ => "other",
    }
}

fn error_json(msg: &str) -> String {
    let mut s = String::from("{\"error\":");
    mptrace::json::esc(&mut s, msg);
    s.push('}');
    s
}

/// Route one request. Returns `(status, connection still usable)` —
/// usable is `false` after a live follow, whose chunked response
/// declares `Connection: close`.
fn route(
    conn: &mut TcpStream,
    mgr: &Arc<JobManager>,
    req: &http::Request,
) -> std::io::Result<(u16, bool)> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    if let ("GET", ["jobs", id, "live"]) = (req.method.as_str(), segments.as_slice()) {
        return stream_live(conn, mgr, id).map(|status| (status, false));
    }
    let done = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => http::respond(conn, 200, "text/plain", b"ok\n").map(|()| 200),
        ("GET", ["metrics"]) => {
            let text = unified_metrics(mgr);
            http::respond(conn, 200, "text/plain; version=0.0.4", text.as_bytes()).map(|()| 200)
        }
        ("POST", ["jobs"]) => {
            let body = String::from_utf8_lossy(&req.body);
            let spec = match JobSpec::parse(&body) {
                Ok(s) => s,
                Err(e) => {
                    return http::respond_json(conn, 400, &error_json(&e)).map(|()| (400, true))
                }
            };
            match mgr.submit(spec, req.trace.clone()) {
                Ok(id) => {
                    let mut s = String::from("{\"id\":");
                    mptrace::json::esc(&mut s, &id);
                    s.push('}');
                    http::respond_json(conn, 202, &s).map(|()| 202)
                }
                Err(SubmitError::Invalid(e)) => {
                    http::respond_json(conn, 400, &error_json(&e)).map(|()| 400)
                }
                Err(SubmitError::QueueFull) => http::respond_json(
                    conn,
                    429,
                    &error_json("job queue is full — daemon is shedding load, retry later"),
                )
                .map(|()| 429),
                Err(SubmitError::Draining) => {
                    http::respond_json(conn, 503, &error_json("daemon is draining")).map(|()| 503)
                }
            }
        }
        ("GET", ["jobs"]) => {
            let jobs = mgr.jobs();
            let mut s = String::from("[");
            for (i, j) in jobs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&j.to_json());
            }
            s.push(']');
            http::respond_json(conn, 200, &s).map(|()| 200)
        }
        ("GET", ["jobs", id]) => match mgr.job(id) {
            Some(j) => http::respond_json(conn, 200, &j.to_json()).map(|()| 200),
            None => http::respond_json(conn, 404, &error_json("no such job")).map(|()| 404),
        },
        ("GET", ["jobs", id, "metrics"]) => match mgr.job(id) {
            Some(j) => {
                let dir = mgr.job_dir(id);
                match job_snapshot(&dir) {
                    Some(snap) => {
                        let labels = job_labels(&j);
                        let pairs: Vec<(&str, &str)> =
                            labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
                        let text = sinks::prometheus_labeled(&snap, &pairs);
                        http::respond(conn, 200, "text/plain; version=0.0.4", text.as_bytes())
                            .map(|()| 200)
                    }
                    // Running (or still-queued) job with no deltas yet:
                    // tell the scraper to come back, not that the job is
                    // unknown.
                    None if !j.state.is_terminal() => http::respond_with(
                        conn,
                        503,
                        "application/json",
                        &[("Retry-After", "1")],
                        error_json("job has produced no telemetry yet — retry").as_bytes(),
                    )
                    .map(|()| 503),
                    None => http::respond_json(conn, 404, &error_json("job produced no trace"))
                        .map(|()| 404),
                }
            }
            None => http::respond_json(conn, 404, &error_json("no such job")).map(|()| 404),
        },
        ("GET", ["jobs", id, "decisions"]) => match mgr.job(id) {
            Some(j) => {
                let path = mgr.job_dir(id).join("decisions.jsonl");
                match std::fs::read(&path) {
                    // Verbatim JSONL: one decision record per line, the
                    // same bytes `craft explain` reads from a run dir.
                    Ok(body) => http::respond(conn, 200, "application/jsonl", &body).map(|()| 200),
                    // The file is written at job completion: a job that
                    // is still queued/running has no decisions yet.
                    Err(_) if !j.state.is_terminal() => http::respond_with(
                        conn,
                        503,
                        "application/json",
                        &[("Retry-After", "1")],
                        error_json("job has not decided yet — retry").as_bytes(),
                    )
                    .map(|()| 503),
                    Err(_) => {
                        http::respond_json(conn, 404, &error_json("job recorded no decisions"))
                            .map(|()| 404)
                    }
                }
            }
            None => http::respond_json(conn, 404, &error_json("no such job")).map(|()| 404),
        },
        ("POST", ["admin", "drain"]) => {
            mgr.drain();
            http::respond_json(conn, 200, "{\"draining\":true}").map(|()| 200)
        }
        (m, _) if m != "GET" && m != "POST" => {
            http::respond_json(conn, 405, &error_json("method not allowed")).map(|()| 405)
        }
        _ => http::respond_json(conn, 404, &error_json("no such endpoint")).map(|()| 404),
    };
    done.map(|status| (status, true))
}

/// The job's constant label set for Prometheus expositions.
fn job_labels(j: &JobRecord) -> Vec<(&'static str, String)> {
    let backend = if j.spec.backend.is_empty() {
        fpvm::Backend::default().name().to_string()
    } else {
        j.spec.backend.clone()
    };
    let lattice =
        if j.spec.lattice.is_empty() { "classic".to_string() } else { j.spec.lattice.clone() };
    vec![
        ("job", j.id.clone()),
        ("bench", j.spec.bench.clone()),
        ("backend", backend),
        ("lattice", lattice),
    ]
}

/// The unified `GET /metrics` body: the daemon-lifetime series first
/// (with `# TYPE` headers), then every known job's series labelled
/// `job`/`bench`/`backend`/`lattice`, comment lines stripped so each
/// metric family is declared at most once.
fn unified_metrics(mgr: &Arc<JobManager>) -> String {
    mgr.publish_gauges();
    let mut text = sinks::prometheus(&mgr.tracer().snapshot());
    for j in mgr.jobs() {
        let Some(snap) = job_snapshot(&mgr.job_dir(&j.id)) else { continue };
        let labels = job_labels(&j);
        let pairs: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let labeled = sinks::prometheus_labeled(&snap, &pairs);
        for line in labeled.lines().filter(|l| !l.starts_with('#')) {
            text.push_str(line);
            text.push('\n');
        }
    }
    text
}

/// Fold whatever trace artifacts the job has so far into a snapshot:
/// the final `trace.jsonl` once it exists, otherwise the `live.jsonl`
/// delta chain folded into a partial snapshot. `None` until the stream
/// has at least one delta — an empty exposition would be
/// indistinguishable from a dead job.
fn job_snapshot(dir: &std::path::Path) -> Option<mptrace::snapshot::TraceSnapshot> {
    let trace = dir.join("trace.jsonl");
    if let Ok(text) = std::fs::read_to_string(&trace) {
        if let Ok((snap, _)) = mptrace::snapshot::TraceSnapshot::parse_tolerant(&text) {
            return Some(snap);
        }
    }
    mptrace::stream::LiveLog::from_file(dir.join("live.jsonl"))
        .ok()
        .filter(|log| !log.deltas.is_empty())
        .map(|log| log.final_snapshot())
}

/// `GET /jobs/<id>/live`: follow the job's `live.jsonl` with a
/// byte-offset [`LiveTail`] and forward complete lines as chunks until
/// the job reaches a terminal state (plus one final poll, so the last
/// delta is never lost). Torn trailing lines stay in the tail's carry
/// buffer, so followers only ever see whole records.
fn stream_live(conn: &mut TcpStream, mgr: &Arc<JobManager>, id: &str) -> std::io::Result<u16> {
    if mgr.job(id).is_none() {
        return http::respond_json(conn, 404, &error_json("no such job")).map(|()| 404);
    }
    let live_path = mgr.job_dir(id).join("live.jsonl");
    let mut tail = LiveTail::new(&live_path);
    let mut ch = http::Chunked::start(conn, 200, "application/jsonl")?;
    loop {
        let terminal = mgr.job(id).map(|j| j.state.is_terminal()).unwrap_or(true);
        if tail.poll().is_err() {
            // A corrupt stream is terminal for the follower; what was
            // already forwarded remains valid.
            break;
        }
        let raw = tail.take_raw();
        ch.chunk(raw.as_bytes())?;
        if terminal {
            break;
        }
        std::thread::sleep(POLL);
    }
    ch.finish().map(|()| 200)
}
