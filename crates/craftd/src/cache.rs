//! The cross-job configuration-evaluation cache.
//!
//! One [`SharedEvalCache`] lives for the daemon's whole life and is
//! installed on every job's `AnalysisSystem` as an
//! [`EvalMiddleware`]: two jobs with the same verdict-determining
//! options (same [`JobSpec::cache_namespace`](mixedprec::JobSpec))
//! share results keyed by the configuration's effective
//! replaced-instruction set, so re-submitting a job — or submitting a
//! variant that retreads part of the search space — answers most
//! evaluations without running anything.
//!
//! The middleware sits *under* the search's own per-run
//! `CachedEvaluator` and mirrors its semantics exactly: results are
//! memoized by effective replaced set, fuel-overridden (starved) runs
//! bypass the cache entirely, and `stats()` chains the inner
//! evaluator's counters so shared hits surface in
//! `SearchReport::cache_hits` like any other cache hit.

use mixedprec::{EvalMiddleware, WrapCtx};
use mpconfig::StructureTree;
use mpsearch::{EvalOutcome, EvalStats, Evaluator, RunControl};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluation results shared across every job the daemon runs, keyed
/// by namespace → effective replacement set. The key packs each
/// replaced instruction's target format alongside its id
/// ([`mpconfig::Config::replacement_key`]), so the same instruction set
/// demoted to different lattice levels occupies distinct entries —
/// which also lets jobs with different lattices share one namespace.
#[derive(Default)]
pub struct SharedEvalCache {
    map: Mutex<HashMap<String, HashMap<Vec<u64>, EvalOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedEvalCache {
    /// A fresh, empty cache.
    pub fn new() -> SharedEvalCache {
        SharedEvalCache::default()
    }

    /// Evaluations answered from the cache, across all jobs.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Evaluations that ran and populated the cache.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached results currently held, across all namespaces.
    pub fn entries(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).values().map(HashMap::len).sum()
    }
}

impl EvalMiddleware for SharedEvalCache {
    fn wrap<'a>(&'a self, inner: &'a dyn Evaluator, ctx: &WrapCtx<'a>) -> Box<dyn Evaluator + 'a> {
        Box::new(SharedCacheEval {
            cache: self,
            inner,
            tree: ctx.tree,
            namespace: ctx.namespace.clone(),
            job_hits: AtomicUsize::new(0),
        })
    }
}

/// The per-job view of the shared cache: one namespace, one inner
/// evaluator, plus a job-local hit counter for `stats()` chaining.
struct SharedCacheEval<'a> {
    cache: &'a SharedEvalCache,
    inner: &'a dyn Evaluator,
    tree: &'a StructureTree,
    namespace: String,
    job_hits: AtomicUsize,
}

impl Evaluator for SharedCacheEval<'_> {
    fn evaluate(&self, cfg: &mpconfig::Config) -> bool {
        self.evaluate_run(cfg, &RunControl::default()).pass
    }

    fn evaluate_run(&self, cfg: &mpconfig::Config, ctl: &RunControl) -> EvalOutcome {
        // Same contract as the search's per-run cache: a starved run is
        // not representative, so it neither reads nor poisons entries.
        if ctl.fuel_override.is_some() {
            return self.inner.evaluate_run(cfg, ctl);
        }
        let key: Vec<u64> = cfg.replacement_key(self.tree);
        {
            let map = self.cache.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&v) = map.get(&self.namespace).and_then(|m| m.get(&key)) {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                self.job_hits.fetch_add(1, Ordering::Relaxed);
                return EvalOutcome { cache_hit: true, ..v };
            }
        }
        // Concurrent misses on the same key may both evaluate; results
        // are deterministic, so the duplicate insert is harmless.
        let v = self.inner.evaluate_run(cfg, ctl);
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(self.namespace.clone())
            .or_default()
            .insert(key, v);
        v
    }

    fn stats(&self) -> EvalStats {
        let mut s = self.inner.stats();
        s.cache_hits += self.job_hits.load(Ordering::Relaxed);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpconfig::Config;
    use std::sync::atomic::AtomicUsize;

    struct CountingEval {
        calls: AtomicUsize,
    }

    impl Evaluator for CountingEval {
        fn evaluate(&self, _cfg: &Config) -> bool {
            self.calls.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    fn tree() -> StructureTree {
        let w = workloads::vecops::vecops(workloads::Class::S);
        StructureTree::build(w.program())
    }

    #[test]
    fn second_job_in_same_namespace_hits() {
        let tree = tree();
        let cache = SharedEvalCache::new();
        let inner = CountingEval { calls: AtomicUsize::new(0) };
        let cfg = Config::new();

        let job1 = cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "ep.s|default".into() });
        assert!(job1.evaluate(&cfg));
        assert!(job1.evaluate(&cfg)); // same replaced set — already a hit
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
        assert_eq!(job1.stats().cache_hits, 1);

        // A second wrapper (a new job) over the same namespace reuses
        // the entry and reports its own hit count.
        let job2 = cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "ep.s|default".into() });
        assert!(job2.evaluate(&cfg));
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
        assert_eq!(job2.stats().cache_hits, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn different_lattice_levels_do_not_collide() {
        let tree = tree();
        let ids = tree.all_insns();
        let cache = SharedEvalCache::new();
        let inner = CountingEval { calls: AtomicUsize::new(0) };
        let job = cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "n".into() });
        let mut single = Config::new();
        single.set_insn(ids[0], mpconfig::Flag::Single);
        let mut half = Config::new();
        half.set_insn(ids[0], mpconfig::Flag::Half);
        job.evaluate(&single);
        job.evaluate(&half); // same insn set, narrower format — a miss
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.entries(), 2);
        job.evaluate(&half);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn namespaces_do_not_share_entries() {
        let tree = tree();
        let cache = SharedEvalCache::new();
        let inner = CountingEval { calls: AtomicUsize::new(0) };
        let cfg = Config::new();
        cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "a".into() }).evaluate(&cfg);
        cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "b".into() }).evaluate(&cfg);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn fuel_overridden_runs_bypass_the_cache() {
        let tree = tree();
        let cache = SharedEvalCache::new();
        let inner = CountingEval { calls: AtomicUsize::new(0) };
        let cfg = Config::new();
        let job = cache.wrap(&inner, &WrapCtx { tree: &tree, namespace: "n".into() });
        let starved = RunControl { fuel_override: Some(1) };
        job.evaluate_run(&cfg, &starved);
        job.evaluate_run(&cfg, &starved);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.entries(), 0);
        assert_eq!(job.stats().cache_hits, 0);
    }
}
