//! §3.1 — correctness verification: the instrumented all-single binary
//! must produce output *bit-for-bit identical* to the manually converted
//! (whole-program f32 recompiled) version of the same program.
//!
//! EP is excluded: its FP-trick RNG carries an `ignore` flag, so the
//! instrumented build intentionally keeps it in double precision while a
//! blind manual conversion destroys it — exactly the mismatch the paper's
//! conversion scripts had to special-case by hand.

use craft_bench::header;
use fpvm::Vm;
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use workloads::{amg::amg, nas, Class, Workload};

fn bitexact(w: &Workload) -> (bool, usize) {
    let prog = w.program();
    let tree = StructureTree::build(prog);
    let mut cfg = Config::new();
    for m in &tree.modules {
        cfg.set_module(m.id, Flag::Single);
    }
    let (instr, _) = rewrite(prog, &tree, &cfg, &RewriteOptions::default());
    let mut vm = Vm::new(&instr, w.vm_opts());
    assert!(vm.run().ok(), "{}: instrumented-single run failed", w.name);

    let manual = w.compile_f32();
    let mut vm32 = Vm::new(&manual, w.vm_opts());
    assert!(vm32.run().ok(), "{}: manual f32 run failed", w.name);

    let mut compared = 0usize;
    for (sym, len) in &w.out_syms {
        let a_addr = prog.symbol(sym).unwrap();
        let b_addr = manual.symbol(sym).unwrap();
        let flagged = vm.mem.read_u64_slice(a_addr, *len).unwrap();
        let singles = vm32.mem.read_f32_slice(b_addr, *len).unwrap();
        for (fa, fb) in flagged.iter().zip(&singles) {
            // the instrumented slot holds [flag | f32 payload]
            if (*fa as u32) != fb.to_bits() {
                return (false, compared);
            }
            compared += 1;
        }
    }
    (true, compared)
}

fn main() {
    println!("Section 3.1: bit-exactness of instrumented-single vs manual conversion\n");
    let h = format!("{:<8} {:>8} {:>16}", "bench", "class", "outputs compared");
    header(&h);
    let mut all_ok = true;
    for class in [Class::S, Class::W] {
        let workloads: Vec<Workload> = vec![
            nas::bt(class),
            nas::cg(class),
            nas::ft(class),
            nas::lu(class),
            nas::mg(class),
            nas::sp(class),
            amg(class),
        ];
        for w in workloads {
            let (ok, n) = bitexact(&w);
            all_ok &= ok;
            println!(
                "{:<8} {:>8} {:>16}   {}",
                w.name,
                class.letter(),
                n,
                if ok { "IDENTICAL" } else { "MISMATCH" }
            );
        }
    }
    println!();
    if all_ok {
        println!("all outputs bit-for-bit identical — the instrumented versions perform");
        println!("the exact same operations as the manually converted programs (§3.1)");
    } else {
        println!("MISMATCH DETECTED — instrumentation diverges from manual conversion");
        std::process::exit(1);
    }
}
