//! Fig. 10 (shadow variant) — baseline vs shadow-guided NAS search.
//!
//! For each NAS benchmark and class the search runs twice: once with the
//! plain breadth-first executor and once guided by a shadow-value
//! sensitivity profile (`--shadow-priority` + `--shadow-prune`
//! semantics). The table prints both runs side by side; the acceptance
//! criterion — checked by this binary, which exits non-zero on any
//! violation — is that the shadow-guided run reaches the *identical*
//! final configuration (same replaced-instruction set, hence identical
//! static/dynamic percentages) while testing **fewer or equally many**
//! configurations.
//!
//! On the hinted workloads the hand-written `ignore` flags already keep
//! unstable RNG instructions out of the candidate set, so pruning rarely
//! fires and the two runs coincide. The extra `ep*` row repeats EP with
//! an *empty* base configuration (no hints): there the shadow oracle
//! rediscovers on its own what the hints encode, pruning the unstable
//! units without evaluating them.
//!
//! Options:
//!
//! * `--class=S|W|A` — run a single class (default: W and A);
//! * `--profile-dir=DIR` — also write each workload's shadow
//!   sensitivity profile as JSONL under `DIR`.

use craft_bench::header;
use mixedprec::{AnalysisOptions, AnalysisSystem, ShadowOptions};
use mpconfig::{Config, StructureTree};
use mpsearch::{
    search_observed, SearchHooks, SearchOptions, SearchReport, ShadowOracle, VmEvaluator,
};
use workloads::{nas_all, Class, Workload};

struct Row {
    label: String,
    candidates: usize,
    tested_base: usize,
    tested_shadow: usize,
    pruned: usize,
    static_pct: f64,
    dynamic_pct: f64,
    identical: bool,
}

impl Row {
    fn print(&self) {
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>7} {:>8.1}% {:>8.1}% {:>10}",
            self.label,
            self.candidates,
            self.tested_base,
            self.tested_shadow,
            self.pruned,
            self.static_pct,
            self.dynamic_pct,
            if self.identical { "identical" } else { "DIVERGED" }
        );
    }

    fn ok(&self) -> bool {
        self.identical && self.tested_shadow <= self.tested_base
    }
}

fn row_header() -> String {
    format!(
        "{:<8} {:>10} {:>12} {:>14} {:>7} {:>9} {:>9} {:>10}",
        "bench",
        "candidates",
        "tested(base)",
        "tested(shadow)",
        "pruned",
        "static",
        "dynamic",
        "result"
    )
}

/// Compare a baseline and a shadow-guided report over (possibly distinct
/// but structurally identical) trees.
fn compare(
    label: &str,
    base: &SearchReport,
    tb: &StructureTree,
    shadow: &SearchReport,
    ts: &StructureTree,
) -> Row {
    Row {
        label: label.to_string(),
        candidates: base.candidates,
        tested_base: base.configs_tested,
        tested_shadow: shadow.configs_tested,
        pruned: shadow.pruned_by_shadow,
        static_pct: shadow.static_pct,
        dynamic_pct: shadow.dynamic_pct,
        identical: base.final_config.replaced_insns(tb) == shadow.final_config.replaced_insns(ts)
            && base.static_pct == shadow.static_pct
            && base.dynamic_pct == shadow.dynamic_pct,
    }
}

/// Baseline + shadow-guided searches through the full analysis system
/// (hinted base configuration, as `craft analyze` would run them).
fn hinted_row(wb: Workload, ws: Workload, threads: usize, profile_dir: Option<&str>) -> Row {
    let label = format!("{}.{}", wb.name, wb.class.letter().to_uppercase());
    let search = SearchOptions { threads, ..Default::default() };
    let sys_b = AnalysisSystem::with_options(
        wb,
        AnalysisOptions { search: search.clone(), ..Default::default() },
    );
    let rb = sys_b.run_search_with(&SearchHooks { bench: label.clone(), ..Default::default() });
    let sys_s = AnalysisSystem::with_options(
        ws,
        AnalysisOptions {
            search,
            shadow: ShadowOptions { prioritize: true, prune: true, ..Default::default() },
            ..Default::default()
        },
    );
    let rs = sys_s.run_search_with(&SearchHooks { bench: label.clone(), ..Default::default() });
    if let Some(dir) = profile_dir {
        let path = format!("{dir}/{label}.shadow.jsonl");
        if let Err(e) = sys_s.shadow_profile().to_file(&path) {
            eprintln!("cannot write {path}: {e}");
        }
    }
    compare(&label, &rb, sys_b.tree(), &rs, sys_s.tree())
}

/// EP with an *empty* base configuration: no `ignore` hints, so the
/// unstable RNG units are real candidates and the shadow oracle must
/// discover them itself.
fn unhinted_ep_row(class: Class, threads: usize) -> Row {
    let w = workloads::nas::ep(class);
    let prog = w.program();
    let tree = StructureTree::build(prog);
    let base = Config::new();
    let eval =
        VmEvaluator::with_options(prog, &tree, w.vm_opts(), Default::default(), w.verifier());
    let profile = fpvm::Vm::run_program(prog, fpvm::VmOptions { profile: true, ..w.vm_opts() })
        .profile
        .expect("profiled run");
    let opts = SearchOptions { threads, ..Default::default() };
    let rb = search_observed(&tree, &base, Some(&profile), &eval, &opts, &SearchHooks::default());
    let sprof = mpshadow::shadow_run(prog, w.vm_opts()).profile;
    let hooks = SearchHooks {
        shadow: Some(ShadowOracle {
            profile: &sprof,
            prioritize: true,
            prune_threshold: Some(w.tol * ShadowOptions::default().prune_margin),
        }),
        ..Default::default()
    };
    let rs = search_observed(&tree, &base, Some(&profile), &eval, &opts, &hooks);
    let label = format!("ep*.{}", class.letter().to_uppercase());
    compare(&label, &rb, &tree, &rs, &tree)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };
    let classes: Vec<Class> = match opt("--class").as_deref() {
        None => vec![Class::W, Class::A],
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "s" => vec![Class::S],
            "w" => vec![Class::W],
            "a" => vec![Class::A],
            other => {
                eprintln!("unknown class {other:?} (expected S, W, or A)");
                std::process::exit(2);
            }
        },
    };
    let profile_dir = opt("--profile-dir");
    if let Some(dir) = &profile_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }
    let threads = SearchOptions::default_threads();
    println!("Figure 10 (shadow variant): baseline vs shadow-guided search\n");
    header(&row_header());
    let mut rows = Vec::new();
    for &class in &classes {
        let iter = nas_all(class).into_iter().zip(nas_all(class));
        for (wb, ws) in iter {
            let row = hinted_row(wb, ws, threads, profile_dir.as_deref());
            row.print();
            rows.push(row);
        }
        // The unhinted demonstration: shadow pruning stands in for the
        // hand-written hints.
        let row = unhinted_ep_row(class, threads);
        row.print();
        rows.push(row);
    }
    println!("\n(ep* = EP searched from an empty base configuration, i.e. without");
    println!(" the hand-written `ignore` hints; the shadow oracle prunes the");
    println!(" unstable RNG units the hints would have excluded)");
    let bad: Vec<&Row> = rows.iter().filter(|r| !r.ok()).collect();
    if !bad.is_empty() {
        for r in &bad {
            eprintln!(
                "ACCEPTANCE VIOLATION: {} — identical={}, tested(shadow)={} vs tested(base)={}",
                r.label, r.identical, r.tested_shadow, r.tested_base
            );
        }
        std::process::exit(1);
    }
    println!("\nall rows identical; shadow-guided runs tested <= baseline everywhere");
}
