//! CI bench-regression gate: compare freshly measured `BENCH_*.json`
//! files (written by the criterion stand-in) against committed
//! baselines and fail on excessive throughput regression.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [<baseline> <fresh> ...] [--threshold=PCT]
//!            [--registry=DIR] [--record] [--compiled-ratio=R] [--lattice-ratio=R]
//!            [--warn-only]
//! ```
//!
//! For every benchmark present in a baseline file, the gate prints a
//! comparison row and exits nonzero if the fresh measurement is more
//! than `PCT` percent slower (default 20). The comparison uses each
//! benchmark's *minimum* observed sample — the most noise-robust
//! estimator on shared CI runners — and the mean is shown alongside for
//! context. Benchmarks missing from the fresh file fail the gate;
//! benchmarks new in the fresh file are reported but do not fail it.
//!
//! Improvements beyond the threshold are also flagged (`STALE`,
//! warn-only): a baseline that much slower than reality no longer
//! guards against regressions of the same size, so the gate asks for
//! the committed `BENCH_*.json` to be refreshed without failing the
//! build.
//!
//! The compiled-backend speedup check is a real gate: on benches where
//! both `<b>.orig.fast` and `<b>.orig.compiled` were measured, the
//! compiled tier must be at least `--compiled-ratio` times faster
//! (default 1.2) or the gate exits 1 — a compiled backend slower than
//! that has stopped paying for its fusion pass. Likewise the lattice
//! overhead check: on benches where both `<b>.s` and `<b>.s.lattice`
//! were measured, the full-lattice search may be at most
//! `--lattice-ratio` times slower than the classic two-format search
//! (default 6.0) — beyond that the wider format menu has blown up the
//! candidate walk and needs pruning. `--warn-only` downgrades *ratio*
//! failures to warnings (bring-up on new hardware); it does not touch
//! the min_ns regression gate.
//!
//! With `--registry=DIR` (or `$CRAFT_REGISTRY`), run-registry manifests
//! carrying `bench_min_ns` entries override the committed JSON baseline
//! per bench (newest manifest wins; rows say `[registry]`), so the gate
//! tracks the fleet's most recent recorded reality instead of a stale
//! checked-in file. `--record` writes the fresh measurements back as a
//! new registry manifest for future runs to gate against.

use mpsearch::events::json::{self, Value};
use mptrace::registry::{self, Registry, RunManifest};
use std::collections::BTreeMap;

struct Bench {
    name: String,
    mean_ns: f64,
    min_ns: f64,
}

fn load(path: &str) -> Result<(String, Vec<Bench>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let group = v.get("group").and_then(Value::as_str).unwrap_or("?").to_string();
    let benches = v
        .get("benches")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: missing \"benches\" array"))?
        .iter()
        .map(|b| {
            Ok(Bench {
                name: b
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{path}: bench without name"))?
                    .to_string(),
                mean_ns: b.get("mean_ns").and_then(Value::as_f64).unwrap_or(f64::NAN),
                min_ns: b.get("min_ns").and_then(Value::as_f64).unwrap_or(f64::NAN),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((group, benches))
}

/// Fold every registry manifest's `bench_min_ns` map into one lookup,
/// newest manifest winning per bench name. Unreadable manifests are
/// skipped: a gate baseline must never be taken down by a torn write.
fn registry_baselines(reg: &Registry) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    match reg.entries() {
        Ok((entries, warn)) => {
            if let Some(w) = warn {
                eprintln!("bench_gate: warning: {}: {w}", reg.dir().display());
            }
            // The index is append-only, so iterating forward lets newer
            // manifests overwrite older values.
            for e in &entries {
                if let Ok(Some(m)) = RunManifest::load(&e.path) {
                    for (k, v) in &m.bench_min_ns {
                        map.insert(k.clone(), *v);
                    }
                }
            }
        }
        Err(e) => eprintln!("bench_gate: warning: {e}"),
    }
    map
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threshold: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--threshold="))
        .and_then(|t| t.parse().ok())
        .unwrap_or(20.0);
    let registry_dir = args.iter().find_map(|a| a.strip_prefix("--registry=").map(str::to_string));
    let record = args.iter().any(|a| a == "--record");
    let compiled_ratio: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--compiled-ratio="))
        .and_then(|t| t.parse().ok())
        .unwrap_or(1.2);
    let lattice_ratio: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--lattice-ratio="))
        .and_then(|t| t.parse().ok())
        .unwrap_or(6.0);
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() || !files.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_gate <baseline.json> <fresh.json> [...] [--threshold=PCT] \
             [--registry=DIR] [--record] [--compiled-ratio=R] [--lattice-ratio=R] \
             [--warn-only]"
        );
        std::process::exit(2);
    }

    // Only an explicit flag or $CRAFT_REGISTRY opts the gate into the
    // registry; unlike `craft`, it never falls back to `~/.craft/runs`
    // (CI runners have a $HOME but no recorded history worth trusting).
    let reg = registry_dir.or_else(|| std::env::var("CRAFT_REGISTRY").ok()).and_then(|d| {
        match Registry::open(&d) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("bench_gate: warning: cannot open registry {d}: {e}");
                None
            }
        }
    });
    let reg_base = reg.as_ref().map(registry_baselines).unwrap_or_default();

    let mut failed = false;
    let mut stale = false;
    let mut fresh_mins: BTreeMap<String, f64> = BTreeMap::new();
    for pair in files.chunks(2) {
        let (base_path, fresh_path) = (pair[0], pair[1]);
        let (group, base) = load(base_path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let (_, fresh) = load(fresh_path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        println!("group `{group}` — {base_path} vs {fresh_path} (gate: min_ns +{threshold:.0}%)");
        println!(
            "  {:<28} {:>12} {:>12} {:>8}   {:>12} {:>12}",
            "bench", "base min", "fresh min", "delta", "base mean", "fresh mean"
        );
        for b in &base {
            let Some(f) = fresh.iter().find(|f| f.name == b.name) else {
                println!("  {:<28} MISSING from fresh results", b.name);
                failed = true;
                continue;
            };
            let (base_min, src) = match reg_base.get(&b.name) {
                Some(v) => (*v, " [registry]"),
                None => (b.min_ns, ""),
            };
            let delta = (f.min_ns - base_min) / base_min * 100.0;
            let verdict = if delta > threshold {
                failed = true;
                "FAIL"
            } else if delta < -threshold {
                stale = true;
                "STALE"
            } else {
                ""
            };
            println!(
                "  {:<28} {:>10.0}ns {:>10.0}ns {:>+7.1}%   {:>10.0}ns {:>10.0}ns  {verdict}{src}",
                b.name, base_min, f.min_ns, delta, b.mean_ns, f.mean_ns
            );
        }
        for f in &fresh {
            fresh_mins.insert(f.name.clone(), f.min_ns);
        }
        for f in &fresh {
            if !base.iter().any(|b| b.name == f.name) {
                println!("  {:<28} new (no baseline, not gated)", f.name);
            }
        }
        println!();
    }
    // Compiled-backend speedup gate: the fused tier must beat the
    // pre-decoded image path by at least `--compiled-ratio` on the
    // unobserved NAS rows, or the threaded-code tier has stopped paying
    // for itself. The long-term 3x target stays aspirational — ratios
    // between the gate and the target are printed so drift is visible
    // without failing the build.
    let mut ratio_failed = false;
    for b in ["ep", "cg"] {
        let fast = fresh_mins.get(&format!("{b}.orig.fast"));
        let comp = fresh_mins.get(&format!("{b}.orig.compiled"));
        if let (Some(&fast), Some(&comp)) = (fast, comp) {
            let ratio = fast / comp;
            if ratio >= 3.0 {
                println!(
                    "bench_gate: {b}.orig.compiled speedup over fast: {ratio:.2}x (3x target met)"
                );
            } else if ratio >= compiled_ratio {
                println!(
                    "bench_gate: {b}.orig.compiled speedup over fast: {ratio:.2}x \
                     (gate >={compiled_ratio:.2}x ok; 3x target not yet reached)"
                );
            } else if warn_only {
                eprintln!(
                    "bench_gate: warning: {b}.orig.compiled is only {ratio:.2}x faster than \
                     {b}.orig.fast (gate >={compiled_ratio:.2}x; --warn-only)"
                );
            } else {
                eprintln!(
                    "bench_gate: {b}.orig.compiled is only {ratio:.2}x faster than \
                     {b}.orig.fast (gate >={compiled_ratio:.2}x)"
                );
                ratio_failed = true;
            }
        }
    }
    // Lattice overhead gate: the full precision-lattice search walks a
    // wider format menu than the classic two-format search, so it is
    // allowed to be slower — but only by a bounded factor. Past
    // `--lattice-ratio` the extra formats have stopped buying insight
    // per cycle and the candidate walk needs pruning.
    for b in ["ep", "cg"] {
        let classic = fresh_mins.get(&format!("{b}.s"));
        let lattice = fresh_mins.get(&format!("{b}.s.lattice"));
        if let (Some(&classic), Some(&lattice)) = (classic, lattice) {
            let ratio = lattice / classic;
            if ratio <= lattice_ratio {
                println!(
                    "bench_gate: {b}.s.lattice overhead over {b}.s: {ratio:.2}x \
                     (gate <={lattice_ratio:.2}x ok)"
                );
            } else if warn_only {
                eprintln!(
                    "bench_gate: warning: {b}.s.lattice is {ratio:.2}x slower than \
                     {b}.s (gate <={lattice_ratio:.2}x; --warn-only)"
                );
            } else {
                eprintln!(
                    "bench_gate: {b}.s.lattice is {ratio:.2}x slower than \
                     {b}.s (gate <={lattice_ratio:.2}x)"
                );
                ratio_failed = true;
            }
        }
    }
    if stale {
        eprintln!(
            "bench_gate: some benchmarks ran more than {threshold:.0}% FASTER than their \
             baseline (marked STALE above); refresh the committed BENCH_*.json so the gate \
             keeps guarding against regressions of that size (warn-only, not a failure)"
        );
    }
    if record {
        match &reg {
            Some(reg) => {
                let created = registry::unix_now();
                let manifest = RunManifest {
                    id: registry::new_run_id("bench", created),
                    bench: "bench".into(),
                    created_unix: created,
                    bench_min_ns: fresh_mins,
                    ..Default::default()
                };
                let dir = reg.dir().join(&manifest.id);
                let res = std::fs::create_dir_all(&dir)
                    .and_then(|()| manifest.save(&dir))
                    .and_then(|()| reg.record(&manifest, &dir));
                match res {
                    Ok(()) => println!(
                        "bench_gate: recorded {} fresh min_ns value(s) as {} in {}",
                        manifest.bench_min_ns.len(),
                        manifest.id,
                        reg.dir().display()
                    ),
                    Err(e) => eprintln!("bench_gate: warning: cannot record baselines: {e}"),
                }
            }
            None => eprintln!("bench_gate: warning: --record needs --registry=DIR (ignored)"),
        }
    }
    if failed {
        eprintln!("bench_gate: throughput regression beyond {threshold:.0}% detected");
    }
    if ratio_failed {
        eprintln!(
            "bench_gate: a backend ratio gate failed (compiled >={compiled_ratio:.2}x over \
             fast, lattice <={lattice_ratio:.2}x over classic; --warn-only to bypass \
             during bring-up)"
        );
    }
    if failed || ratio_failed {
        std::process::exit(1);
    }
    println!("bench_gate: all benchmarks within {threshold:.0}% of baseline");
}
