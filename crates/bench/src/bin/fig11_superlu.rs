//! Fig. 11 — SuperLU linear-solver threshold sweep on the memplus-like
//! data set: for each error threshold, the static and dynamic replacement
//! percentages found by the search and the backward error of the final
//! composed configuration.

use craft_bench::header;
use fpvm::{Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, StructureTree};
use mpsearch::{search, SearchOptions, VmEvaluator};
use workloads::slu::slu;
use workloads::Class;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let s = slu(Class::W);
    let prog = s.wl.program();
    let tree = StructureTree::build(prog);
    let profile =
        Vm::run_program(prog, VmOptions { profile: true, ..Default::default() }).profile.unwrap();

    // reference errors of the pure builds (the paper reports 2.16e-12
    // double / 5.86e-04 single for memplus)
    let mut vm = Vm::new(prog, VmOptions::default());
    assert!(vm.run().ok());
    let err_double = s.error_of(&vm);
    let p32 = s.wl.compile_f32();
    let mut vm32 = Vm::new(&p32, VmOptions::default());
    assert!(vm32.run().ok());
    let x32: Vec<f64> = vm32
        .mem
        .read_f32_slice(p32.symbol("xw").unwrap(), s.n)
        .unwrap()
        .into_iter()
        .map(|v| v as f64)
        .collect();
    let err_single = workloads::slu::forward_error(&x32, &s.xstar);

    println!("Figure 11: SuperLU linear solver memplus-like results (n = {})", s.n);
    println!(
        "double-precision error: {err_double:.2e}   single-precision error: {err_single:.2e}\n"
    );
    let h = format!("{:<10} {:>9} {:>9} {:>12}", "threshold", "static", "dynamic", "final error");
    header(&h);

    for threshold in [1.0e-3, 1.0e-4, 7.5e-5, 5.0e-5, 2.5e-5, 1.0e-5, 1.0e-6] {
        let eval = VmEvaluator::with_options(
            prog,
            &tree,
            VmOptions::default(),
            RewriteOptions::default(),
            s.threshold_verifier(threshold),
        );
        let report = search(
            &tree,
            &Config::new(),
            Some(&profile),
            &eval,
            &SearchOptions { threads, ..Default::default() },
        );
        // backward error of the final (union) configuration
        let (instr, _) = rewrite(prog, &tree, &report.final_config, &RewriteOptions::default());
        let mut vm = Vm::new(&instr, VmOptions::default());
        let final_err = if vm.run().ok() { s.error_of(&vm) } else { f64::INFINITY };
        println!(
            "{:<10.1e} {:>8.1}% {:>8.1}% {:>12.2e}",
            threshold, report.static_pct, report.dynamic_pct, final_err
        );
    }
    println!("\n(static/dynamic = replaced instructions / executions; final error =");
    println!(" forward error of the union configuration, as the solver reports)");
}
