//! Ablation of the two search optimizations (§2.2): binary splitting of
//! failed aggregates, and profile-count prioritization. Reports the
//! number of configurations each variant tests on the NAS class-W
//! analogues — the paper's "pruning effectiveness" claim, quantified.

use craft_bench::header;
use fpvm::{Vm, VmOptions};
use instrument::RewriteOptions;
use mpconfig::{Config, Flag, StructureTree};
use mpsearch::events::EventLog;
use mpsearch::{search_observed, SearchHooks, SearchOptions, VmEvaluator};
use workloads::{nas_all, Class};

fn main() {
    let threads = SearchOptions::default_threads();
    let events = std::env::args().skip(1).find_map(|a| {
        a.strip_prefix("--events=").map(|path| {
            EventLog::to_file(path).unwrap_or_else(|e| {
                eprintln!("cannot create event log {path}: {e}");
                std::process::exit(2);
            })
        })
    });
    println!("Search-optimization ablation (configurations tested, class W)\n");
    let h = format!(
        "{:<8} {:>10} {:>10} {:>12} {:>10} {:>9}",
        "bench", "both", "no-split", "no-priority", "neither", "static%"
    );
    header(&h);
    for w in nas_all(Class::W) {
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let mut base = Config::new();
        for name in w.ignore_funcs() {
            for m in &tree.modules {
                for fun in &m.funcs {
                    if fun.name == name {
                        base.set_func(fun.id, Flag::Ignore);
                    }
                }
            }
        }
        let profile =
            Vm::run_program(prog, VmOptions { profile: true, ..w.vm_opts() }).profile.unwrap();
        let run = |binary_split: bool, prioritize: bool| {
            let eval = VmEvaluator::with_options(
                prog,
                &tree,
                w.vm_opts(),
                RewriteOptions::default(),
                w.verifier(),
            );
            let hooks = SearchHooks {
                bench: format!("{}.abl[split={binary_split},prio={prioritize}]", w.name),
                events: events.as_ref(),
                ..Default::default()
            };
            search_observed(
                &tree,
                &base,
                Some(&profile),
                &eval,
                &SearchOptions { binary_split, prioritize, threads, ..Default::default() },
                &hooks,
            )
        };
        let both = run(true, true);
        let nosplit = run(false, true);
        let noprio = run(true, false);
        let neither = run(false, false);
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>10} {:>8.1}%",
            w.name,
            both.configs_tested,
            nosplit.configs_tested,
            noprio.configs_tested,
            neither.configs_tested,
            both.static_pct
        );
    }
    println!("\n(binary splitting matters when failures are sparse; prioritization");
    println!(" mainly affects time-to-first-result, not the final test count)");
}
