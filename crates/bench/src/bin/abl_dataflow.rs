//! Ablation of the lean (dataflow-optimized) snippets — the paper's §2.5
//! "static data flow analysis could improve overheads" direction. For
//! each benchmark, compares snippet instruction counts and instrumented
//! run lengths of full vs lean all-double instrumentation, verifying that
//! results stay bit-identical.

use craft_bench::header;
use fpvm::Vm;
use instrument::{rewrite, RewriteMode, RewriteOptions};
use mpconfig::{Config, StructureTree};
use workloads::{nas_all, Class};

fn main() {
    println!("Lean-snippet (dataflow) ablation, all-double instrumentation, class W\n");
    let h = format!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>8}",
        "bench", "snippet insns", "lean insns", "steps", "lean steps", "saved"
    );
    header(&h);
    for w in nas_all(Class::W) {
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let cfg = Config::new();
        let (full_p, full_s) = rewrite(
            prog,
            &tree,
            &cfg,
            &RewriteOptions { mode: RewriteMode::AllDouble, lean: false },
        );
        let (lean_p, lean_s) = rewrite(
            prog,
            &tree,
            &cfg,
            &RewriteOptions { mode: RewriteMode::AllDouble, lean: true },
        );
        let full_run = Vm::run_program(&full_p, w.vm_opts());
        let lean_run = Vm::run_program(&lean_p, w.vm_opts());
        assert!(full_run.ok() && lean_run.ok());

        // lean must not change semantics: outputs bit-identical
        let mut vf = Vm::new(&full_p, w.vm_opts());
        vf.run();
        let mut vl = Vm::new(&lean_p, w.vm_opts());
        vl.run();
        for (sym, len) in &w.out_syms {
            let a = vf.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            let b = vl.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            assert_eq!(a, b, "{}: lean mode changed results", w.name);
        }

        let saved = 100.0 * (full_run.stats.steps - lean_run.stats.steps) as f64
            / full_run.stats.steps as f64;
        println!(
            "{:<8} {:>14} {:>14} {:>12} {:>12} {:>7.1}%",
            w.name,
            full_s.snippet_insns,
            lean_s.snippet_insns,
            full_run.stats.steps,
            lean_run.stats.steps,
            saved
        );
    }
    println!("\n(lean snippets skip flag checks on operands proven unflagged by the");
    println!(" intra-block dataflow; outputs verified bit-identical in both modes)");
}
