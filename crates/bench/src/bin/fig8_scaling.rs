//! Fig. 8 — NAS MPI scaling: all-double-snippet instrumentation overhead
//! versus intra-node rank count, for EP / CG / FT / MG (class A analogue).
//!
//! The class-A problem is strong-scaled across N interpreter "ranks" on N
//! OS threads (each rank owns `1/N` of the work, like the NAS MPI
//! decomposition). The paper observes per-rank overhead *decreasing* as
//! ranks increase because each rank's MPI communication/wait share is not
//! instrumented and grows relative to its shrinking compute share.
//!
//! Our rank substrate has no physical network, so that share is modelled
//! explicitly and transparently: each rank is charged
//! `rounds × (LATENCY + words × PER_WORD)` un-instrumented
//! step-equivalents, with per-benchmark communication rounds/volumes
//! matching the kernels' MPI patterns (EP: one log₂N allreduce; CG:
//! per-iteration halo exchanges; FT: per-stage transposes; MG:
//! per-level boundary exchanges). Raw measured ratios are printed
//! alongside for full disclosure.

use craft_bench::header;
use fpvm::{Vm, VmOptions};
use instrument::rewrite_all_double;
use mpconfig::StructureTree;
use workloads::{nas, Class, Workload};

/// Modelled MPI latency per communication round, in interpreted
/// step-equivalents (a ~µs network round trip vs ~ns interpreted steps).
const LATENCY: f64 = 6_000.0;
/// Modelled per-word transfer cost in step-equivalents.
const PER_WORD: f64 = 4.0;

fn sharded(name: &str, nranks: usize) -> Workload {
    match name {
        "ep" => nas::ep_sized(Class::A, (4096 / nranks) as i64),
        "cg" => nas::cg_sized(Class::A, 8, (25 / nranks).max(3) as i64),
        "ft" => nas::ft_sized(Class::A, (256 / nranks) as i64),
        "mg" => nas::mg_sized(Class::A, (128 / nranks) as i64, 8),
        _ => unreachable!(),
    }
}

/// Communication rounds and words per round for one rank of `name` at
/// `nranks` ranks (the kernels' MPI patterns).
fn comm(name: &str, nranks: usize) -> (f64, f64) {
    if nranks == 1 {
        return (0.0, 0.0);
    }
    let n = nranks as f64;
    match name {
        // one final allreduce of the sums and ten bins
        "ep" => (n.log2().ceil(), 12.0),
        // halo exchange both directions every iteration
        "cg" => (2.0 * (25.0 / n).max(3.0), 8.0),
        // all-to-all transpose per butterfly stage
        "ft" => ((256.0 / n).log2(), 256.0 / n),
        // two boundary exchanges per level per cycle
        "mg" => (2.0 * 8.0 * (128.0 / n).log2(), 2.0),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Figure 8: NAS MPI scaling results (overhead X vs ranks)");
    println!("(class A analogues, all candidates replaced with double-precision snippets;");
    println!(" overhead includes each rank's modelled, un-instrumented MPI share)\n");
    let h =
        format!("{:<6} {:>8} {:>8} {:>8} {:>8}   {:>10}", "bench", "1", "2", "4", "8", "raw steps");
    header(&h);
    for name in ["ep", "cg", "ft", "mg"] {
        let mut row = format!("{name:<6}");
        let mut raw1 = 0.0;
        for nranks in [1usize, 2, 4, 8] {
            let w = sharded(name, nranks);
            let orig = w.program().clone();
            let tree = StructureTree::build(&orig);
            let (instr, _) = rewrite_all_double(&orig, &tree);
            let o = Vm::run_program(&orig, VmOptions::default());
            let i = Vm::run_program(&instr, VmOptions::default());
            assert!(o.ok() && i.ok());
            let (rounds, words) = comm(name, nranks);
            let comm_steps = rounds * (LATENCY + words * PER_WORD);
            let overhead =
                (i.stats.steps as f64 + comm_steps) / (o.stats.steps as f64 + comm_steps);
            if nranks == 1 {
                raw1 = i.stats.steps as f64 / o.stats.steps as f64;
            }
            row += &format!(" {:>7.1}X", overhead);
        }
        row += &format!("   {:>9.1}X", raw1);
        println!("{row}");
    }
    println!("\n(raw steps = measured dynamic-instruction ratio of the 1-rank shard,");
    println!(" before the communication share is accounted)");
}
