//! §3.3 — SuperLU single- vs double-precision comparison: backward errors
//! of the two recompiled builds and the modelled speedup of the single
//! build (paper: 1.16X, errors 2.16e-12 vs 5.86e-04), plus the search
//! result at a threshold just above the single-precision error (paper:
//! 99.1% static / 99.9% dynamic — the tool re-finds the expert manual
//! conversion).

use craft_bench::{header, x};
use fpvm::{Vm, VmOptions};
use instrument::RewriteOptions;
use mixedprec::conversion_speedup;
use mpconfig::{Config, StructureTree};
use mpsearch::{search, SearchOptions, VmEvaluator};
use workloads::slu::forward_error;
use workloads::slu::slu;
use workloads::Class;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let s = slu(Class::W);
    let prog = s.wl.program();

    let mut vm = Vm::new(prog, VmOptions::default());
    assert!(vm.run().ok());
    let err_double = s.error_of(&vm);

    let p32 = s.wl.compile_f32();
    let mut vm32 = Vm::new(&p32, VmOptions::default());
    assert!(vm32.run().ok());
    let x32: Vec<f64> = vm32
        .mem
        .read_f32_slice(p32.symbol("xw").unwrap(), s.n)
        .unwrap()
        .into_iter()
        .map(|v| v as f64)
        .collect();
    let err_single = forward_error(&x32, &s.xstar);

    let speed = conversion_speedup(&s.wl);

    println!("SuperLU linear solver (Section 3.3), memplus-like n = {}\n", s.n);
    let h = format!("{:<44} {:>12}", "measurement", "value");
    header(&h);
    println!("{:<44} {:>12.2e}", "double-precision forward error", err_double);
    println!("{:<44} {:>12.2e}", "single-precision forward error", err_single);
    println!("{:<44} {:>12}", "single-build speedup (modelled cycles)", x(speed.modelled));

    // search with the threshold just above the single-precision error:
    // the tool should find essentially the whole solver replaceable.
    let threshold = err_single * 1.7;
    let tree = StructureTree::build(prog);
    let profile =
        Vm::run_program(prog, VmOptions { profile: true, ..Default::default() }).profile.unwrap();
    let eval = VmEvaluator::with_options(
        prog,
        &tree,
        VmOptions::default(),
        RewriteOptions::default(),
        s.threshold_verifier(threshold),
    );
    let report = search(
        &tree,
        &Config::new(),
        Some(&profile),
        &eval,
        &SearchOptions { threads, ..Default::default() },
    );
    println!("{:<44} {:>12.1e}", "search threshold (just above single err)", threshold);
    println!("{:<44} {:>11.1}%", "search: instructions replaced (static)", report.static_pct);
    println!("{:<44} {:>11.1}%", "search: executions replaced (dynamic)", report.dynamic_pct);
    println!("\n(paper: 1.16X speedup; 99.1% static / 99.9% dynamic at the loose threshold)");
}
