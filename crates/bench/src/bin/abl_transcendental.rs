//! Ablation of transcendental-function handling (§2.5): the same
//! math-heavy kernel built with precision-typed intrinsics ("special
//! handling") versus a realistic software `libm` whose internals do
//! IEEE-754 bit manipulation. The paper predicts special handling
//! "improves performance and increases the fraction of the instructions
//! in the original program that can be replaced with single precision".

use craft_bench::header;
use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::SearchOptions;
use workloads::mathmix::{mathmix, LibmKind};
use workloads::Class;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    println!("Transcendental-handling ablation (mathmix kernel, class W)\n");
    let h = format!(
        "{:<12} {:>11} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "variant", "candidates", "tested", "static", "dynamic", "overhead", "final"
    );
    header(&h);
    for (label, kind) in [("intrinsic", LibmKind::Intrinsic), ("software", LibmKind::Software)] {
        let sys = AnalysisSystem::with_options(
            mathmix(Class::W, kind),
            AnalysisOptions {
                search: SearchOptions { threads, ..Default::default() },
                ..Default::default()
            },
        );
        let o = sys.overhead_all_double();
        let r = sys.run_search();
        println!(
            "{:<12} {:>11} {:>8} {:>8.1}% {:>8.1}% {:>8.1}X {:>7}",
            label,
            r.candidates,
            r.configs_tested,
            r.static_pct,
            r.dynamic_pct,
            o.steps_x,
            if r.final_pass { "pass" } else { "fail" }
        );
    }
    println!("\n(the software-libm variant exposes the library's bit-twiddling internals");
    println!(" to the search: far more candidates, and the replaceable fraction drops —");
    println!(" the motivation for the paper's special handling of these functions)");
}
