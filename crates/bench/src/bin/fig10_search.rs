//! Fig. 10 — NAS automatic search results: for each benchmark and class
//! (W and A), the number of replacement candidates, configurations
//! tested, static and dynamic replacement percentages, and the final
//! composed configuration's verification result.
//!
//! Robustness flags (all optional):
//!
//! * `--backend=interp|fast|compiled` — execution backend used for every
//!   candidate evaluation. The search outcome (candidates, tested,
//!   replacement percentages, pass/fail) must be identical across
//!   backends — CI runs the class-S table once per backend and diffs the
//!   rows — only wall-clock time may differ;
//! * `--class=s|w|a|c` — run a single problem class instead of the
//!   default W and A pair (class S is the CI cross-backend check);
//! * `--lattice=s,h|s,b|…` — descend the precision lattice instead of
//!   the classic double/single search: each level is tried in order and
//!   instructions settle at the narrowest format that still verifies.
//!   Rows gain a trailing per-format breakdown column;
//! * `--events=FILE` — append a JSONL event log of every search (one
//!   `search_started` record per benchmark separates the runs);
//! * `--inject-panic=IDX[,IDX…]` / `--inject-timeout=IDX[,IDX…]` —
//!   deterministically inject a worker panic / a simulated timeout at
//!   those evaluation indices of *each* search. The executor classifies
//!   the faulted attempts (`crashed` / `timeout`), retries, and the
//!   figure rows must come out identical to a fault-free run.

use craft_bench::header;
use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::events::EventLog;
use mpsearch::{FaultPlan, SearchHooks, SearchOptions, SearchReport};
use workloads::{nas_all, Class};

fn parse_indices(spec: &str) -> Vec<u64> {
    spec.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };
    let threads = SearchOptions::default_threads();
    let second_phase = args.iter().any(|a| a == "--second-phase");
    let backend = match opt("--backend") {
        Some(s) => fpvm::Backend::parse(&s).unwrap_or_else(|| {
            eprintln!("unknown backend `{s}` (interp|fast|compiled)");
            std::process::exit(2);
        }),
        None => fpvm::Backend::default(),
    };
    let lattice = opt("--lattice").map(|s| {
        mpconfig::parse_lattice(&s).unwrap_or_else(|e| {
            eprintln!("bad --lattice: {e}");
            std::process::exit(2);
        })
    });
    let classes: Vec<Class> = match opt("--class").as_deref() {
        None => vec![Class::W, Class::A],
        Some("s") => vec![Class::S],
        Some("w") => vec![Class::W],
        Some("a") => vec![Class::A],
        Some("c") => vec![Class::C],
        Some(other) => {
            eprintln!("unknown class `{other}` (s|w|a|c)");
            std::process::exit(2);
        }
    };
    let events = opt("--events").map(|path| {
        EventLog::to_file(&path).unwrap_or_else(|e| {
            eprintln!("cannot create event log {path}: {e}");
            std::process::exit(2);
        })
    });
    let faults = FaultPlan {
        panic_at: opt("--inject-panic").map(|s| parse_indices(&s)).unwrap_or_default(),
        timeout_at: opt("--inject-timeout").map(|s| parse_indices(&s)).unwrap_or_default(),
        ..Default::default()
    };
    println!(
        "Figure 10: NAS benchmark search results [backend: {}]{}{}{}\n",
        backend,
        if second_phase { " (with the second composition phase)" } else { "" },
        if faults.is_empty() { "" } else { " (fault injection on)" },
        match &lattice {
            Some(l) => format!(" [lattice: {}]", mpconfig::lattice_tokens(l)),
            None => String::new(),
        }
    );
    header(&SearchReport::figure10_header());
    let mut perf_notes = Vec::new();
    let mut fault_notes = Vec::new();
    for class in classes {
        for w in nas_all(class) {
            let label = format!("{}.{}", w.name, class.letter().to_uppercase());
            let sys = AnalysisSystem::with_options(
                w,
                AnalysisOptions {
                    search: SearchOptions {
                        threads,
                        second_phase,
                        lattice: lattice
                            .clone()
                            .unwrap_or_else(|| SearchOptions::default().lattice),
                        ..Default::default()
                    },
                    backend,
                    ..Default::default()
                },
            );
            let hooks = SearchHooks {
                bench: label.clone(),
                faults: faults.clone(),
                events: events.as_ref(),
                ..Default::default()
            };
            let report = sys.run_search_with(&hooks);
            if lattice.is_some() {
                let formats: Vec<String> = report
                    .format_breakdown(sys.tree())
                    .into_iter()
                    .map(|(tok, n)| format!("{tok}:{n}"))
                    .collect();
                println!("{}   [{}]", report.figure10_row(&label), formats.join(" "));
            } else {
                println!("{}", report.figure10_row(&label));
            }
            perf_notes.push(report.perf_note(&label));
            let fnote = report.fault_note(&label);
            if !fnote.is_empty() {
                fault_notes.push(fnote);
            }
        }
    }
    println!("\nEvaluation-pipeline counters (where the search time went):");
    for note in &perf_notes {
        println!("{note}");
    }
    if !fault_notes.is_empty() {
        println!("\nExecutor robustness counters (faults absorbed without changing rows):");
        for note in &fault_notes {
            println!("{note}");
        }
    }
    println!("\n(candidates exclude `ignore`-flagged RNG instructions; dynamic % is");
    println!(" measured against an execution profile of the original binary;");
    println!(" pass --second-phase to compose a passing subset when the union fails)");
}
