//! Fig. 10 — NAS automatic search results: for each benchmark and class
//! (W and A), the number of replacement candidates, configurations
//! tested, static and dynamic replacement percentages, and the final
//! composed configuration's verification result.

use craft_bench::header;
use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::{SearchOptions, SearchReport};
use workloads::{nas_all, Class};

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let second_phase = std::env::args().any(|a| a == "--second-phase");
    println!(
        "Figure 10: NAS benchmark search results{}\n",
        if second_phase { " (with the second composition phase)" } else { "" }
    );
    header(&SearchReport::figure10_header());
    let mut perf_notes = Vec::new();
    for class in [Class::W, Class::A] {
        for w in nas_all(class) {
            let label = format!("{}.{}", w.name, class.letter().to_uppercase());
            let sys = AnalysisSystem::with_options(
                w,
                AnalysisOptions {
                    search: SearchOptions { threads, second_phase, ..Default::default() },
                    ..Default::default()
                },
            );
            let report = sys.run_search();
            println!("{}", report.figure10_row(&label));
            perf_notes.push(report.perf_note(&label));
        }
    }
    println!("\nEvaluation-pipeline counters (where the search time went):");
    for note in &perf_notes {
        println!("{note}");
    }
    println!("\n(candidates exclude `ignore`-flagged RNG instructions; dynamic % is");
    println!(" measured against an execution profile of the original binary;");
    println!(" pass --second-phase to compose a passing subset when the union fails)");
}
