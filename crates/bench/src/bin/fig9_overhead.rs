//! Fig. 9 — per-benchmark all-double instrumentation overhead for classes
//! A and C (the `ep.A 3.4X … mg.C 14.7X` table).
//!
//! Overhead is reported two ways: real wall-clock ratio of the
//! interpreted runs, and the dynamic-instruction ratio (which is
//! deterministic and the better cross-machine number).

use craft_bench::{header, x};
use mixedprec::AnalysisSystem;
use workloads::{nas, Class};

fn main() {
    println!("Figure 9: NAS benchmark overhead results");
    println!("(all candidates replaced with double-precision snippets)\n");
    let h = format!("{:<10} {:>10} {:>10} {:>12}", "benchmark", "wall", "steps", "instrumented");
    header(&h);
    for class in [Class::A, Class::C] {
        for (name, make) in [
            ("ep", nas::ep as fn(Class) -> workloads::Workload),
            ("cg", nas::cg),
            ("ft", nas::ft),
            ("mg", nas::mg),
        ] {
            let sys = AnalysisSystem::new(make(class));
            // median of 3 wall measurements
            let mut reports: Vec<_> = (0..3).map(|_| sys.overhead_all_double()).collect();
            reports.sort_by(|a, b| a.wall_x.total_cmp(&b.wall_x));
            let r = reports[1];
            println!(
                "{:<10} {:>10} {:>10} {:>12}",
                format!("{name}.{}", class.letter().to_uppercase()),
                x(r.wall_x),
                x(r.steps_x),
                r.instrumented
            );
        }
    }
    println!("\n(wall = instrumented/original wall time; steps = dynamic instruction ratio)");
}
