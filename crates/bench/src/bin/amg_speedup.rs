//! §3.2 — the AMG microkernel end-to-end experiment:
//!
//! 1. the automatic system verifies the whole kernel can run in single
//!    precision;
//! 2. the analysis overhead of the all-single instrumented run is low
//!    (the paper reports 1.2X);
//! 3. a manual conversion (whole-program f32 recompile) yields a ~2X
//!    speedup (175.48 s → 95.25 s in the paper; modelled cycles here).

use craft_bench::{header, x};
use fpvm::{Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mixedprec::{conversion_speedup, AnalysisOptions, AnalysisSystem};
use mpsearch::SearchOptions;
use workloads::amg::amg_iters;
use workloads::Class;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    // search on a moderate iteration count, long run for the speedup
    let w_search = amg_iters(Class::A, 100);
    let sys = AnalysisSystem::with_options(
        w_search,
        AnalysisOptions {
            search: SearchOptions { threads, ..Default::default() },
            ..Default::default()
        },
    );
    let rec = sys.recommend();

    println!("AMG microkernel (Section 3.2)\n");
    let h = format!("{:<44} {:>12}", "measurement", "value");
    header(&h);
    println!("{:<44} {:>12}", "candidates", rec.report.candidates);
    println!("{:<44} {:>11.1}%", "instructions replaced (static)", rec.report.static_pct);
    println!("{:<44} {:>11.1}%", "executions replaced (dynamic)", rec.report.dynamic_pct);
    println!(
        "{:<44} {:>12}",
        "final configuration verification",
        if rec.report.final_pass { "pass" } else { "fail" }
    );

    // analysis overhead of the all-single instrumented kernel
    let tree = sys.tree();
    let prog = sys.workload().program();
    let (instr, _) = rewrite(prog, tree, &rec.report.final_config, &RewriteOptions::default());
    let t0 = std::time::Instant::now();
    assert!(Vm::run_program(prog, VmOptions::default()).ok());
    let base = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    assert!(Vm::run_program(&instr, VmOptions::default()).ok());
    let ana = t1.elapsed().as_secs_f64();
    println!("{:<44} {:>12}", "analysis overhead (all-single run)", x(ana / base.max(1e-9)));

    // manual conversion speedup on the long (paper: 5000-iteration) run
    let w_long = amg_iters(Class::A, 1000);
    let s = conversion_speedup(&w_long);
    println!("{:<44} {:>12}", "manual-conversion speedup (modelled cycles)", x(s.modelled));
    println!("{:<44} {:>12.3}", "  (interpreter wall ratio, for reference)", s.wall);
    println!("\n(paper: entire kernel replaceable, 1.2X analysis overhead, ~2X speedup)");
}
