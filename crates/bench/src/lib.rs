//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation:
//!
//! | target            | paper artifact                                  |
//! |-------------------|-------------------------------------------------|
//! | `fig8_scaling`    | Fig. 8 — NAS MPI scaling overhead vs ranks      |
//! | `fig9_overhead`   | Fig. 9 — per-benchmark overhead table (A & C)   |
//! | `fig10_search`    | Fig. 10 — NAS automatic search results (W & A)  |
//! | `fig11_superlu`   | Fig. 11 — SuperLU error-threshold sweep         |
//! | `sec31_bitexact`  | §3.1 — instrumented vs manual-conversion bits   |
//! | `amg_speedup`     | §3.2 — AMG microkernel end-to-end experiment    |
//! | `slu_speedup`     | §3.3 — SuperLU single vs double speedup/error   |
//! | `abl_search`      | §2.2 ablation — splitting & prioritization      |
//! | `abl_dataflow`    | §2.5 ablation — lean (dataflow) snippets        |
//!
//! The Criterion benches under `benches/` cover the substrate itself
//! (interpreter throughput, snippet overhead, patching speed, config
//! round-trip, search micro-costs).

use std::time::Instant;

/// Run a closure and return its result alongside wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Print a table header with a rule under it.
pub fn header(h: &str) {
    println!("{h}");
    rule(h);
}

/// Format a ratio as the paper prints overheads, e.g. `3.4X`.
pub fn x(v: f64) -> String {
    format!("{v:.1}X")
}
