//! Snippet micro-costs: executing one scalar double add through the full
//! check/convert snippet vs the bare instruction, for both snippet
//! precisions and both operand states.

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm::isa::*;
use fpvm::program::Program;
use fpvm::value::replace;
use fpvm::{Vm, VmOptions};
use instrument::{emit_snippet, Emitter, OperandFacts, SnippetPrec};

fn harness(a_bits: u64, prec: Option<SnippetPrec>, reps: i64) -> Program {
    let mut p = Program::new(1 << 14);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b0 = p.add_block(f);
    p.funcs[f.0 as usize].entry = b0;
    p.entry = f;
    p.globals = a_bits.to_le_bytes().to_vec();
    // counter loop around the op to amortize setup
    p.push_insn(b0, InstKind::MovI { dst: GM::Reg(Gpr(2)), src: GMI::Imm(0) });
    let head = p.add_block(f);
    let body = p.add_block(f);
    let done = p.add_block(f);
    p.block_mut(b0).term = Terminator::Jmp(head);
    p.push_insn(head, InstKind::Cmp { lhs: Gpr(2), src: GMI::Imm(reps) });
    p.block_mut(head).term = Terminator::Br { cond: Cond::Lt, then_: body, else_: done };
    p.push_insn(
        body,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::abs(0)),
        },
    );
    p.push_insn(
        body,
        InstKind::MovF { width: Width::W64, dst: FpLoc::Reg(Xmm(1)), src: FpLoc::Reg(Xmm(0)) },
    );
    let victim = p.mk_insn(InstKind::FpArith {
        op: FpAluOp::Add,
        prec: Prec::Double,
        packed: false,
        dst: Xmm(0),
        src: RM::Reg(Xmm(1)),
    });
    let tail = match prec {
        Some(sp) => {
            let origin = victim.id;
            let mut e = Emitter { prog: &mut p, func: f, cur: body, origin };
            emit_snippet(&mut e, &victim, sp, OperandFacts::default());
            e.cur
        }
        None => {
            p.blocks[body.0 as usize].insns.push(victim);
            body
        }
    };
    p.push_insn(tail, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(2), src: GMI::Imm(1) });
    p.block_mut(tail).term = Terminator::Jmp(head);
    p.block_mut(done).term = Terminator::Halt;
    p.validate().unwrap();
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("snippet");
    let cases = [
        ("bare", 1.5f64.to_bits(), None),
        ("double.plain", 1.5f64.to_bits(), Some(SnippetPrec::Double)),
        ("double.flagged", replace(1.5), Some(SnippetPrec::Double)),
        ("single.plain", 1.5f64.to_bits(), Some(SnippetPrec::Single)),
        ("single.flagged", replace(1.5), Some(SnippetPrec::Single)),
    ];
    for (name, bits, prec) in cases {
        let p = harness(bits, prec, 1000);
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = Vm::run_program(&p, VmOptions::default());
                assert!(out.ok());
                out.stats.steps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
