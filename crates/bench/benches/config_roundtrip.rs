//! Configuration-format costs: printing and parsing the Fig.-3 exchange
//! format, and effective-flag resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use mpconfig::{parse_config, print_config, Config, Flag, StructureTree};
use workloads::{nas, Class};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("config");
    let w = nas::sp(Class::A);
    let tree = StructureTree::build(w.program());
    let mut cfg = Config::new();
    for (k, id) in tree.all_insns().into_iter().enumerate() {
        cfg.set_insn(id, if k % 3 == 0 { Flag::Single } else { Flag::Double });
    }
    let text = print_config(&tree, &cfg);
    g.bench_function("print", |b| b.iter(|| print_config(&tree, &cfg).len()));
    g.bench_function("parse", |b| b.iter(|| parse_config(&tree, &text).unwrap().len()));
    g.bench_function("effective_all", |b| {
        b.iter(|| {
            tree.all_insns()
                .into_iter()
                .filter(|&i| cfg.effective(&tree, i) == Flag::Single)
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
