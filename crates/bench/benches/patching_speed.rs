//! Binary-modification speed: how fast the rewriter produces a patched
//! program (blocks split, snippets emitted, edges rewired) — the analogue
//! of Dyninst patching + binary rewriting time.

use criterion::{criterion_group, criterion_main, Criterion};
use instrument::{rewrite, rewrite_all_double, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use workloads::{nas, Class};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("patching");
    let w = nas::ft(Class::A);
    let prog = w.program().clone();
    let tree = StructureTree::build(&prog);
    g.bench_function("all_double", |b| b.iter(|| rewrite_all_double(&prog, &tree).1.snippet_insns));
    let mut cfg = Config::new();
    for m in &tree.modules {
        cfg.set_module(m.id, Flag::Single);
    }
    g.bench_function("all_single", |b| {
        b.iter(|| rewrite(&prog, &tree, &cfg, &RewriteOptions::default()).1.snippet_insns)
    });
    g.bench_function("tree_build", |b| b.iter(|| StructureTree::build(&prog).candidate_count()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
