//! End-to-end search micro-benchmark on the smallest classes: measures a
//! full automatic search (profile + BFS + union verification), with the
//! config-evaluation cache on (the default) and off, so the cache's
//! contribution to search wall time is tracked across revisions, and
//! with the shadow-value oracle guiding the queue (prioritize + prune),
//! so the cost of the extra shadowed run stays visible, and descending
//! the precision lattice (double → single → bf16), so the extra
//! per-level search passes are priced against the classic walk.

use criterion::{criterion_group, criterion_main, Criterion};
use mixedprec::{AnalysisOptions, AnalysisSystem, ShadowOptions};
use mpconfig::Flag;
use mpsearch::SearchOptions;
use workloads::{nas, Class};

fn run_once(
    make: fn(Class) -> workloads::Workload,
    eval_cache: bool,
    shadow: bool,
    lattice: &[Flag],
) -> usize {
    let sys = AnalysisSystem::with_options(
        make(Class::S),
        AnalysisOptions {
            search: SearchOptions {
                threads: 2,
                prioritize: false,
                eval_cache,
                lattice: lattice.to_vec(),
                ..Default::default()
            },
            shadow: ShadowOptions { prioritize: shadow, prune: shadow, ..Default::default() },
            ..Default::default()
        },
    );
    sys.run_search().configs_tested
}

fn bench(c: &mut Criterion) {
    let classic = [Flag::Single];
    let lattice = [Flag::Single, Flag::Bf16];
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    for (name, make) in [("ep.s", nas::ep as fn(Class) -> workloads::Workload), ("cg.s", nas::cg)] {
        g.bench_function(name, |b| b.iter(|| run_once(make, true, false, &classic)));
        g.bench_function(format!("{name}.nocache"), |b| {
            b.iter(|| run_once(make, false, false, &classic))
        });
        g.bench_function(format!("{name}.shadow"), |b| {
            b.iter(|| run_once(make, true, true, &classic))
        });
        g.bench_function(format!("{name}.lattice"), |b| {
            b.iter(|| run_once(make, true, false, &lattice))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
