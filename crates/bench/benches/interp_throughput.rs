//! Interpreter throughput on the NAS analogues: steps/second for the
//! original and all-double-instrumented binaries, through all three
//! execution engines — the tree-walking reference interpreter, the
//! pre-decoded execution image (`fpvm::exec`), and the compiled backend
//! (`fpvm::compiled`: threaded-code dispatch + block-fused
//! superinstructions). The orig/instrumented ratio is the "overhead (X)"
//! of the paper's Figs. 8–9 at micro scale; the reference/fast ratio is
//! the dispatch speedup of the pre-decode pass; the fast/compiled ratio
//! is the dispatch + fusion speedup of the compiled tier (gated at >=3x
//! by `bench_gate`).
//!
//! Before timing anything, the engines are asserted bit-identical on
//! every benched program (same result, same step/cycle counts).

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm::exec::ExecImage;
use fpvm::{CompiledImage, Vm, VmOptions};
use instrument::rewrite_all_double;
use mpconfig::StructureTree;
use workloads::{nas, Class};

/// Assert the fast path reproduces the reference run exactly, and return
/// the step count so benches can sanity-check against it.
fn assert_bit_identical(p: &fpvm::Program) -> u64 {
    let opts = VmOptions::default();
    let ref_out = Vm::run_program(p, opts.clone());
    let image = ExecImage::compile(p, &opts.cost);
    let mut vm = Vm::new(p, opts.clone());
    let fast_out = vm.run_image(&image);
    assert_eq!(ref_out.result, fast_out.result);
    assert_eq!(ref_out.stats.steps, fast_out.stats.steps);
    assert_eq!(ref_out.stats.cycles, fast_out.stats.cycles);
    assert_eq!(ref_out.stats.fp_ops, fast_out.stats.fp_ops);
    assert!(fast_out.ok());
    let cimg = CompiledImage::from_image(&image);
    let mut vm = Vm::new(p, opts);
    let comp_out = vm.run_compiled(&cimg);
    assert_eq!(ref_out.result, comp_out.result);
    assert_eq!(ref_out.stats.steps, comp_out.stats.steps);
    assert_eq!(ref_out.stats.cycles, comp_out.stats.cycles);
    assert_eq!(ref_out.stats.fp_ops, comp_out.stats.fp_ops);
    fast_out.stats.steps
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    // The traced/untraced overhead contract is asserted on these rows'
    // minima; extra samples keep the min estimator stable enough to
    // resolve a 5% margin on shared runners.
    g.sample_size(40);
    for (name, w) in [("ep", nas::ep(Class::S)), ("cg", nas::cg(Class::S))] {
        let orig = w.program().clone();
        let tree = StructureTree::build(&orig);
        let (instr, _) = rewrite_all_double(&orig, &tree);
        let cost = VmOptions::default().cost;
        let orig_image = ExecImage::compile(&orig, &cost);
        let instr_image = ExecImage::compile(&instr, &cost);
        let orig_cimg = CompiledImage::from_image(&orig_image);
        let instr_cimg = CompiledImage::from_image(&instr_image);
        let orig_steps = assert_bit_identical(&orig);
        let instr_steps = assert_bit_identical(&instr);

        g.bench_function(format!("{name}.orig"), |b| {
            b.iter(|| {
                let out = Vm::run_program(&orig, VmOptions::default());
                assert!(out.ok());
                out.stats.steps
            })
        });
        g.bench_function(format!("{name}.orig.fast"), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&orig, VmOptions::default());
                let out = vm.run_image(&orig_image);
                assert_eq!(out.stats.steps, orig_steps);
                out.stats.steps
            })
        });
        // The compiled backend on the same image: threaded dispatch with
        // block-fused superinstruction kernels. The bench_gate check
        // warns when this is not >=3x faster than `.orig.fast`.
        g.bench_function(format!("{name}.orig.compiled"), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&orig, VmOptions::default());
                let out = vm.run_compiled(&orig_cimg);
                assert_eq!(out.stats.steps, orig_steps);
                out.stats.steps
            })
        });
        // Overhead of the shadow-value engine over the plain fast path:
        // same image, same run, with every FP event mirrored in f32.
        g.bench_function(format!("{name}.orig.shadow"), |b| {
            b.iter(|| {
                let mut engine = mpshadow::ShadowEngine::new(orig.insn_id_bound());
                let mut vm = Vm::new(&orig, VmOptions::default());
                let out = vm.run_image_observed(&orig_image, &mut engine);
                assert_eq!(out.stats.steps, orig_steps);
                engine.into_profile().len()
            })
        });
        // Overhead of the per-instruction cycle/hit profiler (the
        // mptrace hot-spot path): same image, same run, with the step
        // hook attributing every dispatch. Contract: <5% over
        // `.orig.fast`, while `.orig.fast` itself (the hook compiled
        // out) stays within noise of its pre-mptrace value.
        g.bench_function(format!("{name}.orig.traced"), |b| {
            let mut prof = mptrace::profiler::InsnProfiler::new(orig.insn_id_bound());
            b.iter(|| {
                prof.clear();
                let mut vm = Vm::new(&orig, VmOptions::default());
                let out = vm.run_image_profiled(&orig_image, &mut prof);
                assert_eq!(out.stats.steps, orig_steps);
                prof.total_cycles()
            })
        });
        // Overhead of the numerical-health observer (the mptrace
        // `fp.*` path): same image, same run, with every scalar FP
        // result and quantize classified. Contract: <5% over
        // `.orig.fast`, while `.orig.fast` itself (the hook compiled
        // out via `NoopNumObserver`) stays within noise.
        g.bench_function(format!("{name}.orig.numhealth"), |b| {
            b.iter(|| {
                let mut prof = mptrace::numprof::NumProfiler::new(orig.insn_id_bound());
                let mut vm = Vm::new(&orig, VmOptions::default());
                let out = vm.run_image_numhealth(&orig_image, &mut prof);
                assert_eq!(out.stats.steps, orig_steps);
                prof.iter().map(|(_, e)| e.total).sum::<u64>()
            })
        });
        g.bench_function(format!("{name}.instrumented"), |b| {
            b.iter(|| {
                let out = Vm::run_program(&instr, VmOptions::default());
                assert!(out.ok());
                out.stats.steps
            })
        });
        g.bench_function(format!("{name}.instrumented.fast"), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&instr, VmOptions::default());
                let out = vm.run_image(&instr_image);
                assert_eq!(out.stats.steps, instr_steps);
                out.stats.steps
            })
        });
        g.bench_function(format!("{name}.instrumented.compiled"), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&instr, VmOptions::default());
                let out = vm.run_compiled(&instr_cimg);
                assert_eq!(out.stats.steps, instr_steps);
                out.stats.steps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
