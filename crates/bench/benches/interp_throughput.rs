//! Interpreter throughput on the NAS analogues: steps/second for the
//! original and all-double-instrumented binaries. The ratio is the
//! "overhead (X)" of the paper's Figs. 8–9 at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm::{Vm, VmOptions};
use instrument::rewrite_all_double;
use mpconfig::StructureTree;
use workloads::{nas, Class};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    for (name, w) in [("ep", nas::ep(Class::S)), ("cg", nas::cg(Class::S))] {
        let orig = w.program().clone();
        let tree = StructureTree::build(&orig);
        let (instr, _) = rewrite_all_double(&orig, &tree);
        g.bench_function(format!("{name}.orig"), |b| {
            b.iter(|| {
                let out = Vm::run_program(&orig, VmOptions::default());
                assert!(out.ok());
                out.stats.steps
            })
        });
        g.bench_function(format!("{name}.instrumented"), |b| {
            b.iter(|| {
                let out = Vm::run_program(&instr, VmOptions::default());
                assert!(out.ok());
                out.stats.steps
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
