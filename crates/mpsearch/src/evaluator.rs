//! Configuration evaluation: rewrite → run → verify.
//!
//! The evaluation pipeline is the search's hot loop, so this module stacks
//! three optimizations on top of the naive rewrite-interpret-verify cycle:
//!
//! * instrumented programs come from an incremental [`Rewriter`] that
//!   caches per-block expansions across configurations;
//! * runs go through the pre-decoded [`ExecImage`] fast path instead of
//!   the tree-walking reference interpreter;
//! * each run gets a fuel budget derived from the all-double baseline, so
//!   diverging candidates fail fast instead of burning the global fuel cap.
//!
//! [`CachedEvaluator`] adds result memoization on top of any evaluator,
//! keyed by the configuration's effective replaced-instruction set.

use fpvm::exec::ExecImage;
use fpvm::program::Program;
use fpvm::{Backend, CompiledImage, Memory, Trap, Vm, VmOptions};
use instrument::{rewrite_all_double, RewriteOptions, Rewriter};
use mpconfig::{Config, StructureTree};
use mptrace::profiler::InsnProfiler;
use mptrace::Tracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Operational counters an [`Evaluator`] may expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Evaluations answered from a result cache without running anything.
    pub cache_hits: usize,
    /// Evaluations aborted by the per-run fuel budget (diverging
    /// candidates cut off early).
    pub fuel_capped: usize,
}

/// Per-run knobs the executor passes down to an evaluation attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunControl {
    /// Additional fuel ceiling for this run, layered under the
    /// evaluator's own budget (used by the executor's fault injection and
    /// per-run fuel policy). Evaluators that cannot honor it may ignore
    /// it.
    pub fuel_override: Option<u64>,
}

/// The detailed outcome of one evaluation attempt, as the executor sees
/// it before classifying a [`Verdict`](crate::executor::Verdict).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Did the run complete and verify?
    pub pass: bool,
    /// Fuel spent: dynamic instructions executed (0 if the evaluator does
    /// not track it).
    pub steps: u64,
    /// Trap kind (`fpvm::Trap::kind`) if the run ended abnormally.
    pub trap: Option<&'static str>,
    /// Whether the result was served from a cache without running.
    pub cache_hit: bool,
}

impl EvalOutcome {
    /// A bare pass/fail outcome with no accounting attached.
    pub fn from_pass(pass: bool) -> Self {
        EvalOutcome { pass, ..Default::default() }
    }
}

/// Something that can judge a precision configuration. `evaluate` must be
/// thread-safe: the search calls it from many workers at once.
pub trait Evaluator: Sync {
    /// Build the mixed-precision binary for `cfg`, run it on the
    /// representative data set, and apply the verification routine.
    fn evaluate(&self, cfg: &Config) -> bool;

    /// Like [`Evaluator::evaluate`], but honoring per-run controls and
    /// reporting fuel/trap accounting. The default implementation
    /// delegates to `evaluate` and reports no accounting.
    fn evaluate_run(&self, cfg: &Config, _ctl: &RunControl) -> EvalOutcome {
        EvalOutcome::from_pass(self.evaluate(cfg))
    }

    /// Operational counters accumulated so far (all zero by default).
    fn stats(&self) -> EvalStats {
        EvalStats::default()
    }
}

/// The standard evaluator: instruments a program under the configuration,
/// executes it, and applies a user verification closure to the final
/// machine state (paper Fig. 2's "Data Set + Verification Routine" box).
///
/// Internally it reuses an incremental rewriter, a pool of memory buffers,
/// and a per-run fuel budget of `fuel_factor ×` the all-double baseline
/// step count (never above `vm_opts.fuel`), computed lazily on first use.
pub struct VmEvaluator<'p> {
    prog: &'p Program,
    tree: &'p StructureTree,
    vm_opts: VmOptions,
    verify: Box<dyn Fn(&Vm<'_>) -> bool + Sync + Send>,
    rewriter: Rewriter,
    fuel_factor: u64,
    budget: OnceLock<u64>,
    fuel_capped: AtomicUsize,
    mem_pool: Mutex<Vec<Memory>>,
    tracer: Option<Tracer>,
    backend: Backend,
}

impl<'p> VmEvaluator<'p> {
    /// Construct with default VM/rewrite options.
    pub fn new(
        prog: &'p Program,
        tree: &'p StructureTree,
        verify: impl Fn(&Vm<'_>) -> bool + Sync + Send + 'static,
    ) -> Self {
        Self::with_options(prog, tree, VmOptions::default(), RewriteOptions::default(), verify)
    }

    /// Construct with explicit VM and rewrite options (the rewrite mode is
    /// normally `Config`; `lean` is selectable).
    pub fn with_options(
        prog: &'p Program,
        tree: &'p StructureTree,
        vm_opts: VmOptions,
        rewrite_opts: RewriteOptions,
        verify: impl Fn(&Vm<'_>) -> bool + Sync + Send + 'static,
    ) -> Self {
        VmEvaluator {
            prog,
            tree,
            vm_opts,
            verify: Box::new(verify),
            rewriter: Rewriter::new(prog, rewrite_opts),
            fuel_factor: 8,
            budget: OnceLock::new(),
            fuel_capped: AtomicUsize::new(0),
            mem_pool: Mutex::new(Vec::new()),
            tracer: None,
            backend: Backend::default(),
        }
    }

    /// Select the execution backend for verification runs. Unobserved
    /// runs honor the choice directly; traced runs need per-instruction
    /// attribution, so `Compiled` uses its threaded tier and
    /// `Interp`/`Fast` use the profiled image path (the documented
    /// observer-fallback contract).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The execution backend verification runs use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Attach a [`Tracer`]: evaluations get rewrite/run spans and
    /// latency histograms, and every run feeds the per-instruction
    /// hot-spot profile — time spent in rewritten snippet instructions
    /// is attributed back to the original instruction they expand
    /// (`Insn::origin`). Untraced evaluators skip all of this.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.rewriter.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// Override the fuel-budget factor. The per-run budget is
    /// `factor × all-double baseline steps` (capped at `vm_opts.fuel`);
    /// `0` disables the budget entirely.
    pub fn set_fuel_factor(&mut self, factor: u64) {
        self.fuel_factor = factor;
    }

    /// Fragment-cache `(hits, misses)` of the incremental rewriter.
    pub fn rewrite_cache_stats(&self) -> (u64, u64) {
        self.rewriter.cache_stats()
    }

    fn fuel_budget(&self) -> u64 {
        if self.fuel_factor == 0 {
            return self.vm_opts.fuel;
        }
        *self.budget.get_or_init(|| {
            // The all-double instrumented run is the yardstick: every
            // candidate carries comparable instrumentation overhead, so a
            // healthy run stays within a small multiple of its step count.
            let (base, _) = rewrite_all_double(self.prog, self.tree);
            let out = Vm::run_program(&base, self.vm_opts.clone());
            match out.result {
                Ok(()) => {
                    out.stats.steps.saturating_mul(self.fuel_factor).clamp(1, self.vm_opts.fuel)
                }
                // Baseline itself failed — no meaningful yardstick.
                Err(_) => self.vm_opts.fuel,
            }
        })
    }
}

impl Evaluator for VmEvaluator<'_> {
    fn evaluate(&self, cfg: &Config) -> bool {
        self.evaluate_run(cfg, &RunControl::default()).pass
    }

    fn evaluate_run(&self, cfg: &Config, ctl: &RunControl) -> EvalOutcome {
        let rewrite_span = self.tracer.as_ref().map(|t| t.span("rewrite"));
        let (instrumented, _) = self.rewriter.rewrite(self.prog, self.tree, cfg);
        let image = ExecImage::compile(&instrumented, &self.vm_opts.cost);
        let cimg = (self.backend == Backend::Compiled).then(|| CompiledImage::from_image(&image));
        drop(rewrite_span);
        let mut fuel = self.fuel_budget();
        if let Some(cap) = ctl.fuel_override {
            fuel = fuel.min(cap.max(1));
        }
        let mut opts = self.vm_opts.clone();
        opts.fuel = fuel;
        let mem = self.mem_pool.lock().unwrap().pop().unwrap_or_else(|| Memory::new(0, &[]));
        let mut vm = Vm::with_memory(&instrumented, opts, mem);
        let run_span = self.tracer.as_ref().map(|t| t.span("run"));
        let t0 = Instant::now();
        let outcome = match &self.tracer {
            // Traced: profile the run, then attribute snippet-insn time
            // back to the original instruction each snippet expands.
            Some(tracer) => {
                let mut prof = InsnProfiler::new(instrumented.insn_id_bound());
                // Attribution needs per-op dispatch: the compiled
                // backend's threaded tier keeps it exact; fused regions
                // would not, so they are never used here.
                let outcome = match &cimg {
                    Some(c) => vm.run_compiled_profiled(c, &mut prof),
                    None => vm.run_image_profiled(&image, &mut prof),
                };
                let mut origin: Vec<u32> = (0..instrumented.insn_id_bound() as u32).collect();
                for (_, _, insn) in instrumented.iter_insns() {
                    if let Some(o) = insn.origin {
                        origin[insn.id.0 as usize] = o.0;
                    }
                }
                let mut folded = InsnProfiler::default();
                prof.fold_into(&mut folded, |i| origin[i as usize]);
                tracer.merge_hot(&folded);
                outcome
            }
            None => match (&cimg, self.backend) {
                (Some(c), _) => vm.run_compiled(c),
                (None, Backend::Interp) => vm.run(),
                (None, _) => vm.run_image(&image),
            },
        };
        drop(run_span);
        if let Some(t) = &self.tracer {
            t.incr("eval.runs", 1);
            t.observe("eval.run_us", t0.elapsed().as_micros() as u64);
            t.observe("eval.steps", outcome.stats.steps);
        }
        // Any trap — including crash-on-miss and fuel exhaustion — is a
        // verification failure.
        let pass = outcome.ok() && (self.verify)(&vm);
        if fuel < self.vm_opts.fuel && matches!(outcome.result, Err(Trap::FuelExhausted)) {
            self.fuel_capped.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.tracer {
                t.incr("eval.fuel_capped", 1);
            }
        }
        self.mem_pool.lock().unwrap().push(std::mem::replace(&mut vm.mem, Memory::new(0, &[])));
        EvalOutcome {
            pass,
            steps: outcome.stats.steps,
            trap: outcome.result.err().map(|t| t.kind()),
            cache_hit: false,
        }
    }

    fn stats(&self) -> EvalStats {
        EvalStats { cache_hits: 0, fuel_capped: self.fuel_capped.load(Ordering::Relaxed) }
    }
}

/// Memoizes another evaluator by the *effect* of a configuration: its
/// effective replaced-instruction set.
///
/// Distinct configurations frequently instrument identically — the final
/// union config repeats a passing trial, binary splitting re-derives a
/// child's set when its sibling partition is empty, and the second phase
/// retests subsets — so the cache turns those into constant-time lookups.
///
/// Soundness: within one search every trial shares the same base config,
/// so `Ignore` flags (and hence the candidate set) are constant; two
/// configs with equal effective replacement maps — the same instructions
/// at the same formats (the key packs `(insn, mantissa, exponent)`, see
/// [`Config::replacement_key`]) — produce the same rewritten program and
/// therefore the same verdict.
pub struct CachedEvaluator<'a> {
    inner: &'a dyn Evaluator,
    tree: &'a StructureTree,
    cache: Mutex<HashMap<Vec<u64>, EvalOutcome>>,
    hits: AtomicUsize,
}

impl<'a> CachedEvaluator<'a> {
    /// Wrap `inner`, memoizing by effective replaced set under `tree`.
    pub fn new(inner: &'a dyn Evaluator, tree: &'a StructureTree) -> Self {
        CachedEvaluator {
            inner,
            tree,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
        }
    }

    /// Number of evaluations served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

impl Evaluator for CachedEvaluator<'_> {
    fn evaluate(&self, cfg: &Config) -> bool {
        self.evaluate_run(cfg, &RunControl::default()).pass
    }

    fn evaluate_run(&self, cfg: &Config, ctl: &RunControl) -> EvalOutcome {
        // A fuel-overridden (starved) run is not representative: bypass
        // the cache entirely so it neither reads nor poisons entries.
        if ctl.fuel_override.is_some() {
            return self.inner.evaluate_run(cfg, ctl);
        }
        let key = cfg.replacement_key(self.tree);
        if let Some(&v) = self.cache.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return EvalOutcome { cache_hit: true, ..v };
        }
        // Concurrent misses on the same key may both evaluate; results are
        // deterministic, so the duplicate insert is harmless.
        let v = self.inner.evaluate_run(cfg, ctl);
        self.cache.lock().unwrap().insert(key, v);
        v
    }

    fn stats(&self) -> EvalStats {
        let mut s = self.inner.stats();
        s.cache_hits += self.hits();
        s
    }
}
