//! Configuration evaluation: rewrite → run → verify.

use fpvm::program::Program;
use fpvm::{Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, StructureTree};

/// Something that can judge a precision configuration. `evaluate` must be
/// thread-safe: the search calls it from many workers at once.
pub trait Evaluator: Sync {
    /// Build the mixed-precision binary for `cfg`, run it on the
    /// representative data set, and apply the verification routine.
    fn evaluate(&self, cfg: &Config) -> bool;
}

/// The standard evaluator: instruments a program under the configuration,
/// executes it in a fresh VM, and applies a user verification closure to
/// the final machine state (paper Fig. 2's "Data Set + Verification
/// Routine" box).
pub struct VmEvaluator<'p> {
    /// The original program.
    pub prog: &'p Program,
    /// Its structure tree.
    pub tree: &'p StructureTree,
    /// Interpreter options for evaluation runs.
    pub vm_opts: VmOptions,
    /// Rewriter options (mode is always `Config` here; `lean` selectable).
    pub rewrite_opts: RewriteOptions,
    /// The verification routine: inspects the halted machine and decides
    /// whether the output is acceptable.
    pub verify: Box<dyn Fn(&Vm<'_>) -> bool + Sync + Send>,
}

impl<'p> VmEvaluator<'p> {
    /// Construct with default VM/rewrite options.
    pub fn new(
        prog: &'p Program,
        tree: &'p StructureTree,
        verify: impl Fn(&Vm<'_>) -> bool + Sync + Send + 'static,
    ) -> Self {
        VmEvaluator {
            prog,
            tree,
            vm_opts: VmOptions::default(),
            rewrite_opts: RewriteOptions::default(),
            verify: Box::new(verify),
        }
    }
}

impl Evaluator for VmEvaluator<'_> {
    fn evaluate(&self, cfg: &Config) -> bool {
        let (instrumented, _) = rewrite(self.prog, self.tree, cfg, &self.rewrite_opts);
        let mut vm = Vm::new(&instrumented, self.vm_opts.clone());
        let outcome = vm.run();
        if !outcome.ok() {
            // Any trap — including crash-on-miss and fuel exhaustion — is a
            // verification failure.
            return false;
        }
        (self.verify)(&vm)
    }
}
