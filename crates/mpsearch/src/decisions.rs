//! Decision provenance: one record per instruction explaining *why* it ended
//! up at its final format.
//!
//! The search loop appends [`DecisionEvent`]s as it tests, prunes, and refuses
//! candidate subsets; after the run every instruction in the structure tree is
//! folded into a [`DecisionRecord`] carrying its final flag token plus the full
//! evidence chain. Records serialize one-per-line to `decisions.jsonl` through
//! [`mptrace::json`], so the file round-trips byte-exactly through
//! [`DecisionRecord::parse`] / [`DecisionRecord::to_json`] and tolerates a torn
//! final line (a crashed run loses at most the record being written).
//!
//! Event vocabulary (the `"ev"` tag on the wire):
//!
//! | tag               | meaning                                                      |
//! |-------------------|--------------------------------------------------------------|
//! | `passed`          | unit containing the insn passed verification at a level      |
//! | `failed`          | unit failed at a level (verdict + shadow error when sampled) |
//! | `guard_refused`   | range guard vetoed the demotion, with the observed envelope  |
//! | `shadow_pruned`   | shadow oracle error exceeded threshold; never executed       |
//! | `dropped`         | removed in the second phase (least-executed passing unit)    |
//! | `ignored`         | base config marks the insn `Ignore`; never a candidate       |
//!
//! Per-insn event order is the order the search recorded them; with a
//! multi-threaded pool the interleaving *between* units is scheduling
//! dependent, but every event for one insn is still present.

use std::fmt::Write as _;
use std::path::Path;

use crate::executor::Verdict;
use mptrace::json::{esc, parse_jsonl_tolerant, Value};

/// One piece of evidence in an instruction's decision timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// The unit covering this insn passed verification at a lattice level.
    Passed {
        /// Lattice level the trial ran at (0 = widest replacement).
        level: u32,
        /// Flag token of the trial format (`s`/`h`/`b`/`m<M>e<E>`).
        format: String,
        /// Tree label of the subset that was tested.
        unit: String,
    },
    /// The unit failed verification at a lattice level.
    Failed {
        /// Lattice level the trial ran at.
        level: u32,
        /// Flag token of the trial format.
        format: String,
        /// Executor verdict (`fail`, `timeout`, `crashed`, `quarantined`).
        verdict: Verdict,
        /// Tree label of the subset that was tested.
        unit: String,
        /// Instruction-local shadow error when a shadow oracle was
        /// attached, absent otherwise.
        shadow_err: Option<f64>,
    },
    /// The range guard vetoed demoting this insn without an evaluation.
    GuardRefused {
        /// Target format name (`half`/`bf16`/`m<M>e<E>`).
        format: String,
        /// Operation class (`Exp`/`Log`/`Div`/`Other`).
        class: String,
        /// Largest observed operand magnitude ([`mpfmt::guard::RangeObs`]).
        max_abs: f64,
        /// Smallest observed nonzero operand magnitude.
        min_abs: f64,
        /// The format limit the envelope violated.
        bound: f64,
    },
    /// Shadow-oracle error exceeded the prune threshold, so the subset
    /// was discarded without an evaluation.
    ShadowPruned {
        /// Lattice level the pruned trial would have run at.
        level: u32,
        /// Flag token of the pruned trial format.
        format: String,
        /// Worst instruction-local shadow error over the subset.
        err: f64,
        /// The configured prune threshold that was exceeded.
        threshold: f64,
        /// Tree label of the discarded subset.
        unit: String,
    },
    /// The insn's unit passed but was removed in the second phase as a
    /// least-executed passing unit.
    Dropped {
        /// Tree label of the removed unit.
        unit: String,
    },
    /// The base configuration marks this insn `Ignore`; it was never a
    /// candidate.
    Ignored,
}

/// Full decision provenance for one instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Instruction id (index into the structure tree).
    pub insn: u32,
    /// Instruction address in the image.
    pub addr: u64,
    /// Enclosing function name (for `craft explain --func`).
    pub func: String,
    /// Human label: `module/func/b<block>@<addr>: <disasm>`.
    pub label: String,
    /// Final flag token (`d`/`s`/`h`/`b`/`i`/`m<M>e<E>`) after the search.
    pub final_format: String,
    /// Evidence chain, in recording order.
    pub events: Vec<DecisionEvent>,
}

/// Writes `v` so that it survives JSON: finite values use the shortest exact
/// `{:?}` form, non-finite values become the strings `"inf"`/`"-inf"`/`"nan"`.
fn wnum(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        esc(
            out,
            if v.is_nan() {
                "nan"
            } else if v > 0.0 {
                "inf"
            } else {
                "-inf"
            },
        );
    }
}

fn rnum(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        Value::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

impl DecisionEvent {
    fn write_json(&self, out: &mut String) {
        match self {
            DecisionEvent::Passed { level, format, unit } => {
                out.push_str("{\"ev\":\"passed\",\"level\":");
                let _ = write!(out, "{level}");
                out.push_str(",\"format\":");
                esc(out, format);
                out.push_str(",\"unit\":");
                esc(out, unit);
                out.push('}');
            }
            DecisionEvent::Failed { level, format, verdict, unit, shadow_err } => {
                out.push_str("{\"ev\":\"failed\",\"level\":");
                let _ = write!(out, "{level}");
                out.push_str(",\"format\":");
                esc(out, format);
                out.push_str(",\"verdict\":");
                esc(out, verdict.as_str());
                out.push_str(",\"unit\":");
                esc(out, unit);
                if let Some(e) = shadow_err {
                    out.push_str(",\"shadow_err\":");
                    wnum(out, *e);
                }
                out.push('}');
            }
            DecisionEvent::GuardRefused { format, class, max_abs, min_abs, bound } => {
                out.push_str("{\"ev\":\"guard_refused\",\"format\":");
                esc(out, format);
                out.push_str(",\"class\":");
                esc(out, class);
                out.push_str(",\"max_abs\":");
                wnum(out, *max_abs);
                out.push_str(",\"min_abs\":");
                wnum(out, *min_abs);
                out.push_str(",\"bound\":");
                wnum(out, *bound);
                out.push('}');
            }
            DecisionEvent::ShadowPruned { level, format, err, threshold, unit } => {
                out.push_str("{\"ev\":\"shadow_pruned\",\"level\":");
                let _ = write!(out, "{level}");
                out.push_str(",\"format\":");
                esc(out, format);
                out.push_str(",\"err\":");
                wnum(out, *err);
                out.push_str(",\"threshold\":");
                wnum(out, *threshold);
                out.push_str(",\"unit\":");
                esc(out, unit);
                out.push('}');
            }
            DecisionEvent::Dropped { unit } => {
                out.push_str("{\"ev\":\"dropped\",\"unit\":");
                esc(out, unit);
                out.push('}');
            }
            DecisionEvent::Ignored => out.push_str("{\"ev\":\"ignored\"}"),
        }
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let tag = v.get("ev").and_then(Value::as_str).ok_or("event missing \"ev\" tag")?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{tag} event missing \"{k}\""))
        };
        let n = |k: &str| -> Result<f64, String> {
            v.get(k).and_then(rnum).ok_or_else(|| format!("{tag} event missing \"{k}\""))
        };
        let lvl = || -> Result<u32, String> {
            v.get("level")
                .and_then(Value::as_u64)
                .map(|l| l as u32)
                .ok_or_else(|| format!("{tag} event missing \"level\""))
        };
        match tag {
            "passed" => {
                Ok(DecisionEvent::Passed { level: lvl()?, format: s("format")?, unit: s("unit")? })
            }
            "failed" => Ok(DecisionEvent::Failed {
                level: lvl()?,
                format: s("format")?,
                verdict: {
                    let w = s("verdict")?;
                    Verdict::from_str(&w).ok_or_else(|| format!("unknown verdict {w:?}"))?
                },
                unit: s("unit")?,
                shadow_err: match v.get("shadow_err") {
                    None => None,
                    Some(x) => Some(rnum(x).ok_or("failed event: bad \"shadow_err\"")?),
                },
            }),
            "guard_refused" => Ok(DecisionEvent::GuardRefused {
                format: s("format")?,
                class: s("class")?,
                max_abs: n("max_abs")?,
                min_abs: n("min_abs")?,
                bound: n("bound")?,
            }),
            "shadow_pruned" => Ok(DecisionEvent::ShadowPruned {
                level: lvl()?,
                format: s("format")?,
                err: n("err")?,
                threshold: n("threshold")?,
                unit: s("unit")?,
            }),
            "dropped" => Ok(DecisionEvent::Dropped { unit: s("unit")? }),
            "ignored" => Ok(DecisionEvent::Ignored),
            other => Err(format!("unknown decision event tag {other:?}")),
        }
    }
}

impl DecisionRecord {
    /// Serializes the record as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"insn\":");
        let _ = write!(out, "{}", self.insn);
        out.push_str(",\"addr\":");
        let _ = write!(out, "{}", self.addr);
        out.push_str(",\"func\":");
        esc(&mut out, &self.func);
        out.push_str(",\"label\":");
        esc(&mut out, &self.label);
        out.push_str(",\"final\":");
        esc(&mut out, &self.final_format);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses one `to_json` line back; `to_json` of the result reproduces the
    /// input byte-for-byte.
    pub fn parse(line: &str) -> Result<Self, String> {
        Self::from_value(&mptrace::json::parse(line)?)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let events = v
            .get("events")
            .and_then(Value::as_arr)
            .ok_or("record missing \"events\"")?
            .iter()
            .map(DecisionEvent::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DecisionRecord {
            insn: v.get("insn").and_then(Value::as_u64).ok_or("record missing \"insn\"")? as u32,
            addr: v.get("addr").and_then(Value::as_u64).ok_or("record missing \"addr\"")?,
            func: v
                .get("func")
                .and_then(Value::as_str)
                .ok_or("record missing \"func\"")?
                .to_owned(),
            label: v
                .get("label")
                .and_then(Value::as_str)
                .ok_or("record missing \"label\"")?
                .to_owned(),
            final_format: v
                .get("final")
                .and_then(Value::as_str)
                .ok_or("record missing \"final\"")?
                .to_owned(),
            events,
        })
    }
}

/// Serializes `records` as JSONL (one record per line, trailing newline).
pub fn to_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Parses a `decisions.jsonl` body. A torn final line (crash mid-write) is
/// tolerated and reported as a warning; corruption anywhere else is an error.
pub fn from_jsonl_tolerant(text: &str) -> Result<(Vec<DecisionRecord>, Option<String>), String> {
    let (values, warning) = parse_jsonl_tolerant(text)?;
    let mut records = Vec::with_capacity(values.len());
    for (line_no, v) in &values {
        records.push(DecisionRecord::from_value(v).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    Ok((records, warning))
}

/// Writes `records` to `path` as JSONL.
pub fn save(path: &Path, records: &[DecisionRecord]) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl(records))
}

/// Loads a `decisions.jsonl` file, tolerating a torn final line.
pub fn load(path: &Path) -> Result<(Vec<DecisionRecord>, Option<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_jsonl_tolerant(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DecisionRecord> {
        vec![
            DecisionRecord {
                insn: 3,
                addr: 0x401_0a4,
                func: "mulpd_loop".into(),
                label: "ep/mulpd_loop/b1@0x4010a4: mulsd xmm0, xmm1".into(),
                final_format: "b".into(),
                events: vec![
                    DecisionEvent::Passed { level: 0, format: "s".into(), unit: "ep".into() },
                    DecisionEvent::Passed {
                        level: 1,
                        format: "b".into(),
                        unit: "ep/mulpd_loop".into(),
                    },
                ],
            },
            DecisionRecord {
                insn: 7,
                addr: 0x401_0b0,
                func: "vranlc".into(),
                label: "ep/vranlc/b0@0x4010b0: divsd xmm2, xmm3".into(),
                final_format: "d".into(),
                events: vec![
                    DecisionEvent::Failed {
                        level: 0,
                        format: "s".into(),
                        verdict: Verdict::Fail,
                        unit: "ep/vranlc".into(),
                        shadow_err: Some(3.5e-4),
                    },
                    DecisionEvent::GuardRefused {
                        format: "half".into(),
                        class: "Div".into(),
                        max_abs: 70000.0,
                        min_abs: 1.5e-9,
                        bound: 65504.0,
                    },
                    DecisionEvent::ShadowPruned {
                        level: 1,
                        format: "b".into(),
                        err: 0.25,
                        threshold: 1e-6,
                        unit: "ep/vranlc".into(),
                    },
                ],
            },
            DecisionRecord {
                insn: 9,
                addr: 0x401_0c0,
                func: "timer".into(),
                label: "ep/timer/b0@0x4010c0: addsd xmm0, xmm1".into(),
                final_format: "i".into(),
                events: vec![DecisionEvent::Ignored],
            },
        ]
    }

    #[test]
    fn round_trips_byte_exactly() {
        for r in sample() {
            let line = r.to_json();
            let back = DecisionRecord::parse(&line).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn jsonl_round_trip_and_torn_final_line() {
        let records = sample();
        let text = to_jsonl(&records);
        let (back, warn) = from_jsonl_tolerant(&text).unwrap();
        assert_eq!(back, records);
        assert!(warn.is_none());

        // A crash mid-write leaves a torn final line: tolerated with a warning.
        let torn = &text[..text.len() - 10];
        let (back, warn) = from_jsonl_tolerant(torn).unwrap();
        assert_eq!(back.len(), records.len() - 1);
        assert_eq!(back, records[..2]);
        assert!(warn.is_some(), "torn final line must produce a warning");

        // Corruption before the final line stays a hard error.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "{\"insn\":";
        let corrupt = lines.join("\n");
        assert!(from_jsonl_tolerant(&corrupt).is_err());
    }

    #[test]
    fn non_finite_range_evidence_survives() {
        let r = DecisionRecord {
            insn: 0,
            addr: 0,
            func: "f".into(),
            label: "m/f/b0@0x0: sqrtsd".into(),
            final_format: "d".into(),
            events: vec![DecisionEvent::GuardRefused {
                format: "bf16".into(),
                class: "Other".into(),
                max_abs: f64::INFINITY,
                min_abs: 0.0,
                bound: 3.3895313892515355e38,
            }],
        };
        let line = r.to_json();
        let back = DecisionRecord::parse(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn dropped_and_failed_without_shadow_err() {
        let r = DecisionRecord {
            insn: 1,
            addr: 16,
            func: "g".into(),
            label: "m/g/b0@0x10: subsd".into(),
            final_format: "s".into(),
            events: vec![
                DecisionEvent::Failed {
                    level: 1,
                    format: "h".into(),
                    verdict: Verdict::Timeout,
                    unit: "m/g".into(),
                    shadow_err: None,
                },
                DecisionEvent::Dropped { unit: "m/g".into() },
            ],
        };
        let line = r.to_json();
        assert!(!line.contains("shadow_err"));
        let back = DecisionRecord::parse(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), line);
    }
}
