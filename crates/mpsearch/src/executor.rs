//! Fault-tolerant evaluation executor.
//!
//! The breadth-first search drives thousands of verification runs of a
//! rewritten binary, and in the real CRAFT tool those runs crash, hang,
//! and diverge routinely — a failed run is a *search signal*, not an
//! infrastructure error (§2.2 folds crashes into "failed"). This module
//! hardens the evaluation loop accordingly:
//!
//! * every attempt runs under [`ExecPolicy`]: an optional per-run fuel
//!   override and wall-clock limit, panic isolation (`catch_unwind`
//!   around the verification closure), bounded retry with linear backoff
//!   for transient failures, and quarantine of configurations that
//!   repeatedly wedge;
//! * the classified outcome is a [`Verdict`] — only `Pass` counts as a
//!   passing unit, everything else folds into "failed" exactly as the
//!   paper prescribes;
//! * a deterministic [`FaultPlan`] can inject worker panics, fuel
//!   starvation, trap storms, NaN poisoning, and simulated timeouts at
//!   chosen evaluation indices, so the policy itself is testable;
//! * every transition is mirrored to an optional [`EventLog`].
//!
//! Timeout semantics: the substrate guarantees termination (every run is
//! fuel-bounded), so wall-clock limits are classified *post-run* rather
//! than by killing a thread mid-evaluation; the fuel budget remains the
//! primary in-run bound. Injected timeouts and fuel starvation are
//! treated as transient (retried); a natural fuel exhaustion is a
//! deterministic divergence and is retried only when
//! [`ExecPolicy::retry_timeouts`] is set.

use crate::evaluator::{Evaluator, RunControl};
use crate::events::{Event, EventLog};
use mpconfig::{Config, StructureTree};
use mptrace::Tracer;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock `m`, recovering the guard if a previous holder panicked: a
/// worker panic caught by `catch_unwind` must not poison the quarantine
/// set for the rest of the search.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The classified outcome of evaluating one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The run completed and the verification routine accepted it.
    Pass,
    /// The run completed but verification rejected it (or the VM trapped
    /// on a replaced value — the deliberate crash-on-miss of §2.3).
    Fail,
    /// The run exceeded its fuel or wall-clock budget.
    Timeout,
    /// The evaluation panicked (worker fault) or hit an injected trap
    /// storm.
    Crashed,
    /// The configuration wedged repeatedly and was quarantined; it is
    /// skipped on re-encounter.
    Quarantined,
}

impl Verdict {
    /// Stable wire name (used in the JSONL event log).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Timeout => "timeout",
            Verdict::Crashed => "crashed",
            Verdict::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`Verdict::as_str`]. (Inherent rather than the
    /// `FromStr` trait: an `Option` reads better at call sites than a
    /// `Result` with an error type nobody inspects.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Verdict> {
        Some(match s {
            "pass" => Verdict::Pass,
            "fail" => Verdict::Fail,
            "timeout" => Verdict::Timeout,
            "crashed" => Verdict::Crashed,
            "quarantined" => Verdict::Quarantined,
            _ => return None,
        })
    }

    /// Every verdict, in wire order (used by schema round-trip tests).
    pub const ALL: [Verdict; 5] =
        [Verdict::Pass, Verdict::Fail, Verdict::Timeout, Verdict::Crashed, Verdict::Quarantined];
}

/// Robustness policy for one search's evaluations.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Per-run fuel ceiling layered *under* the evaluator's own derived
    /// budget (`None` = evaluator's budget only).
    pub fuel_limit: Option<u64>,
    /// Per-run wall-clock limit; attempts exceeding it are classified
    /// `Timeout` (checked post-run — the fuel bound guarantees
    /// termination).
    pub wall_limit: Option<Duration>,
    /// Maximum retries after a `Crashed` (and, per `retry_timeouts`,
    /// `Timeout`) attempt.
    pub max_retries: usize,
    /// Base backoff before a retry; attempt `k` sleeps `k × backoff`.
    pub backoff: Duration,
    /// Also retry *natural* timeouts (fuel/wall exhaustion not injected
    /// by a fault plan). Off by default: in this substrate a fuel
    /// exhaustion is a deterministic divergence.
    pub retry_timeouts: bool,
    /// Number of wedged attempts after which a configuration is
    /// quarantined (`0` disables quarantine).
    pub quarantine_after: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            fuel_limit: None,
            wall_limit: None,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            retry_timeouts: false,
            quarantine_after: 3,
        }
    }
}

/// Deterministic fault injection for executor tests and drills.
///
/// Indices refer to the executor's global evaluation-*attempt* counter
/// (every attempt, including retries, increments it). With one worker
/// thread the sequence is fully deterministic; with several, each fault
/// still fires exactly once, on whichever attempt draws the index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the evaluation closure at these attempt indices
    /// (exercises `catch_unwind` isolation for real).
    pub panic_at: Vec<u64>,
    /// Run with a starvation fuel override (1 step) at these indices —
    /// the VM genuinely traps with `FuelExhausted`.
    pub fuel_starve_at: Vec<u64>,
    /// Classify the attempt as `Timeout` at these indices (simulates an
    /// externally wedged run).
    pub timeout_at: Vec<u64>,
    /// Classify the attempt as `Crashed` at these indices (simulates a
    /// trap storm in the instrumented binary).
    pub trap_storm_at: Vec<u64>,
    /// Force verification failure at these indices (simulates NaN
    /// poisoning of the result arrays).
    pub nan_poison_at: Vec<u64>,
}

impl FaultPlan {
    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.panic_at.is_empty()
            && self.fuel_starve_at.is_empty()
            && self.timeout_at.is_empty()
            && self.trap_storm_at.is_empty()
            && self.nan_poison_at.is_empty()
    }
}

/// Aggregate robustness counters accumulated by an [`Executor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Evaluation attempts performed (including retries).
    pub attempts: usize,
    /// Attempts classified `Timeout`.
    pub timeouts: usize,
    /// Attempts classified `Crashed`.
    pub crashes: usize,
    /// Retries performed after a wedged attempt.
    pub retries: usize,
    /// Configurations quarantined (including re-encounters of an already
    /// quarantined configuration).
    pub quarantined: usize,
}

/// The fault-tolerant evaluation executor: wraps an [`Evaluator`] with
/// policy enforcement, fault injection, and event emission.
pub struct Executor<'a> {
    eval: &'a dyn Evaluator,
    tree: &'a StructureTree,
    policy: ExecPolicy,
    faults: FaultPlan,
    events: Option<&'a EventLog>,
    tracer: Option<&'a Tracer>,
    next_idx: AtomicU64,
    attempts: AtomicUsize,
    timeouts: AtomicUsize,
    crashes: AtomicUsize,
    retries: AtomicUsize,
    quarantined: AtomicUsize,
    quarantine: Mutex<HashSet<Vec<u64>>>,
}

impl<'a> Executor<'a> {
    /// Build an executor over `eval` with the given policy, fault plan,
    /// and optional event sink.
    pub fn new(
        eval: &'a dyn Evaluator,
        tree: &'a StructureTree,
        policy: ExecPolicy,
        faults: FaultPlan,
        events: Option<&'a EventLog>,
    ) -> Self {
        Executor {
            eval,
            tree,
            policy,
            faults,
            events,
            tracer: None,
            next_idx: AtomicU64::new(0),
            attempts: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            crashes: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            quarantine: Mutex::new(HashSet::new()),
        }
    }

    /// Attach a [`Tracer`]: evaluation attempts get spans, verdicts get
    /// counters, and attempt wall time gets a histogram.
    pub fn with_tracer(mut self, tracer: Option<&'a Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Snapshot of the robustness counters.
    pub fn counters(&self) -> ExecCounters {
        ExecCounters {
            attempts: self.attempts.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    fn emit(&self, ev: Event) {
        if let Some(log) = self.events {
            log.emit(ev);
        }
    }

    /// Evaluate `cfg` under the policy and return its verdict.
    ///
    /// `label` is a human-readable tag for the configuration (its
    /// structural node), used only for events.
    pub fn run(&self, cfg: &Config, label: &str) -> Verdict {
        // Keyed by the format-aware replacement map, so the same insn set
        // at different lattice levels is quarantined independently.
        let key: Vec<u64> = if self.policy.quarantine_after > 0 {
            cfg.replacement_key(self.tree)
        } else {
            Vec::new()
        };
        if self.policy.quarantine_after > 0 && relock(&self.quarantine).contains(&key) {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            self.emit(Event::Quarantined { label: label.to_string(), wedged: 0 });
            if let Some(t) = self.tracer {
                t.incr("exec.verdict.quarantined", 1);
            }
            return Verdict::Quarantined;
        }

        let _item_span = self.tracer.map(|t| t.span("eval"));
        let insns = key.len();
        let mut wedged = 0usize;
        let mut last = Verdict::Crashed;
        for attempt in 0..=self.policy.max_retries {
            let idx = self.next_idx.fetch_add(1, Ordering::Relaxed);
            self.attempts.fetch_add(1, Ordering::Relaxed);
            self.emit(Event::EvalStarted { idx, label: label.to_string(), insns });
            let _attempt_span =
                self.tracer.map(|t| t.span(if attempt == 0 { "attempt" } else { "retry-attempt" }));

            let fires = |plan: &[u64]| plan.contains(&idx);
            let injected_starve = fires(&self.faults.fuel_starve_at);
            let ctl = RunControl {
                fuel_override: if injected_starve { Some(1) } else { self.policy.fuel_limit },
            };

            let t0 = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if fires(&self.faults.panic_at) {
                    panic!("injected worker panic at evaluation {idx}");
                }
                self.eval.evaluate_run(cfg, &ctl)
            }));
            let wall = t0.elapsed();

            let (verdict, steps, cache_hit, injected) = match outcome {
                Err(_) => (Verdict::Crashed, 0, false, true),
                Ok(out) => {
                    let fuel_out = out.trap == Some("fuel-exhausted");
                    let over_wall = self.policy.wall_limit.is_some_and(|lim| wall > lim);
                    let v = if fires(&self.faults.trap_storm_at) {
                        Verdict::Crashed
                    } else if fires(&self.faults.timeout_at) || (injected_starve && fuel_out) {
                        Verdict::Timeout
                    } else if fires(&self.faults.nan_poison_at) {
                        Verdict::Fail
                    } else if fuel_out || over_wall {
                        Verdict::Timeout
                    } else if out.pass {
                        Verdict::Pass
                    } else {
                        Verdict::Fail
                    };
                    let injected = fires(&self.faults.trap_storm_at)
                        || fires(&self.faults.timeout_at)
                        || injected_starve;
                    (v, out.steps, out.cache_hit, injected)
                }
            };
            self.emit(Event::EvalFinished {
                idx,
                label: label.to_string(),
                attempt,
                verdict,
                steps,
                wall_us: wall.as_micros() as u64,
                cache_hit,
            });
            if let Some(t) = self.tracer {
                t.incr(&format!("exec.verdict.{}", verdict.as_str()), 1);
                t.observe("exec.attempt_wall_us", wall.as_micros() as u64);
                if cache_hit {
                    t.incr("exec.cache_hits", 1);
                }
            }

            match verdict {
                Verdict::Pass | Verdict::Fail => return verdict,
                Verdict::Timeout => {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    if !injected && !self.policy.retry_timeouts {
                        // Deterministic divergence: retrying cannot help.
                        return Verdict::Timeout;
                    }
                }
                Verdict::Crashed => {
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                }
                Verdict::Quarantined => unreachable!("quarantine decided before attempts"),
            }
            wedged += 1;
            last = verdict;

            if attempt < self.policy.max_retries {
                self.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.tracer {
                    t.incr("exec.retries", 1);
                }
                let backoff = self.policy.backoff.saturating_mul(attempt as u32 + 1);
                self.emit(Event::Retry {
                    idx,
                    attempt: attempt + 1,
                    backoff_us: backoff.as_micros() as u64,
                });
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }

        if self.policy.quarantine_after > 0 && wedged >= self.policy.quarantine_after {
            relock(&self.quarantine).insert(key);
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            self.emit(Event::Quarantined { label: label.to_string(), wedged });
            if let Some(t) = self.tracer {
                t.incr("exec.verdict.quarantined", 1);
            }
            return Verdict::Quarantined;
        }
        last
    }
}
