//! Structured JSONL event log of a search run.
//!
//! The executor emits one [`Event`] per interesting transition (search
//! started, configuration enqueued, evaluation started/finished with its
//! [`Verdict`], retries, quarantines, queue
//! depth, phase boundaries). Events serialize to one JSON object per line
//! so external tooling — and the `craft report` subcommand — can consume
//! a run without linking against this crate.
//!
//! The schema is flat on purpose: every event is a single JSON object of
//! string/integer/boolean fields plus an `"ev"` tag and a `"t_us"`
//! timestamp (microseconds since the log was opened). [`Record`] round-
//! trips through [`Record::to_json`] / [`Record::parse`]; the
//! dependency-free parser lives in [`json`].

use crate::executor::Verdict;
use mptrace::json::esc;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// The shared dependency-free JSON parser, re-exported from its new
/// home in `mptrace` so existing `mpsearch::events::json` users (the
/// bench gate, external tooling) keep working unchanged.
pub use mptrace::json;

/// Lock `m`, recovering the guard if a previous holder panicked. The
/// event log is written from workers running under `catch_unwind`; a
/// panic between lock and unlock must not abort every later emission.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One structured event in the life of a search.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The search began.
    SearchStarted {
        /// Human label for the workload being searched.
        bench: String,
        /// Number of replacement-candidate instructions.
        candidates: usize,
        /// Worker threads draining the queue.
        threads: usize,
    },
    /// A work item entered the priority queue.
    ConfigEnqueued {
        /// Structural label of the enqueued node/partition.
        label: String,
        /// Candidate instructions covered by the item.
        insns: usize,
        /// Profile-count priority (0 when prioritization is off).
        priority: u64,
        /// Queue depth after the push.
        depth: usize,
    },
    /// An evaluation attempt started.
    EvalStarted {
        /// Global attempt index (monotonic across the search).
        idx: u64,
        /// Structural label of the configuration under test.
        label: String,
        /// Candidate instructions replaced by the trial.
        insns: usize,
    },
    /// An evaluation attempt finished with a verdict.
    EvalFinished {
        /// Global attempt index.
        idx: u64,
        /// Structural label of the configuration under test.
        label: String,
        /// Retry ordinal of this attempt (0 = first try).
        attempt: usize,
        /// The classified outcome.
        verdict: Verdict,
        /// Fuel spent (dynamic instructions executed; 0 if unknown).
        steps: u64,
        /// Wall-clock time of the attempt, in microseconds.
        wall_us: u64,
        /// Whether the result came from the evaluation cache.
        cache_hit: bool,
    },
    /// A wedged attempt is being retried after backoff.
    Retry {
        /// Attempt index that failed.
        idx: u64,
        /// Retry ordinal about to run (1-based).
        attempt: usize,
        /// Backoff slept before the retry, in microseconds.
        backoff_us: u64,
    },
    /// A work item was skipped without evaluation because its shadow
    /// error already exceeded the verification threshold.
    ShadowPruned {
        /// Structural label of the pruned item.
        label: String,
        /// Worst shadow-run relative divergence over the item's
        /// instructions.
        err: f64,
        /// Prune threshold (verification tolerance × margin).
        threshold: f64,
    },
    /// A configuration exhausted its retries and was quarantined.
    Quarantined {
        /// Structural label of the quarantined configuration.
        label: String,
        /// Number of wedged attempts observed.
        wedged: usize,
    },
    /// Queue occupancy sampled at a dequeue.
    QueueDepth {
        /// Items waiting in the queue.
        depth: usize,
        /// Evaluations currently running.
        in_flight: usize,
    },
    /// A search phase began (`bfs`, `union`, `second-phase`).
    PhaseStarted {
        /// Phase name.
        phase: String,
    },
    /// A search phase completed.
    PhaseFinished {
        /// Phase name.
        phase: String,
        /// Phase wall-clock time, in microseconds.
        wall_us: u64,
    },
    /// The search completed; aggregate counters.
    SearchFinished {
        /// Configurations tested.
        tested: usize,
        /// Individually passing units found.
        passing: usize,
        /// Attempts classified `Timeout`.
        timeouts: usize,
        /// Attempts classified `Crashed`.
        crashes: usize,
        /// Retries performed.
        retries: usize,
        /// Configurations quarantined.
        quarantined: usize,
        /// Evaluations served by the result cache.
        cache_hits: usize,
        /// Total search wall-clock time, in microseconds.
        wall_us: u64,
    },
}

impl Event {
    /// The `"ev"` tag identifying this variant on the wire.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::SearchStarted { .. } => "search_started",
            Event::ConfigEnqueued { .. } => "config_enqueued",
            Event::EvalStarted { .. } => "eval_started",
            Event::EvalFinished { .. } => "eval_finished",
            Event::Retry { .. } => "retry",
            Event::ShadowPruned { .. } => "shadow_pruned",
            Event::Quarantined { .. } => "quarantined",
            Event::QueueDepth { .. } => "queue_depth",
            Event::PhaseStarted { .. } => "phase_started",
            Event::PhaseFinished { .. } => "phase_finished",
            Event::SearchFinished { .. } => "search_finished",
        }
    }
}

/// A timestamped [`Event`] — exactly one line of the JSONL log.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Microseconds since the log was opened.
    pub t_us: u64,
    /// The event payload.
    pub event: Event,
}

impl Record {
    /// Serialize to one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"ev\":\"{}\",\"t_us\":{}", self.event.tag(), self.t_us);
        macro_rules! field {
            (str $k:literal, $v:expr) => {{
                let _ = write!(s, ",\"{}\":", $k);
                esc(&mut s, $v);
            }};
            (num $k:literal, $v:expr) => {{
                let _ = write!(s, ",\"{}\":{}", $k, $v);
            }};
            (bool $k:literal, $v:expr) => {{
                let _ = write!(s, ",\"{}\":{}", $k, if $v { "true" } else { "false" });
            }};
        }
        match &self.event {
            Event::SearchStarted { bench, candidates, threads } => {
                field!(str "bench", bench);
                field!(num "candidates", candidates);
                field!(num "threads", threads);
            }
            Event::ConfigEnqueued { label, insns, priority, depth } => {
                field!(str "label", label);
                field!(num "insns", insns);
                field!(num "priority", priority);
                field!(num "depth", depth);
            }
            Event::EvalStarted { idx, label, insns } => {
                field!(num "idx", idx);
                field!(str "label", label);
                field!(num "insns", insns);
            }
            Event::EvalFinished { idx, label, attempt, verdict, steps, wall_us, cache_hit } => {
                field!(num "idx", idx);
                field!(str "label", label);
                field!(num "attempt", attempt);
                field!(str "verdict", verdict.as_str());
                field!(num "steps", steps);
                field!(num "wall_us", wall_us);
                field!(bool "cache_hit", *cache_hit);
            }
            Event::Retry { idx, attempt, backoff_us } => {
                field!(num "idx", idx);
                field!(num "attempt", attempt);
                field!(num "backoff_us", backoff_us);
            }
            Event::ShadowPruned { label, err, threshold } => {
                field!(str "label", label);
                // `{:?}` prints the shortest exact round-trip form.
                let _ = write!(s, ",\"err\":{:?},\"threshold\":{:?}", err, threshold);
            }
            Event::Quarantined { label, wedged } => {
                field!(str "label", label);
                field!(num "wedged", wedged);
            }
            Event::QueueDepth { depth, in_flight } => {
                field!(num "depth", depth);
                field!(num "in_flight", in_flight);
            }
            Event::PhaseStarted { phase } => {
                field!(str "phase", phase);
            }
            Event::PhaseFinished { phase, wall_us } => {
                field!(str "phase", phase);
                field!(num "wall_us", wall_us);
            }
            Event::SearchFinished {
                tested,
                passing,
                timeouts,
                crashes,
                retries,
                quarantined,
                cache_hits,
                wall_us,
            } => {
                field!(num "tested", tested);
                field!(num "passing", passing);
                field!(num "timeouts", timeouts);
                field!(num "crashes", crashes);
                field!(num "retries", retries);
                field!(num "quarantined", quarantined);
                field!(num "cache_hits", cache_hits);
                field!(num "wall_us", wall_us);
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back into a [`Record`].
    pub fn parse(line: &str) -> Result<Record, String> {
        let v = json::parse(line)?;
        let tag = v.get("ev").and_then(json::Value::as_str).ok_or("missing \"ev\" tag")?;
        let t_us = v.get("t_us").and_then(json::Value::as_u64).ok_or("missing \"t_us\"")?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field \"{k}\""))
        };
        let n = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(json::Value::as_u64).ok_or_else(|| format!("missing field \"{k}\""))
        };
        let b = |k: &str| -> Result<bool, String> {
            v.get(k)
                .and_then(json::Value::as_bool)
                .ok_or_else(|| format!("missing bool field \"{k}\""))
        };
        let event = match tag {
            "search_started" => Event::SearchStarted {
                bench: s("bench")?,
                candidates: n("candidates")? as usize,
                threads: n("threads")? as usize,
            },
            "config_enqueued" => Event::ConfigEnqueued {
                label: s("label")?,
                insns: n("insns")? as usize,
                priority: n("priority")?,
                depth: n("depth")? as usize,
            },
            "eval_started" => Event::EvalStarted {
                idx: n("idx")?,
                label: s("label")?,
                insns: n("insns")? as usize,
            },
            "eval_finished" => Event::EvalFinished {
                idx: n("idx")?,
                label: s("label")?,
                attempt: n("attempt")? as usize,
                verdict: Verdict::from_str(&s("verdict")?)
                    .ok_or_else(|| format!("unknown verdict in {line:?}"))?,
                steps: n("steps")?,
                wall_us: n("wall_us")?,
                cache_hit: b("cache_hit")?,
            },
            "retry" => Event::Retry {
                idx: n("idx")?,
                attempt: n("attempt")? as usize,
                backoff_us: n("backoff_us")?,
            },
            "shadow_pruned" => {
                let f = |k: &str| -> Result<f64, String> {
                    v.get(k)
                        .and_then(json::Value::as_f64)
                        .ok_or_else(|| format!("missing float field \"{k}\""))
                };
                Event::ShadowPruned {
                    label: s("label")?,
                    err: f("err")?,
                    threshold: f("threshold")?,
                }
            }
            "quarantined" => {
                Event::Quarantined { label: s("label")?, wedged: n("wedged")? as usize }
            }
            "queue_depth" => Event::QueueDepth {
                depth: n("depth")? as usize,
                in_flight: n("in_flight")? as usize,
            },
            "phase_started" => Event::PhaseStarted { phase: s("phase")? },
            "phase_finished" => Event::PhaseFinished { phase: s("phase")?, wall_us: n("wall_us")? },
            "search_finished" => Event::SearchFinished {
                tested: n("tested")? as usize,
                passing: n("passing")? as usize,
                timeouts: n("timeouts")? as usize,
                crashes: n("crashes")? as usize,
                retries: n("retries")? as usize,
                quarantined: n("quarantined")? as usize,
                cache_hits: n("cache_hits")? as usize,
                wall_us: n("wall_us")?,
            },
            other => return Err(format!("unknown event tag {other:?}")),
        };
        Ok(Record { t_us, event })
    }
}

/// A shared, append-only JSONL sink for [`Event`]s.
///
/// Cheap to share across worker threads: emission takes a short mutex on
/// the underlying writer. Write errors are deliberately swallowed — an
/// observability sink must never fail the search it observes.
pub struct EventLog {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
}

impl EventLog {
    /// Log to a freshly created (truncated) file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<EventLog> {
        let f = std::fs::File::create(path)?;
        Ok(EventLog::to_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Log to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> EventLog {
        EventLog { out: Mutex::new(out), start: Instant::now() }
    }

    /// Log into a shared in-memory buffer (for tests): returns the log and
    /// a handle from which the emitted bytes can be read back.
    pub fn in_memory() -> (EventLog, Arc<Mutex<Vec<u8>>>) {
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                relock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        (EventLog::to_writer(Box::new(Sink(buf.clone()))), buf)
    }

    /// Append one event, stamped with the elapsed time since the log
    /// opened.
    pub fn emit(&self, event: Event) {
        let rec = Record { t_us: self.start.elapsed().as_micros() as u64, event };
        let mut line = rec.to_json();
        line.push('\n');
        let mut out = relock(&self.out);
        let _ = out.write_all(line.as_bytes());
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = relock(&self.out).flush();
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.flush();
    }
}
