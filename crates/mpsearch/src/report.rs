//! Search results, in the shape of the paper's Fig. 10 rows.

use mpconfig::{Config, Flag, NodeRef, StructureTree};
use std::time::Duration;

/// A structural unit that individually passed verification when replaced
/// with single precision.
#[derive(Debug, Clone)]
pub struct PassingUnit {
    /// The node (or, for binary-split partitions, the covering parent with
    /// an explicit child subset).
    pub node: NodeRef,
    /// Human-readable label.
    pub label: String,
    /// Number of candidate instructions covered.
    pub insns: usize,
}

/// The outcome of an automatic search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Number of replacement-candidate instructions considered
    /// (the "Candidates" column of Fig. 10).
    pub candidates: usize,
    /// Total configurations evaluated ("Tested").
    pub configs_tested: usize,
    /// Structural units whose individual replacement passed.
    pub passing: Vec<PassingUnit>,
    /// Instructions that failed even at instruction granularity.
    pub failed_insns: usize,
    /// The union ("final") configuration.
    pub final_config: Config,
    /// Verification result of the final composed configuration
    /// ("Final Verification" — may legitimately fail, §3.1).
    pub final_pass: bool,
    /// Percentage of candidate instructions replaced, measured statically
    /// ("Static").
    pub static_pct: f64,
    /// Percentage of candidate instruction *executions* replaced, measured
    /// against a profile of the original run ("Dynamic").
    pub dynamic_pct: f64,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
    /// Evaluations answered by the config-evaluation cache instead of an
    /// actual instrument-run-verify cycle.
    pub cache_hits: usize,
    /// Evaluations cut off by the per-run fuel budget (diverging
    /// candidates failed fast).
    pub fuel_capped: usize,
    /// Evaluation attempts classified `Timeout` by the executor (fuel or
    /// wall-clock exhaustion, natural or injected).
    pub timeouts: usize,
    /// Evaluation attempts classified `Crashed` (worker panics, trap
    /// storms).
    pub crashes: usize,
    /// Retries the executor performed after wedged attempts.
    pub retries: usize,
    /// Configurations the executor quarantined after repeated wedging.
    pub quarantined: usize,
    /// Work items skipped without evaluation because their shadow-run
    /// error already exceeded the verification threshold.
    pub pruned_by_shadow: usize,
    /// Reduced-format trials refused without evaluation because the
    /// observed operand range cannot survive the target format
    /// (`mpfmt::guard`).
    pub guard_refused: usize,
    /// Decision provenance: one record per instruction in the tree with
    /// its final format and the full evidence chain that put it there
    /// (see [`crate::decisions`]). Serialized to `decisions.jsonl` by
    /// the analysis pipeline.
    pub decisions: Vec<crate::decisions::DecisionRecord>,
}

impl SearchReport {
    /// Render one row in the format of the paper's Fig. 10.
    pub fn figure10_row(&self, name: &str) -> String {
        format!(
            "{:<8} {:>10} {:>8} {:>8.1}% {:>8.1}% {:>6}",
            name,
            self.candidates,
            self.configs_tested,
            self.static_pct,
            self.dynamic_pct,
            if self.final_pass { "pass" } else { "fail" }
        )
    }

    /// Header matching [`SearchReport::figure10_row`].
    pub fn figure10_header() -> String {
        format!(
            "{:<8} {:>10} {:>8} {:>9} {:>9} {:>6}",
            "bench", "candidates", "tested", "static", "dynamic", "final"
        )
    }

    /// One-line summary of the evaluation-pipeline counters: cache hits
    /// and fuel-capped runs. Kept out of [`SearchReport::figure10_row`] so
    /// the figure stays byte-comparable with the paper's table.
    pub fn perf_note(&self, name: &str) -> String {
        format!(
            "{:<8} eval cache hits: {:>4}   fuel-capped runs: {:>4}   elapsed: {:?}",
            name, self.cache_hits, self.fuel_capped, self.elapsed
        )
    }

    /// One-line summary of the executor's robustness counters. Empty
    /// when nothing abnormal happened, so callers can print it
    /// unconditionally.
    pub fn fault_note(&self, name: &str) -> String {
        if self.timeouts + self.crashes + self.retries + self.quarantined == 0 {
            return String::new();
        }
        format!(
            "{:<8} timeouts: {:>3}   crashes: {:>3}   retries: {:>3}   quarantined: {:>3}",
            name, self.timeouts, self.crashes, self.retries, self.quarantined
        )
    }

    /// One-line summary of shadow-oracle activity. Empty when no item
    /// was pruned, so callers can print it unconditionally.
    pub fn shadow_note(&self, name: &str) -> String {
        if self.pruned_by_shadow == 0 {
            return String::new();
        }
        format!("{:<8} shadow-pruned: {:>4}", name, self.pruned_by_shadow)
    }

    /// One-line summary of range-guard activity. Empty when no trial
    /// was refused, so callers can print it unconditionally.
    pub fn guard_note(&self, name: &str) -> String {
        if self.guard_refused == 0 {
            return String::new();
        }
        format!("{:<8} guard-refused: {:>4}", name, self.guard_refused)
    }

    /// The precision dimension of the final configuration: how many
    /// candidate instructions landed at each lattice level, as
    /// `(flag token, count)` rows ordered widest format first
    /// (`d`, `s`, `h`/`b`/custom, `i`). Levels with no instructions are
    /// omitted.
    pub fn format_breakdown(&self, tree: &StructureTree) -> Vec<(String, usize)> {
        let mut counts: Vec<(Flag, usize)> = Vec::new();
        for id in tree.all_insns() {
            let fl = self.final_config.effective(tree, id);
            match counts.iter_mut().find(|(f, _)| *f == fl) {
                Some((_, n)) => *n += 1,
                None => counts.push((fl, 1)),
            }
        }
        // Widest mantissa first; Ignore (no mantissa, not a replacement)
        // sorts last, Double (full width) first.
        counts.sort_by_key(|(f, _)| match f {
            Flag::Ignore => (2, 0u32),
            Flag::Double => (0, 0),
            f => (1, u32::MAX - f.mantissa_bits().unwrap_or(0)),
        });
        counts.into_iter().map(|(f, n)| (f.token(), n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SearchReport {
        SearchReport {
            candidates: 21,
            configs_tested: 5,
            passing: Vec::new(),
            failed_insns: 0,
            final_config: Config::new(),
            final_pass: true,
            static_pct: 95.2,
            dynamic_pct: 99.95,
            elapsed: Duration::from_millis(1500),
            cache_hits: 2,
            fuel_capped: 1,
            timeouts: 0,
            crashes: 0,
            retries: 0,
            quarantined: 0,
            pruned_by_shadow: 0,
            guard_refused: 0,
            decisions: Vec::new(),
        }
    }

    #[test]
    fn figure10_row_matches_header_columns() {
        let r = report();
        let row = r.figure10_row("ep.s");
        assert_eq!(row, "ep.s             21        5     95.2%    100.0%   pass");
        // header and row agree on the position of every column boundary
        let header = SearchReport::figure10_header();
        assert_eq!(header.len(), row.len());
        for (h, v) in [
            ("candidates", "21"),
            ("tested", "5"),
            ("static", "95.2%"),
            ("dynamic", "100.0%"),
            ("final", "pass"),
        ] {
            let hcol = header.find(h).unwrap() + h.len();
            let vcol = row.find(v).unwrap() + v.len();
            assert_eq!(hcol, vcol, "column `{h}` misaligned");
        }
    }

    #[test]
    fn figure10_row_shows_failure() {
        let mut r = report();
        r.final_pass = false;
        assert!(r.figure10_row("cg.s").ends_with("fail"));
        assert!(r.figure10_row("cg.s").starts_with("cg.s "));
    }

    #[test]
    fn perf_note_always_renders() {
        let r = report();
        let note = r.perf_note("ep.s");
        assert!(note.starts_with("ep.s "));
        assert!(note.contains("eval cache hits:    2"));
        assert!(note.contains("fuel-capped runs:    1"));
        assert!(note.contains("1.5s"));
    }

    #[test]
    fn fault_note_is_empty_without_faults() {
        assert_eq!(report().fault_note("ep.s"), "");
        let mut r = report();
        r.timeouts = 2;
        r.retries = 1;
        let note = r.fault_note("ep.s");
        assert!(note.contains("timeouts:   2"));
        assert!(note.contains("crashes:   0"));
        assert!(note.contains("retries:   1"));
        assert!(note.contains("quarantined:   0"));
    }

    #[test]
    fn shadow_note_is_empty_without_pruning() {
        assert_eq!(report().shadow_note("ep.s"), "");
        let mut r = report();
        r.pruned_by_shadow = 7;
        assert_eq!(r.shadow_note("ep.s"), "ep.s     shadow-pruned:    7");
    }

    #[test]
    fn guard_note_is_empty_without_refusals() {
        assert_eq!(report().guard_note("ep.s"), "");
        let mut r = report();
        r.guard_refused = 3;
        assert_eq!(r.guard_note("ep.s"), "ep.s     guard-refused:    3");
    }
}
