//! The breadth-first search algorithm (paper §2.2).

use crate::decisions::{DecisionEvent, DecisionRecord};
use crate::evaluator::{CachedEvaluator, Evaluator};
use crate::events::{Event, EventLog};
use crate::executor::{ExecPolicy, Executor, FaultPlan, Verdict};
use crate::pool::WorkerPool;
use crate::report::{PassingUnit, SearchReport};
use fpvm::isa::InsnId;
use fpvm::Profile;
use mpconfig::{Config, Flag, NodeRef, StructureTree};
use mpfmt::guard::{check_demotion, op_class_of_disasm, GuardError, OpClass};
use mptrace::stream::{Progress, StreamSink};
use mptrace::Tracer;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The deepest structure level the search descends to. Stopping at
/// functions or blocks "allows for faster convergence with coarser
/// results" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDepth {
    /// Test module- and function-level configurations only.
    Function,
    /// Descend to basic blocks.
    Block,
    /// Descend all the way to individual instructions (default).
    Instruction,
}

impl StopDepth {
    fn max_depth(self) -> usize {
        match self {
            StopDepth::Function => 1,
            StopDepth::Block => 2,
            StopDepth::Instruction => 3,
        }
    }
}

/// Search options.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Deepest level to descend to.
    pub stop_depth: StopDepth,
    /// Enable the binary-splitting optimization for failed aggregates.
    pub binary_split: bool,
    /// Enable profile-count prioritization (requires a profile).
    pub prioritize: bool,
    /// Worker threads evaluating configurations in parallel.
    pub threads: usize,
    /// Stop after this many configuration evaluations, if set.
    pub max_tests: Option<usize>,
    /// Children-count threshold above which binary splitting applies.
    pub split_threshold: usize,
    /// Run the second search phase the paper suggests (§3.1): when the
    /// union of individually passing replacements fails verification,
    /// greedily back off the least-executed passing units until a
    /// composable configuration is found.
    pub second_phase: bool,
    /// Memoize evaluation results by effective replaced-instruction set
    /// (shared across all workers), so structurally different trials that
    /// instrument identically are evaluated once.
    pub eval_cache: bool,
    /// Robustness policy for the evaluation executor (timeouts, retries,
    /// quarantine, panic isolation).
    pub exec: ExecPolicy,
    /// Queue items a worker takes per lock acquisition ("batched
    /// dispatch"). The default of 1 reproduces the classic
    /// one-item-per-pop behavior exactly; larger batches amortize lock
    /// traffic when evaluations are cheap relative to queue transfer
    /// (the daemon's sharded workloads). The *set* of configurations
    /// tested is unchanged either way — only pop order shifts. Clamped
    /// to 1 whenever [`SearchOptions::max_tests`] is set so the test
    /// budget stays exact.
    pub batch: usize,
    /// The precision lattice: replacement levels to descend through, in
    /// order of decreasing width. The default `[Single]` reproduces the
    /// classic two-level (double/single) search exactly. With more
    /// levels — e.g. `[Single, Half]` or `[Single, Bf16]` — a unit that
    /// passes at level *k* is re-enqueued at level *k + 1*, so each unit
    /// settles at the narrowest format that still verifies (demotion on
    /// failure keeps the last passing level). Non-replacement flags are
    /// ignored; an empty list is normalized to `[Single]`.
    pub lattice: Vec<Flag>,
}

impl SearchOptions {
    /// The default worker-thread count: the `CRAFT_THREADS` environment
    /// variable if set and parseable, otherwise
    /// [`std::thread::available_parallelism`], clamped to `1..=16` so a
    /// many-core host does not oversubscribe the interpreter-bound
    /// evaluations.
    /// A malformed or zero value falls back to the automatic default
    /// with a warning rather than being silently ignored.
    pub fn default_threads() -> usize {
        if let Ok(v) = std::env::var("CRAFT_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(0) => {
                    eprintln!(
                        "warning: CRAFT_THREADS=0 is invalid (need at least one worker); \
                         using automatic thread count"
                    );
                }
                Ok(n) => return n.clamp(1, 64),
                Err(_) => {
                    eprintln!(
                        "warning: CRAFT_THREADS={v:?} is not a number; \
                         using automatic thread count"
                    );
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 16)
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            stop_depth: StopDepth::Instruction,
            binary_split: true,
            prioritize: true,
            threads: SearchOptions::default_threads(),
            max_tests: None,
            split_threshold: 2,
            second_phase: false,
            eval_cache: true,
            exec: ExecPolicy::default(),
            batch: 1,
            lattice: vec![Flag::Single],
        }
    }
}

/// Side-channel hooks for [`search_observed`]: deterministic fault
/// injection, a structured event sink, and an optional shadow-value
/// oracle. [`search`] uses the inert defaults.
#[derive(Default)]
pub struct SearchHooks<'a> {
    /// Label stamped on the `search_started` event.
    pub bench: String,
    /// Deterministic fault plan applied by the executor.
    pub faults: FaultPlan,
    /// JSONL event sink; `None` disables event emission.
    pub events: Option<&'a EventLog>,
    /// Shadow-value oracle for prioritization and pruning; `None`
    /// leaves the search exactly as without the subsystem.
    pub shadow: Option<ShadowOracle<'a>>,
    /// Span/metric recorder; `None` disables tracing entirely.
    pub tracer: Option<&'a Tracer>,
    /// Live telemetry stream (`live.jsonl`); `None` disables streaming.
    /// The sink is interval- and delta-gated, so the per-evaluation cost
    /// of wiring it in is a couple of atomic loads.
    pub stream: Option<&'a StreamSink>,
    /// Reusable [`WorkerPool`] to run the evaluation loops on; `None`
    /// spawns per-search scoped threads (the classic CLI behavior). A
    /// long-running daemon passes one shared pool to every search so N
    /// concurrent jobs multiplex over one fixed set of OS threads
    /// instead of spawning `N × threads` of their own.
    pub pool: Option<&'a WorkerPool>,
}

/// A shadow-run sensitivity profile plugged into the search as an
/// oracle (see `mpshadow`).
///
/// * **Prioritization** — with `prioritize` set, queue priority becomes
///   `(error_class << 48) | profile_count`: items whose instructions
///   diverged least under full truncation are popped first, with the
///   execution-count heuristic breaking ties within a class. Order alone
///   never changes *which* items get tested, so results are unchanged.
/// * **Pruning** — with `prune_threshold` set, an item whose worst
///   *instruction-local* shadow error exceeds the threshold is treated
///   as a failed evaluation without running it: it is expanded into
///   finer-grained work and counted in
///   [`SearchReport::pruned_by_shadow`] instead of `configs_tested`.
///   Pruning deliberately uses the local metric, not the propagated
///   divergence — the shadow run truncates *everything* at once, so
///   propagated error wildly overestimates what replacing one unit
///   introduces. The union and second-phase evaluations are never
///   pruned, so a misprediction costs extra refinement, not a wrong
///   final configuration.
#[derive(Clone, Copy)]
pub struct ShadowOracle<'a> {
    /// Per-instruction shadow-error statistics from one shadowed run.
    pub profile: &'a mpshadow::SensitivityProfile,
    /// Rank queue items by (low) shadow error before profile counts.
    pub prioritize: bool,
    /// Skip-as-failed items whose worst instruction-local shadow error
    /// exceeds this; `None` disables pruning.
    pub prune_threshold: Option<f64>,
}

/// A work item: a structure node, or a binary-split partition of some
/// node's children, tried at one level of the precision lattice.
#[derive(Debug, Clone)]
struct Item {
    node: NodeRef,
    /// For partitions: the explicit child subset being tested.
    subset: Option<Vec<NodeRef>>,
    insns: Vec<InsnId>,
    /// Index into the sanitized lattice: the replacement flag this trial
    /// applies to `insns`. Roots start at 0; passing items re-enter the
    /// queue at `level + 1` until the lattice bottoms out.
    level: usize,
}

struct QEntry {
    priority: u64,
    seq: Reverse<u64>,
    item: Item,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

struct Shared {
    queue: BinaryHeap<QEntry>,
    in_flight: usize,
    tested: usize,
    pruned: usize,
    guard_refused: usize,
    next_seq: u64,
    passing: Vec<Item>,
    stopped: bool,
    /// Decision provenance: per-insn evidence chain, appended at every
    /// outcome site (all of which already hold this lock).
    decisions: HashMap<u32, Vec<DecisionEvent>>,
}

struct Ctx<'a> {
    tree: &'a StructureTree,
    base: &'a Config,
    profile: Option<&'a Profile>,
    opts: &'a SearchOptions,
    /// Sanitized [`SearchOptions::lattice`]: replacement flags only,
    /// never empty.
    lattice: Vec<Flag>,
    /// Range-guard classes per candidate instruction, classified from
    /// the tree's disassembly. Empty unless the lattice has reduced
    /// levels and a shadow oracle (the range source) is attached.
    classes: HashMap<u32, OpClass>,
    events: Option<&'a EventLog>,
    shadow: Option<ShadowOracle<'a>>,
    tracer: Option<&'a Tracer>,
    stream: Option<&'a StreamSink>,
}

/// Instantaneous progress for the live stream, read under the shared
/// lock. `done` counts pruned items too: they consumed queue work even
/// though no evaluation ran.
fn progress_of(s: &Shared, phase: &str) -> Progress {
    let done = s.tested + s.pruned + s.guard_refused;
    Progress {
        phase: phase.into(),
        queue_depth: s.queue.len() as u64,
        in_flight: s.in_flight as u64,
        done: done as u64,
        total_estimate: (done + s.queue.len() + s.in_flight) as u64,
    }
}

impl Ctx<'_> {
    /// Non-ignored candidate instructions under a node.
    fn live_insns(&self, node: NodeRef) -> Vec<InsnId> {
        self.tree
            .insns_under(node)
            .into_iter()
            .filter(|&i| self.base.effective(self.tree, i) != Flag::Ignore)
            .collect()
    }

    fn priority_of(&self, insns: &[InsnId]) -> u64 {
        if !self.opts.prioritize {
            return 0;
        }
        let count = match self.profile {
            Some(p) => p.total_of(insns.iter().copied()),
            None => 0,
        };
        match self.shadow {
            // Shadow-guided ranking: the error class (higher = smaller
            // divergence) dominates, profile counts break ties within a
            // class. 48 bits of count is far beyond any real fuel budget.
            Some(o) if o.prioritize => {
                let err = o.profile.max_rel_over(insns.iter().copied());
                (mpshadow::error_class(err) << 48) | count.min((1 << 48) - 1)
            }
            _ => count,
        }
    }

    /// The replacement flag at one lattice level (clamped to the last
    /// level, though the search never enqueues beyond the lattice).
    fn flag_at(&self, level: usize) -> Flag {
        self.lattice[level.min(self.lattice.len() - 1)]
    }

    /// Human label for a work item (node label, plus the partition size
    /// for binary-split subsets, plus the lattice level below the
    /// classic single).
    fn label_of(&self, item: &Item) -> String {
        let base = match &item.subset {
            Some(sub) => format!("{} [{} children]", self.tree.label(item.node), sub.len()),
            None => self.tree.label(item.node),
        };
        if item.level == 0 {
            base
        } else {
            format!("{} @{}", base, self.flag_at(item.level).token())
        }
    }

    fn push(&self, s: &mut Shared, item: Item) {
        if item.insns.is_empty() {
            return;
        }
        let priority = self.priority_of(&item.insns);
        let seq = s.next_seq;
        s.next_seq += 1;
        if let Some(log) = self.events {
            log.emit(Event::ConfigEnqueued {
                label: self.label_of(&item),
                insns: item.insns.len(),
                priority,
                depth: s.queue.len() + 1,
            });
        }
        if let Some(t) = self.tracer {
            t.incr("search.enqueued", 1);
        }
        s.queue.push(QEntry { priority, seq: Reverse(seq), item });
    }

    /// Expand a failed item into finer-grained work at the same lattice
    /// level: a unit that fails at level *k* is refined structurally, so
    /// smaller pieces can still reach level *k* even though the whole
    /// could not (the pieces already passed level *k − 1* as part of a
    /// passing ancestor, which stays in `passing`).
    fn expand(&self, s: &mut Shared, item: &Item) {
        match &item.subset {
            Some(children) if children.len() > 1 => {
                // split the partition in half (binary splitting)
                let mid = children.len() / 2;
                for half in [&children[..mid], &children[mid..]] {
                    let insns: Vec<InsnId> =
                        half.iter().flat_map(|&c| self.live_insns(c)).collect();
                    let subset = if half.len() > 1 { Some(half.to_vec()) } else { None };
                    let node = if half.len() == 1 { half[0] } else { item.node };
                    self.push(s, Item { node, subset, insns, level: item.level });
                }
            }
            Some(children) => {
                // singleton partition == the child node itself; its test
                // just failed, so expand the child directly.
                debug_assert_eq!(children.len(), 1);
                self.expand_node(s, children[0], item.level);
            }
            None => self.expand_node(s, item.node, item.level),
        }
    }

    fn expand_node(&self, s: &mut Shared, node: NodeRef, level: usize) {
        if node.depth() >= self.opts.stop_depth.max_depth() {
            return; // leaf at the configured granularity: stays double
        }
        let children: Vec<NodeRef> = self
            .tree
            .children(node)
            .into_iter()
            .filter(|&c| !self.live_insns(c).is_empty())
            .collect();
        if children.is_empty() {
            return;
        }
        if self.opts.binary_split && children.len() > self.opts.split_threshold {
            let mid = children.len() / 2;
            for half in [&children[..mid], &children[mid..]] {
                let insns: Vec<InsnId> = half.iter().flat_map(|&c| self.live_insns(c)).collect();
                let subset = if half.len() > 1 { Some(half.to_vec()) } else { None };
                let n = if half.len() == 1 { half[0] } else { node };
                self.push(s, Item { node: n, subset, insns, level });
            }
        } else {
            for c in children {
                let insns = self.live_insns(c);
                self.push(s, Item { node: c, subset: None, insns, level });
            }
        }
    }

    fn trial_config(&self, insns: &[InsnId], level: usize) -> Config {
        let mut cfg = self.base.clone();
        let flag = self.flag_at(level);
        for &i in insns {
            cfg.set_insn(i, flag);
        }
        cfg
    }

    /// Compose the final configuration from passing units: each
    /// instruction lands at the *narrowest* format it passed at (the
    /// same unit re-passes at every shallower level first, so every
    /// covered instruction has a level-0 entry too). Returns the config
    /// and the set of replaced instructions.
    fn union_config(&self, items: &[Item]) -> (Config, BTreeSet<InsnId>) {
        let mut best: BTreeMap<InsnId, Flag> = BTreeMap::new();
        for it in items {
            let fl = self.flag_at(it.level);
            for &i in &it.insns {
                let e = best.entry(i).or_insert(fl);
                if fl.mantissa_bits().unwrap_or(u32::MAX) < e.mantissa_bits().unwrap_or(u32::MAX) {
                    *e = fl;
                }
            }
        }
        let replaced: BTreeSet<InsnId> = best.keys().copied().collect();
        let mut cfg = self.base.clone();
        for (i, fl) in best {
            cfg.set_insn(i, fl);
        }
        (cfg, replaced)
    }

    /// Range-guard check for one item: every covered instruction whose
    /// observed operand envelope cannot survive the item's target
    /// format, with the refusing [`mpfmt::guard::GuardError`] and the
    /// observed range as evidence. A non-empty result refuses the whole
    /// item. Only reduced formats are guarded, and only when a shadow
    /// profile (the range source) is attached — otherwise demotions keep
    /// the classic try-it-and-verify behavior.
    fn guard_refusals(&self, item: &Item) -> Vec<(InsnId, DecisionEvent)> {
        let (Some(oracle), Some(fmt)) =
            (self.shadow, self.flag_at(item.level).format().filter(|f| f.is_reduced()))
        else {
            return Vec::new();
        };
        item.insns
            .iter()
            .filter_map(|&i| {
                let class = self.classes.get(&i.0).copied().unwrap_or(OpClass::Other);
                let obs = oracle.profile.range_over([i]);
                let err = check_demotion(fmt, class, &obs).err()?;
                let (class, bound) = match err {
                    GuardError::Overflow { class, bound, .. }
                    | GuardError::Underflow { class, bound, .. } => (class, bound),
                };
                Some((
                    i,
                    DecisionEvent::GuardRefused {
                        format: fmt.name(),
                        class: format!("{class:?}"),
                        max_abs: obs.max_abs,
                        min_abs: obs.min_abs,
                        bound,
                    },
                ))
            })
            .collect()
    }

    /// Appends one decision event to every insn of `item`.
    fn record(&self, s: &mut Shared, item: &Item, ev: DecisionEvent) {
        for &i in &item.insns {
            s.decisions.entry(i.0).or_default().push(ev.clone());
        }
    }
}

/// Run the automatic breadth-first search.
///
/// * `tree` — the program's structure tree;
/// * `base` — the starting configuration (typically empty, or carrying
///   `ignore` flags for constructs like FP-trick RNGs);
/// * `profile` — an execution profile of the original program, used for
///   prioritization and the dynamic-replacement metric;
/// * `eval` — the configuration evaluator (instrument → run → verify).
pub fn search(
    tree: &StructureTree,
    base: &Config,
    profile: Option<&Profile>,
    eval: &dyn Evaluator,
    opts: &SearchOptions,
) -> SearchReport {
    search_observed(tree, base, profile, eval, opts, &SearchHooks::default())
}

/// [`search`], with observability and fault-injection hooks: evaluations
/// run through the fault-tolerant [`Executor`] (they always do — plain
/// [`search`] just uses inert hooks), structured events go to
/// `hooks.events`, and `hooks.faults` deterministically injects failures
/// for robustness testing.
pub fn search_observed(
    tree: &StructureTree,
    base: &Config,
    profile: Option<&Profile>,
    eval: &dyn Evaluator,
    opts: &SearchOptions,
    hooks: &SearchHooks<'_>,
) -> SearchReport {
    let start = Instant::now();
    // Sanitize the lattice: replacement flags only, never empty. The
    // default `[Single]` reproduces the classic two-level search.
    let mut lattice: Vec<Flag> =
        opts.lattice.iter().copied().filter(|f| f.is_replacement()).collect();
    if lattice.is_empty() {
        lattice.push(Flag::Single);
    }
    // Range-guard classes are only needed when a reduced level can
    // actually be tried and a shadow profile supplies observed ranges.
    let guards_armed = hooks.shadow.is_some()
        && lattice.iter().any(|f| f.format().is_some_and(|fm| fm.is_reduced()));
    let classes: HashMap<u32, OpClass> = if guards_armed {
        tree.modules
            .iter()
            .flat_map(|m| m.funcs.iter())
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insns.iter())
            .map(|e| (e.id.0, op_class_of_disasm(&e.disasm)))
            .collect()
    } else {
        HashMap::new()
    };
    let ctx = Ctx {
        tree,
        base,
        profile,
        opts,
        lattice,
        classes,
        events: hooks.events,
        shadow: hooks.shadow,
        tracer: hooks.tracer,
        stream: hooks.stream,
    };
    let search_span = hooks.tracer.map(|t| t.span("search"));

    // Optionally interpose the evaluation cache. All call sites below —
    // workers, the final union test, and the second phase — go through
    // `eval`, so every repeated effective configuration is a hit.
    let cache = opts.eval_cache.then(|| CachedEvaluator::new(eval, tree));
    let eval: &dyn Evaluator = match &cache {
        Some(c) => c,
        None => eval,
    };
    let exec = Executor::new(eval, tree, opts.exec.clone(), hooks.faults.clone(), hooks.events)
        .with_tracer(hooks.tracer);

    let candidates: Vec<InsnId> =
        tree.all_insns().into_iter().filter(|&i| base.effective(tree, i) != Flag::Ignore).collect();

    if let Some(log) = hooks.events {
        log.emit(Event::SearchStarted {
            bench: hooks.bench.clone(),
            candidates: candidates.len(),
            threads: opts.threads.max(1),
        });
        log.emit(Event::PhaseStarted { phase: "bfs".into() });
    }
    let phase_start = Instant::now();
    let bfs_span = hooks.tracer.map(|t| t.span("phase:bfs"));

    let shared = Mutex::new(Shared {
        queue: BinaryHeap::new(),
        in_flight: 0,
        tested: 0,
        pruned: 0,
        guard_refused: 0,
        next_seq: 0,
        passing: Vec::new(),
        stopped: false,
        decisions: HashMap::new(),
    });
    let cond = Condvar::new();

    {
        let mut s = shared.lock().unwrap();
        for root in tree.roots() {
            let insns = ctx.live_insns(root);
            ctx.push(&mut s, Item { node: root, subset: None, insns, level: 0 });
        }
        if let Some(sink) = ctx.stream {
            sink.force(&progress_of(&s, "bfs"));
        }
    }

    let workers = opts.threads.max(1);
    // A max_tests budget needs the tested count re-checked before every
    // evaluation, so batching collapses to the classic one-at-a-time pop.
    let batch_size = if opts.max_tests.is_some() { 1 } else { opts.batch.max(1) };
    // One worker loop, run either on per-search scoped threads or on the
    // caller's shared pool — the loop itself cannot tell the difference.
    let worker_loop = || loop {
        let batch = {
            let mut s = shared.lock().unwrap();
            loop {
                if s.stopped {
                    return;
                }
                if let Some(max) = opts.max_tests {
                    if s.tested >= max {
                        s.stopped = true;
                        cond.notify_all();
                        return;
                    }
                }
                if !s.queue.is_empty() {
                    // Batched dispatch: take up to `batch_size` items in
                    // one lock acquisition.
                    let mut batch = Vec::with_capacity(batch_size);
                    while batch.len() < batch_size {
                        match s.queue.pop() {
                            Some(e) => batch.push(e.item),
                            None => break,
                        }
                    }
                    s.in_flight += batch.len();
                    if let Some(log) = ctx.events {
                        log.emit(Event::QueueDepth {
                            depth: s.queue.len(),
                            in_flight: s.in_flight,
                        });
                    }
                    // Gauge sampled at the dequeue, so idle drains
                    // are visible, not just enqueue-time spikes.
                    if let Some(t) = ctx.tracer {
                        t.gauge("search.queue_depth", s.queue.len() as f64);
                        t.gauge("search.in_flight", s.in_flight as f64);
                    }
                    break batch;
                }
                if s.in_flight == 0 {
                    cond.notify_all();
                    return;
                }
                s = cond.wait(s).unwrap();
            }
        };
        'items: for item in batch {
            // Shadow pruning: an item whose worst instruction-local
            // shadow error already exceeds the threshold is expanded
            // like a failed evaluation, without paying for the
            // evaluation.
            if let Some(oracle) = ctx.shadow {
                if let Some(threshold) = oracle.prune_threshold {
                    let err = oracle.profile.max_local_over(item.insns.iter().copied());
                    if err > threshold {
                        if let Some(log) = ctx.events {
                            log.emit(Event::ShadowPruned {
                                label: ctx.label_of(&item),
                                err,
                                threshold,
                            });
                        }
                        if let Some(t) = ctx.tracer {
                            t.incr("search.shadow_pruned", 1);
                        }
                        let mut s = shared.lock().unwrap();
                        s.pruned += 1;
                        ctx.record(
                            &mut s,
                            &item,
                            DecisionEvent::ShadowPruned {
                                level: item.level as u32,
                                format: ctx.flag_at(item.level).token(),
                                err,
                                threshold,
                                unit: ctx.label_of(&item),
                            },
                        );
                        ctx.expand(&mut s, &item);
                        s.in_flight -= 1;
                        let prog = ctx.stream.map(|_| progress_of(&s, "bfs"));
                        cond.notify_all();
                        drop(s);
                        if let (Some(sink), Some(p)) = (ctx.stream, prog) {
                            sink.tick(&p);
                        }
                        continue 'items;
                    }
                }
            }
            // Range guards: a reduced-format trial whose observed
            // operand envelope cannot survive the target format is
            // refused without evaluation and refined structurally, like
            // a failed test.
            let refusals = ctx.guard_refusals(&item);
            if !refusals.is_empty() {
                if let Some(t) = ctx.tracer {
                    t.incr("search.guard_refused", 1);
                }
                let mut s = shared.lock().unwrap();
                s.guard_refused += 1;
                for (i, ev) in refusals {
                    s.decisions.entry(i.0).or_default().push(ev);
                }
                ctx.expand(&mut s, &item);
                s.in_flight -= 1;
                let prog = ctx.stream.map(|_| progress_of(&s, "bfs"));
                cond.notify_all();
                drop(s);
                if let (Some(sink), Some(p)) = (ctx.stream, prog) {
                    sink.tick(&p);
                }
                continue 'items;
            }
            let cfg = ctx.trial_config(&item.insns, item.level);
            let unit = ctx.label_of(&item);
            let verdict = exec.run(&cfg, &unit);
            let pass = verdict == Verdict::Pass;
            let mut s = shared.lock().unwrap();
            s.tested += 1;
            if pass {
                ctx.record(
                    &mut s,
                    &item,
                    DecisionEvent::Passed {
                        level: item.level as u32,
                        format: ctx.flag_at(item.level).token(),
                        unit,
                    },
                );
                // Lattice descent: a passing unit re-enters the queue at
                // the next (narrower) level; the pass itself is kept so
                // the unit settles at its deepest passing format.
                if item.level + 1 < ctx.lattice.len() {
                    let deeper = Item { level: item.level + 1, ..item.clone() };
                    ctx.push(&mut s, deeper);
                }
                s.passing.push(item);
            } else {
                // Per-insn error metric: the instruction-local shadow
                // error, when an oracle supplied one.
                for &i in &item.insns {
                    s.decisions.entry(i.0).or_default().push(DecisionEvent::Failed {
                        level: item.level as u32,
                        format: ctx.flag_at(item.level).token(),
                        verdict,
                        unit: unit.clone(),
                        shadow_err: ctx.shadow.map(|o| o.profile.max_local_over([i])),
                    });
                }
                ctx.expand(&mut s, &item);
            }
            s.in_flight -= 1;
            // Snapshot progress under the lock, emit after releasing
            // it — the sink's own gates keep this cheap.
            let prog = ctx.stream.map(|_| progress_of(&s, "bfs"));
            cond.notify_all();
            drop(s);
            if let (Some(sink), Some(p)) = (ctx.stream, prog) {
                sink.tick(&p);
            }
        }
    };
    // The borrow is load-bearing: one closure is spawned `workers`
    // times, so it must be passed by reference, not moved.
    #[allow(clippy::needless_borrows_for_generic_args)]
    match hooks.pool {
        Some(pool) => pool.scope(|sc| {
            for _ in 0..workers {
                sc.spawn(&worker_loop);
            }
        }),
        None => std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(&worker_loop);
            }
        }),
    }

    let mut s = shared.into_inner().unwrap();
    let mut decisions = std::mem::take(&mut s.decisions);
    let s = s;
    drop(bfs_span);
    if let Some(log) = hooks.events {
        log.emit(Event::PhaseFinished {
            phase: "bfs".into(),
            wall_us: phase_start.elapsed().as_micros() as u64,
        });
        log.emit(Event::PhaseStarted { phase: "union".into() });
    }
    let phase_start = Instant::now();
    let union_span = hooks.tracer.map(|t| t.span("phase:union"));
    if let Some(sink) = ctx.stream {
        sink.force(&progress_of(&s, "union"));
    }

    // Compose the final configuration: the union of every individually
    // passing unit (§2.2), each instruction at the narrowest format it
    // passed at, then test it once more.
    let (mut final_config, mut replaced) = ctx.union_config(&s.passing);
    let mut final_pass = replaced.is_empty() || exec.run(&final_config, "union") == Verdict::Pass;
    let mut tested_extra = 0usize;
    drop(union_span);
    if let Some(log) = hooks.events {
        log.emit(Event::PhaseFinished {
            phase: "union".into(),
            wall_us: phase_start.elapsed().as_micros() as u64,
        });
    }

    // Second phase (paper §3.1: "a second search phase may be useful, to
    // determine the largest subset of individually-passing instruction
    // replacements that may be composed to create a passing final
    // configuration"): greedily drop the passing unit with the fewest
    // replaced executions — sacrificing the least dynamic coverage — and
    // retest, until the composition verifies or nothing remains.
    let mut passing_units: Vec<Item> = s.passing.clone();
    if opts.second_phase && !final_pass {
        if let Some(log) = hooks.events {
            log.emit(Event::PhaseStarted { phase: "second-phase".into() });
        }
        let phase_start = Instant::now();
        let second_span = hooks.tracer.map(|t| t.span("phase:second-phase"));
        if let Some(sink) = ctx.stream {
            sink.force(&progress_of(&s, "second-phase"));
        }
        passing_units.sort_by_key(|it| match profile {
            Some(p) => p.total_of(it.insns.iter().copied()),
            None => it.insns.len() as u64,
        });
        while !final_pass && !passing_units.is_empty() {
            let dropped = passing_units.remove(0);
            for &i in &dropped.insns {
                decisions
                    .entry(i.0)
                    .or_default()
                    .push(DecisionEvent::Dropped { unit: ctx.label_of(&dropped) });
            }
            let (cfg, kept) = ctx.union_config(&passing_units);
            final_config = cfg;
            final_pass =
                kept.is_empty() || exec.run(&final_config, "second-phase") == Verdict::Pass;
            tested_extra += 1;
        }
        replaced = passing_units.iter().flat_map(|it| it.insns.iter().copied()).collect();
        drop(second_span);
        if let Some(log) = hooks.events {
            log.emit(Event::PhaseFinished {
                phase: "second-phase".into(),
                wall_us: phase_start.elapsed().as_micros() as u64,
            });
        }
    }

    let static_pct = if candidates.is_empty() {
        0.0
    } else {
        100.0 * replaced.len() as f64 / candidates.len() as f64
    };
    let dynamic_pct = match profile {
        Some(p) => {
            let total: u64 = candidates.iter().map(|&i| p.count(i)).sum();
            let rep: u64 = replaced.iter().map(|&i| p.count(i)).sum();
            if total == 0 {
                0.0
            } else {
                100.0 * rep as f64 / total as f64
            }
        }
        None => f64::NAN,
    };

    let passing = passing_units
        .iter()
        .map(|it| PassingUnit { node: it.node, label: ctx.label_of(it), insns: it.insns.len() })
        .collect();

    // Fold the evidence chains into one record per instruction. Every
    // instruction in the tree gets a record — insns the base config
    // ignores carry a single `Ignored` event so the file still explains
    // them.
    let mut decision_records = Vec::new();
    for m in &tree.modules {
        for f in &m.funcs {
            for b in &f.blocks {
                for e in &b.insns {
                    let events = if base.effective(tree, e.id) == Flag::Ignore {
                        vec![DecisionEvent::Ignored]
                    } else {
                        decisions.remove(&e.id.0).unwrap_or_default()
                    };
                    decision_records.push(DecisionRecord {
                        insn: e.id.0,
                        addr: e.addr,
                        func: f.name.clone(),
                        label: format!(
                            "{}/{}/b{}@{:#x}: {}",
                            m.name, f.name, b.id.0, e.addr, e.disasm
                        ),
                        final_format: final_config.effective(tree, e.id).token(),
                        events,
                    });
                }
            }
        }
    }

    let estats = eval.stats();
    let counters = exec.counters();
    let report = SearchReport {
        candidates: candidates.len(),
        configs_tested: s.tested + tested_extra + if replaced.is_empty() { 0 } else { 1 },
        passing,
        failed_insns: candidates.len() - replaced.len(),
        final_config,
        final_pass,
        static_pct,
        dynamic_pct,
        elapsed: start.elapsed(),
        cache_hits: estats.cache_hits,
        fuel_capped: estats.fuel_capped,
        timeouts: counters.timeouts,
        crashes: counters.crashes,
        retries: counters.retries,
        quarantined: counters.quarantined,
        pruned_by_shadow: s.pruned,
        guard_refused: s.guard_refused,
        decisions: decision_records,
    };
    if let Some(log) = hooks.events {
        log.emit(Event::SearchFinished {
            tested: report.configs_tested,
            passing: report.passing.len(),
            timeouts: report.timeouts,
            crashes: report.crashes,
            retries: report.retries,
            quarantined: report.quarantined,
            cache_hits: report.cache_hits,
            wall_us: report.elapsed.as_micros() as u64,
        });
        log.flush();
    }
    // Close the root span before the final emission so the last delta
    // carries it — the streamed snapshot then matches the post-mortem one.
    drop(search_span);
    if let Some(sink) = ctx.stream {
        // Final forced emission: the stream ends on settled state, so a
        // watcher always sees the run complete.
        sink.force(&Progress {
            phase: "done".into(),
            queue_depth: 0,
            in_flight: 0,
            done: report.configs_tested as u64,
            total_estimate: report.configs_tested as u64,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::VmEvaluator;
    use fpir::{f, fadd, fdiv, fmul, for_, i, itof, ld, set, st, v, CompileOptions, IrProgram};
    use fpvm::{Vm, VmOptions};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// An evaluator over instruction-id sets with a fixed "sensitive"
    /// subset: a config passes iff it replaces no sensitive instruction.
    struct SetEval {
        tree: StructureTreeBox,
        sensitive: Vec<InsnId>,
        calls: AtomicUsize,
    }

    // Helper owning the program so tree references stay alive.
    struct StructureTreeBox {
        _prog: fpvm::Program,
        tree: StructureTree,
    }

    impl Evaluator for SetEval {
        fn evaluate(&self, cfg: &Config) -> bool {
            self.calls.fetch_add(1, Ordering::Relaxed);
            !self.sensitive.iter().any(|&i| cfg.effective(&self.tree.tree, i) == Flag::Single)
        }
    }

    /// A program with two functions of several candidates each.
    fn make_prog(n_funcs: usize, insns_per_func: usize) -> StructureTreeBox {
        use fpvm::isa::*;
        let mut p = fpvm::Program::new(1 << 12);
        let m = p.add_module("m");
        for k in 0..n_funcs {
            let f = p.add_function(m, format!("f{k}"));
            let b = p.add_block(f);
            p.funcs[f.0 as usize].entry = b;
            if k == 0 {
                p.entry = f;
            }
            for _ in 0..insns_per_func {
                p.push_insn(
                    b,
                    InstKind::FpArith {
                        op: FpAluOp::Add,
                        prec: Prec::Double,
                        packed: false,
                        dst: Xmm(0),
                        src: RM::Reg(Xmm(1)),
                    },
                );
            }
            p.block_mut(b).term = Terminator::Ret;
        }
        let tree = StructureTree::build(&p);
        StructureTreeBox { _prog: p, tree }
    }

    fn opts_serial() -> SearchOptions {
        SearchOptions { threads: 1, prioritize: false, ..Default::default() }
    }

    #[test]
    fn fully_replaceable_program_passes_at_module_level() {
        let tb = make_prog(3, 4);
        let eval = SetEval { tree: make_prog(3, 4), sensitive: vec![], calls: AtomicUsize::new(0) };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts_serial());
        assert_eq!(r.candidates, 12);
        // one module test + one final test
        assert_eq!(r.configs_tested, 2);
        assert!(r.final_pass);
        assert_eq!(r.static_pct, 100.0);
        assert_eq!(r.failed_insns, 0);
    }

    #[test]
    fn single_sensitive_insn_is_isolated() {
        let tb = make_prog(2, 4);
        let sensitive = vec![tb.tree.all_insns()[5]];
        let eval = SetEval {
            tree: make_prog(2, 4),
            sensitive: sensitive.clone(),
            calls: AtomicUsize::new(0),
        };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts_serial());
        assert_eq!(r.failed_insns, 1);
        assert!((r.static_pct - 7.0 / 8.0 * 100.0).abs() < 1e-9);
        // the sensitive insn stays double in the final config
        assert_eq!(r.final_config.effective(&tb.tree, sensitive[0]), Flag::Double);
        assert!(r.final_pass);
    }

    #[test]
    fn search_prunes_relative_to_exhaustive() {
        // With all instructions replaceable, far fewer configs than
        // candidates are tested (the paper's pruning claim).
        let tb = make_prog(4, 8);
        let eval = SetEval { tree: make_prog(4, 8), sensitive: vec![], calls: AtomicUsize::new(0) };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts_serial());
        assert!(r.configs_tested < r.candidates);
    }

    #[test]
    fn binary_split_reduces_tests_with_sparse_failures() {
        let tb = make_prog(1, 32);
        let sensitive = vec![tb.tree.all_insns()[17]];
        let mk = || SetEval {
            tree: make_prog(1, 32),
            sensitive: sensitive.clone(),
            calls: AtomicUsize::new(0),
        };
        let with_split = search(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { binary_split: true, ..opts_serial() },
        );
        let without = search(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { binary_split: false, ..opts_serial() },
        );
        assert_eq!(with_split.failed_insns, 1);
        assert_eq!(without.failed_insns, 1);
        assert!(
            with_split.configs_tested < without.configs_tested,
            "split {} !< flat {}",
            with_split.configs_tested,
            without.configs_tested
        );
    }

    #[test]
    fn stop_depth_function_gives_coarse_results() {
        let tb = make_prog(2, 4);
        // one sensitive insn in f1: at Function granularity the whole f1
        // stays double.
        let sensitive = vec![tb.tree.all_insns()[6]];
        let eval = SetEval { tree: make_prog(2, 4), sensitive, calls: AtomicUsize::new(0) };
        let r = search(
            &tb.tree,
            &Config::new(),
            None,
            &eval,
            &SearchOptions { stop_depth: StopDepth::Function, ..opts_serial() },
        );
        assert_eq!(r.failed_insns, 4); // all of f1
        assert_eq!(r.static_pct, 50.0);
    }

    #[test]
    fn ignored_insns_are_not_candidates() {
        let tb = make_prog(2, 4);
        let mut base = Config::new();
        base.set_func(tb.tree.modules[0].funcs[1].id, Flag::Ignore);
        let eval = SetEval { tree: make_prog(2, 4), sensitive: vec![], calls: AtomicUsize::new(0) };
        let r = search(&tb.tree, &base, None, &eval, &opts_serial());
        assert_eq!(r.candidates, 4);
        assert_eq!(r.static_pct, 100.0);
        // ignored func stays ignored in the final config
        for e in &tb.tree.modules[0].funcs[1].blocks[0].insns {
            assert_eq!(r.final_config.effective(&tb.tree, e.id), Flag::Ignore);
        }
    }

    #[test]
    fn max_tests_bounds_work() {
        let tb = make_prog(4, 16);
        let sensitive = tb.tree.all_insns(); // nothing passes: worst case
        let eval = SetEval { tree: make_prog(4, 16), sensitive, calls: AtomicUsize::new(0) };
        let r = search(
            &tb.tree,
            &Config::new(),
            None,
            &eval,
            &SearchOptions { max_tests: Some(10), ..opts_serial() },
        );
        assert!(r.configs_tested <= 10);
    }

    #[test]
    fn parallel_search_matches_serial_outcome() {
        let tb = make_prog(3, 8);
        let sensitive = vec![tb.tree.all_insns()[3], tb.tree.all_insns()[12]];
        let mk = || SetEval {
            tree: make_prog(3, 8),
            sensitive: sensitive.clone(),
            calls: AtomicUsize::new(0),
        };
        let serial = search(&tb.tree, &Config::new(), None, &mk(), &opts_serial());
        let par = search(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { threads: 8, prioritize: false, ..Default::default() },
        );
        // replaced sets must be identical even if test counts differ
        assert_eq!(
            serial.final_config.replaced_insns(&tb.tree),
            par.final_config.replaced_insns(&tb.tree)
        );
        assert_eq!(serial.failed_insns, par.failed_insns);
    }

    #[test]
    fn pooled_search_matches_serial_outcome() {
        // Running the worker loops on a shared WorkerPool (the daemon
        // configuration) must produce the same replaced set as the
        // classic per-search scoped threads.
        let tb = make_prog(3, 8);
        let sensitive = vec![tb.tree.all_insns()[3], tb.tree.all_insns()[12]];
        let mk = || SetEval {
            tree: make_prog(3, 8),
            sensitive: sensitive.clone(),
            calls: AtomicUsize::new(0),
        };
        let serial = search(&tb.tree, &Config::new(), None, &mk(), &opts_serial());
        let pool = WorkerPool::new(4);
        let hooks = SearchHooks { pool: Some(&pool), ..Default::default() };
        let pooled = search_observed(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { threads: 4, prioritize: false, batch: 3, ..Default::default() },
            &hooks,
        );
        assert_eq!(
            serial.final_config.replaced_insns(&tb.tree),
            pooled.final_config.replaced_insns(&tb.tree)
        );
        assert_eq!(serial.failed_insns, pooled.failed_insns);
        assert!(pool.dispatched() >= 4, "worker loops should have run on the pool");
    }

    #[test]
    fn batched_dispatch_tests_the_same_configs() {
        // Batching only changes pop order, never the expansion tree: a
        // serial batched run tests exactly as many configs as the
        // classic one-at-a-time run.
        let tb = make_prog(3, 8);
        let sensitive = vec![tb.tree.all_insns()[5]];
        let mk = || SetEval {
            tree: make_prog(3, 8),
            sensitive: sensitive.clone(),
            calls: AtomicUsize::new(0),
        };
        let classic = search(&tb.tree, &Config::new(), None, &mk(), &opts_serial());
        let batched = search(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { batch: 4, ..opts_serial() },
        );
        assert_eq!(classic.configs_tested, batched.configs_tested);
        assert_eq!(
            classic.final_config.replaced_insns(&tb.tree),
            batched.final_config.replaced_insns(&tb.tree)
        );
    }

    #[test]
    fn prioritization_uses_profile_counts() {
        let tb = make_prog(2, 4);
        let ids = tb.tree.all_insns();
        let mut prof = Profile::new(64);
        // make f1's instructions hot
        for _ in 0..100 {
            for &i in &ids[4..8] {
                prof.bump(i);
            }
        }
        for &i in &ids[..4] {
            prof.bump(i);
        }
        let eval = SetEval { tree: make_prog(2, 4), sensitive: vec![], calls: AtomicUsize::new(0) };
        let r = search(
            &tb.tree,
            &Config::new(),
            Some(&prof),
            &eval,
            &SearchOptions { prioritize: true, threads: 1, ..Default::default() },
        );
        assert!(r.final_pass);
        assert!((r.dynamic_pct - 100.0).abs() < 1e-9);
    }

    /// An evaluator with an interaction failure: every unit passes alone,
    /// but replacing the first and last instructions *together* fails.
    struct InteractionEval {
        tree: StructureTreeBox,
        pair: (InsnId, InsnId),
    }

    impl Evaluator for InteractionEval {
        fn evaluate(&self, cfg: &Config) -> bool {
            let a = cfg.effective(&self.tree.tree, self.pair.0) == Flag::Single;
            let b = cfg.effective(&self.tree.tree, self.pair.1) == Flag::Single;
            !(a && b)
        }
    }

    #[test]
    fn second_phase_composes_a_passing_subset() {
        let tb = make_prog(2, 4);
        let ids = tb.tree.all_insns();
        let pair = (ids[0], ids[7]);
        let mk = || InteractionEval { tree: make_prog(2, 4), pair };
        // without the second phase the union fails (paper §3.1 observation)
        let r1 = search(&tb.tree, &Config::new(), None, &mk(), &opts_serial());
        assert!(!r1.final_pass, "interaction failure should break the union");
        // with it, a passing subset is composed
        let r2 = search(
            &tb.tree,
            &Config::new(),
            None,
            &mk(),
            &SearchOptions { second_phase: true, ..opts_serial() },
        );
        assert!(r2.final_pass, "second phase should find a composable subset");
        assert!(r2.static_pct > 0.0, "subset should not be empty");
        assert!(r2.static_pct < 100.0);
        assert!(r2.configs_tested > r1.configs_tested);
    }

    #[test]
    fn streamed_search_emits_consistent_live_log() {
        use mptrace::stream::{LiveLog, StreamSink};
        let tb = make_prog(3, 8);
        let sensitive = vec![tb.tree.all_insns()[3]];
        let eval = SetEval { tree: make_prog(3, 8), sensitive, calls: AtomicUsize::new(0) };
        let tracer = Tracer::new();
        let sink = StreamSink::in_memory(&tracer);
        let hooks = SearchHooks {
            bench: "unit".into(),
            tracer: Some(&tracer),
            stream: Some(&sink),
            ..Default::default()
        };
        let report = search_observed(
            &tb.tree,
            &Config::new(),
            None,
            &eval,
            &SearchOptions { threads: 2, prioritize: false, ..Default::default() },
            &hooks,
        );
        let log = LiveLog::parse_tolerant(&sink.contents()).unwrap();
        assert!(log.warning.is_none(), "{:?}", log.warning);
        // Deltas fold to exactly what the tracer holds at the end.
        assert_eq!(log.final_snapshot().to_jsonl(), tracer.snapshot().to_jsonl());
        // Progress walked through bfs to done, and the final record
        // reflects the report's totals with a drained queue.
        let phases: Vec<&str> = log.progress.iter().map(|p| p.progress.phase.as_str()).collect();
        assert_eq!(phases.first(), Some(&"bfs"));
        assert_eq!(phases.last(), Some(&"done"));
        assert!(phases.contains(&"union"), "{phases:?}");
        let last = log.latest_progress().unwrap();
        assert_eq!(last.progress.queue_depth, 0);
        assert_eq!(last.progress.in_flight, 0);
        assert_eq!(last.progress.done, report.configs_tested as u64);
        // Verdict counts mirror the executor's tracer counters.
        let total: u64 = last.verdicts.values().sum();
        assert!(total >= report.configs_tested as u64, "{:?}", last.verdicts);
        // Sequence numbers strictly increase across all records.
        let mut seqs: Vec<u64> =
            log.deltas.iter().map(|d| d.seq).chain(log.progress.iter().map(|p| p.seq)).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s.dedup();
            s
        };
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs, sorted);
    }

    /// An evaluator over mantissa widths: a config passes iff every
    /// instruction's effective format keeps at least its required
    /// mantissa bits (unreplaced doubles count as 52).
    struct MantissaEval {
        tree: StructureTreeBox,
        min_mant: std::collections::HashMap<u32, u32>,
    }

    impl Evaluator for MantissaEval {
        fn evaluate(&self, cfg: &Config) -> bool {
            self.tree.tree.all_insns().into_iter().all(|i| {
                let mant = cfg.effective(&self.tree.tree, i).mantissa_bits().unwrap_or(52);
                mant >= self.min_mant.get(&i.0).copied().unwrap_or(0)
            })
        }
    }

    #[test]
    fn lattice_descends_each_unit_to_its_narrowest_passing_format() {
        // f0 tolerates bf16 (7 mantissa bits), f1 only half, f2 only
        // single: with the lattice [Single, Half, Bf16] each function
        // must settle exactly there.
        let tb = make_prog(3, 4);
        let ids = tb.tree.all_insns();
        let mut min_mant = std::collections::HashMap::new();
        for &i in &ids[..4] {
            min_mant.insert(i.0, 7);
        }
        for &i in &ids[4..8] {
            min_mant.insert(i.0, 10);
        }
        for &i in &ids[8..] {
            min_mant.insert(i.0, 23);
        }
        let eval = MantissaEval { tree: make_prog(3, 4), min_mant };
        let opts =
            SearchOptions { lattice: vec![Flag::Single, Flag::Half, Flag::Bf16], ..opts_serial() };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts);
        assert!(r.final_pass);
        assert_eq!(r.static_pct, 100.0);
        for &i in &ids[..4] {
            assert_eq!(r.final_config.effective(&tb.tree, i), Flag::Bf16);
        }
        for &i in &ids[4..8] {
            assert_eq!(r.final_config.effective(&tb.tree, i), Flag::Half);
        }
        for &i in &ids[8..] {
            assert_eq!(r.final_config.effective(&tb.tree, i), Flag::Single);
        }
        // the precision dimension of the report reflects the same split
        let breakdown = r.format_breakdown(&tb.tree);
        assert_eq!(
            breakdown,
            vec![("s".to_string(), 4), ("h".to_string(), 4), ("b".to_string(), 4)]
        );
        // decision provenance: one record per insn, and every replaced
        // insn carries a passed-at-level event for its final format.
        assert_eq!(r.decisions.len(), ids.len());
        for rec in &r.decisions {
            assert_ne!(rec.final_format, "d", "everything replaced in this scenario");
            assert!(
                rec.events.iter().any(|e| matches!(
                    e,
                    crate::decisions::DecisionEvent::Passed { format, .. }
                        if *format == rec.final_format
                )),
                "insn {} final {} lacks a matching passed event: {:?}",
                rec.insn,
                rec.final_format,
                rec.events
            );
        }
    }

    #[test]
    fn lattice_failure_demotes_to_the_last_passing_level() {
        // Nothing tolerates half: a [Single, Half] lattice must land
        // everything at Single and still pass, costing extra tests for
        // the refused descents.
        let tb = make_prog(2, 4);
        let ids = tb.tree.all_insns();
        let min_mant = ids.iter().map(|i| (i.0, 23)).collect();
        let eval = MantissaEval { tree: make_prog(2, 4), min_mant };
        let classic = search(
            &tb.tree,
            &Config::new(),
            None,
            &MantissaEval {
                tree: make_prog(2, 4),
                min_mant: ids.iter().map(|i| (i.0, 23)).collect(),
            },
            &opts_serial(),
        );
        let opts = SearchOptions { lattice: vec![Flag::Single, Flag::Half], ..opts_serial() };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts);
        assert!(r.final_pass);
        for &i in &ids {
            assert_eq!(r.final_config.effective(&tb.tree, i), Flag::Single);
        }
        assert_eq!(
            classic.final_config.replaced_insns(&tb.tree),
            r.final_config.replaced_insns(&tb.tree)
        );
        assert!(r.configs_tested > classic.configs_tested, "descent attempts must be tested");
    }

    #[test]
    fn empty_lattice_is_normalized_to_classic_single() {
        let tb = make_prog(2, 4);
        let eval = SetEval { tree: make_prog(2, 4), sensitive: vec![], calls: AtomicUsize::new(0) };
        let opts = SearchOptions { lattice: vec![], ..opts_serial() };
        let r = search(&tb.tree, &Config::new(), None, &eval, &opts);
        assert!(r.final_pass);
        assert_eq!(r.configs_tested, 2); // one module test + one union test
        for i in tb.tree.all_insns() {
            assert_eq!(r.final_config.effective(&tb.tree, i), Flag::Single);
        }
    }

    #[test]
    fn range_guards_block_unsurvivable_demotions() {
        use mpshadow::{InsnSensitivity, SensitivityProfile};
        // Every instruction verifies at any precision (SetEval with no
        // sensitive set), but instruction 0's observed magnitudes exceed
        // half's finite range — the guard must keep it at Single while
        // its sibling descends.
        let tb = make_prog(1, 2);
        let ids = tb.tree.all_insns();
        let mut profile = SensitivityProfile::default();
        profile.insns.insert(
            ids[0].0,
            InsnSensitivity {
                count: 10,
                max_abs: 1.0e6, // > 65504, half's max finite
                min_abs: 1.0,
                ..Default::default()
            },
        );
        let eval = SetEval { tree: make_prog(1, 2), sensitive: vec![], calls: AtomicUsize::new(0) };
        let hooks = SearchHooks {
            shadow: Some(ShadowOracle {
                profile: &profile,
                prioritize: false,
                prune_threshold: None,
            }),
            ..Default::default()
        };
        let opts = SearchOptions { lattice: vec![Flag::Single, Flag::Half], ..opts_serial() };
        let r = search_observed(&tb.tree, &Config::new(), None, &eval, &opts, &hooks);
        assert!(r.final_pass);
        assert_eq!(r.final_config.effective(&tb.tree, ids[0]), Flag::Single);
        assert_eq!(r.final_config.effective(&tb.tree, ids[1]), Flag::Half);
        assert!(r.guard_refused > 0, "the blocked descent must be counted");
        assert!(!r.guard_note("m").is_empty());
        // The refused insn's record carries the observed range evidence.
        let rec = r.decisions.iter().find(|d| d.insn == ids[0].0).unwrap();
        let guard = rec
            .events
            .iter()
            .find_map(|e| match e {
                crate::decisions::DecisionEvent::GuardRefused {
                    format, max_abs, bound, ..
                } => Some((format.clone(), *max_abs, *bound)),
                _ => None,
            })
            .expect("guard refusal must leave evidence");
        assert_eq!(guard.0, "half");
        assert_eq!(guard.1, 1.0e6);
        assert!(guard.1 > guard.2, "observed max must exceed the format bound");
    }

    #[test]
    fn end_to_end_with_vm_evaluator() {
        // A real program: two accumulations, one needing double precision
        // (verification tolerance set so f32 fails for it).
        let mut ir = IrProgram::new("demo");
        let xs = ir.array_f64_init("xs", (0..64).map(|k| 1.0 + (k as f64) * 1e-9).collect());
        let out = ir.array_f64("out", 2);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let a = ir.local_f(fr);
            let b = ir.local_f(fr);
            let k = ir.local_i(fr);
            vec![
                set(a, f(0.0)),
                set(b, f(0.0)),
                // coarse: sum of xs (fine in f32 at this tolerance)
                for_(k, i(0), i(64), vec![set(a, fadd(v(a), ld(xs, v(k))))]),
                // delicate: accumulate tiny differences (dies in f32)
                for_(
                    k,
                    i(0),
                    i(64),
                    vec![set(
                        b,
                        fadd(v(b), fmul(fdiv(fadd(ld(xs, v(k)), f(-1.0)), f(1e-9)), itof(v(k)))),
                    )],
                ),
                st(out, i(0), v(a)),
                st(out, i(1), v(b)),
            ]
        });
        ir.set_entry(main);
        let prog = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&prog);

        // reference outputs from the original program
        let mut vm = Vm::new(&prog, VmOptions::default());
        assert!(vm.run().ok());
        let sym = prog.symbol("out").unwrap();
        let want = vm.mem.read_f64_slice(sym, 2).unwrap();

        let eval = VmEvaluator::new(&prog, &tree, move |vm: &Vm<'_>| {
            let got = vm.mem.read_f64_slice(sym, 2).unwrap();
            let rel = |a: f64, b: f64| ((a - b) / b.max(1.0)).abs();
            rel(got[0], want[0]) < 1e-6 && rel(got[1], want[1]) < 1e-6
        });

        let prof = Vm::run_program(&prog, VmOptions { profile: true, ..Default::default() })
            .profile
            .unwrap();
        let r = search(
            &tree,
            &Config::new(),
            Some(&prof),
            &eval,
            &SearchOptions { threads: 2, ..Default::default() },
        );
        // some instructions must be replaceable, some not
        assert!(r.static_pct > 0.0, "nothing replaced");
        assert!(r.static_pct < 100.0, "everything replaced — tolerance too loose");
        assert!(r.configs_tested > 1);
    }
}
