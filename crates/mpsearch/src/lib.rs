//! # mpsearch — the automatic breadth-first precision search
//!
//! Implements the paper's §2.2: a work-queue search through the program
//! structure (modules → functions → basic blocks → instructions) that
//! finds the coarsest granularity at which each part of the program can be
//! replaced by single precision while still passing an
//! application-defined verification routine.
//!
//! Both of the paper's optimizations are implemented and individually
//! switchable (for the ablation benches):
//!
//! * **binary splitting** — a failed aggregate with many children is split
//!   into two half-sized intermediate partitions instead of immediately
//!   enqueueing every child;
//! * **profile prioritization** — configurations replacing the most
//!   frequently executed instructions are tested first.
//!
//! Evaluation is parallel: the queue is drained by a pool of worker
//! threads ("this process is highly parallelizable", §2.2).
//!
//! Evaluations run through the fault-tolerant [`executor`]: per-run
//! fuel/wall-clock limits, panic isolation, bounded retry with backoff,
//! and quarantine of repeatedly wedged configurations, with every
//! transition optionally mirrored to a JSONL [`events`] log and
//! deterministic fault injection via [`FaultPlan`] for testing the
//! policy itself.

#![warn(missing_docs)]

pub mod decisions;
pub mod evaluator;
pub mod events;
pub mod executor;
pub mod pool;
pub mod report;
pub mod search;

pub use decisions::{DecisionEvent, DecisionRecord};
pub use evaluator::{CachedEvaluator, EvalOutcome, EvalStats, Evaluator, RunControl, VmEvaluator};
pub use events::{Event, EventLog, Record};
pub use executor::{ExecCounters, ExecPolicy, Executor, FaultPlan, Verdict};
pub use pool::{PoolScope, WorkerPool};
pub use report::{PassingUnit, SearchReport};
pub use search::{search, search_observed, SearchHooks, SearchOptions, ShadowOracle, StopDepth};
