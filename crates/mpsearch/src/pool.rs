//! A reusable work-stealing worker pool.
//!
//! The search used to spawn a fresh set of scoped threads per run —
//! fine for one CLI invocation, wasteful for a long-running daemon
//! evaluating many jobs concurrently. A [`WorkerPool`] is created once
//! and shared: each search submits its worker loops as scoped tasks,
//! so N concurrent jobs share one fixed set of OS threads instead of
//! spawning `N × threads` of their own.
//!
//! Scheduling is work-stealing: every worker owns a local deque, a
//! global injector queue receives submissions, and an idle worker
//! first drains its own deque (FIFO), then the injector, then steals
//! from the *back* of the longest sibling deque. [`PoolScope::spawn_batch`]
//! places a whole batch round-robin across the local deques in one
//! lock acquisition — the batched dispatch path the daemon uses when
//! fanning a job's evaluation loops out.
//!
//! All deques sit behind one mutex: tasks here are millisecond-scale
//! configuration evaluations, so the queue transfer cost is noise. The
//! *policy* (local-first, steal-from-longest) is what matters — it
//! keeps one job's burst from starving the others.
//!
//! Scoped tasks may borrow from the submitting stack frame:
//! [`WorkerPool::scope`] does not return until every task spawned in
//! it has finished, which is what makes the lifetime-erasing
//! transmute in [`PoolScope::spawn`] sound.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// Global submission queue.
    injector: VecDeque<Task>,
    /// Per-worker local deques (batched dispatch lands here).
    locals: Vec<VecDeque<Task>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown begins.
    available: Condvar,
    /// Tasks taken from a sibling's deque (observability only).
    stolen: AtomicUsize,
    /// Tasks that entered the pool, ever.
    dispatched: AtomicUsize,
    /// Round-robin cursor for batch placement.
    next_local: AtomicUsize,
}

fn relock(m: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PoolShared {
    /// Take the next task for worker `me`: local deque first, then the
    /// injector, then steal from the back of the longest sibling deque.
    /// Blocks until a task is available or the pool shuts down.
    fn next_task(&self, me: usize) -> Option<Task> {
        let mut st = relock(&self.state);
        loop {
            if let Some(t) = st.locals[me].pop_front() {
                return Some(t);
            }
            if let Some(t) = st.injector.pop_front() {
                return Some(t);
            }
            let victim = (0..st.locals.len())
                .filter(|&i| i != me)
                .max_by_key(|&i| st.locals[i].len())
                .filter(|&i| !st.locals[i].is_empty());
            if let Some(v) = victim {
                let t = st.locals[v].pop_back();
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return t;
            }
            if st.shutdown {
                return None;
            }
            st = self.available.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A fixed set of worker threads executing submitted tasks with
/// work-stealing scheduling. See the module docs for the policy.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            available: Condvar::new(),
            stolen: AtomicUsize::new(0),
            dispatched: AtomicUsize::new(0),
            next_local: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{me}"))
                    .spawn(move || {
                        while let Some(task) = shared.next_task(me) {
                            // Task wrappers installed by `scope` catch
                            // panics themselves; a raw task that panics
                            // must not take the worker thread down.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Tasks currently queued (injector + local deques), not counting
    /// tasks already running.
    pub fn queued(&self) -> usize {
        let st = relock(&self.shared.state);
        st.injector.len() + st.locals.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Tasks a worker took from a sibling's deque since pool creation.
    pub fn stolen(&self) -> usize {
        self.shared.stolen.load(Ordering::Relaxed)
    }

    /// Tasks ever submitted to the pool.
    pub fn dispatched(&self) -> usize {
        self.shared.dispatched.load(Ordering::Relaxed)
    }

    /// Submit one fire-and-forget `'static` task via the injector.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
        relock(&self.shared.state).injector.push_back(Box::new(task));
        self.shared.available.notify_one();
    }

    /// Run `f` with a [`PoolScope`] that can spawn tasks borrowing from
    /// the current stack frame. Returns only after every spawned task
    /// has finished; a panicking task makes `scope` panic after the
    /// others complete (mirroring [`std::thread::scope`]).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let sync = Arc::new(ScopeSync {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let scope = PoolScope {
            shared: Arc::clone(&self.shared),
            sync: Arc::clone(&sync),
            _env: PhantomData,
        };
        // The guard waits for pending tasks even if `f` itself panics:
        // scoped borrows must not be released while tasks still run.
        let guard = WaitForTasks(&sync);
        let r = f(&scope);
        drop(guard);
        if sync.panicked.load(Ordering::Relaxed) {
            panic!("a task spawned in WorkerPool::scope panicked");
        }
        r
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        relock(&self.shared.state).shutdown = true;
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

struct WaitForTasks<'a>(&'a ScopeSync);

impl Drop for WaitForTasks<'_> {
    fn drop(&mut self) {
        let mut p = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
        while *p > 0 {
            p = self.0.done.wait(p).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Handle for spawning borrow-carrying tasks inside
/// [`WorkerPool::scope`]; see there for the completion guarantee.
pub struct PoolScope<'scope, 'env: 'scope> {
    shared: Arc<PoolShared>,
    sync: Arc<ScopeSync>,
    _env: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    fn wrap(&self, f: impl FnOnce() + Send + 'env) -> Task {
        *self.sync.pending.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        let sync = Arc::clone(&self.sync);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                sync.panicked.store(true, Ordering::Relaxed);
            }
            let mut p = sync.pending.lock().unwrap_or_else(|e| e.into_inner());
            *p -= 1;
            if *p == 0 {
                sync.done.notify_all();
            }
        });
        // SAFETY: the only lifetime in the type is the closure's borrow
        // of `'env` data. `WorkerPool::scope` (via `WaitForTasks`) does
        // not return until `pending` drops to zero, i.e. until this
        // task has run to completion, so the borrow outlives the task.
        unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) }
    }

    /// Spawn one task via the global injector.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        let task = self.wrap(f);
        self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
        relock(&self.shared.state).injector.push_back(task);
        self.shared.available.notify_one();
    }

    /// Spawn a whole batch in one lock acquisition, placed round-robin
    /// across the workers' local deques (batched dispatch).
    pub fn spawn_batch<F>(&self, tasks: impl IntoIterator<Item = F>)
    where
        F: FnOnce() + Send + 'env,
    {
        let tasks: Vec<Task> = tasks.into_iter().map(|f| self.wrap(f)).collect();
        if tasks.is_empty() {
            return;
        }
        self.shared.dispatched.fetch_add(tasks.len(), Ordering::Relaxed);
        let mut st = relock(&self.shared.state);
        let n = st.locals.len();
        for task in tasks {
            let slot = self.shared.next_local.fetch_add(1, Ordering::Relaxed) % n;
            st.locals[slot].push_back(task);
        }
        drop(st);
        self.shared.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_tasks_borrow_and_complete() {
        let pool = WorkerPool::new(4);
        let sum = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        pool.scope(|s| {
            s.spawn_batch(data.iter().map(|&v| {
                let sum = &sum;
                move || {
                    sum.fetch_add(v, Ordering::Relaxed);
                }
            }));
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(pool.dispatched(), 100);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn uneven_batches_get_stolen() {
        // One long-running task pins a worker; the rest of its deque
        // must be stolen by the idle workers.
        let pool = WorkerPool::new(4);
        let done = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn_batch((0..64).map(|_| {
                let done = &done;
                move || {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }));
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_scopes_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    pool.scope(|s| {
                        for _ in 0..8 {
                            let total = &total;
                            s.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panicking_task_propagates_at_scope_end() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {});
            });
        }));
        assert!(r.is_err());
        // The pool survives and keeps executing work.
        let ok = AtomicBool::new(false);
        pool.scope(|s| {
            s.spawn(|| ok.store(true, Ordering::Relaxed));
        });
        assert!(ok.load(Ordering::Relaxed));
    }

    #[test]
    fn fire_and_forget_submit_runs() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(move || tx.send(42u32).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(), 42);
    }
}
