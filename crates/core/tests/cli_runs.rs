//! End-to-end tests of the run-registry workflow through the real
//! `craft` binary: a traced analysis must leave a complete run
//! directory behind, `compare` must be deterministic and clean against
//! itself, and an injected per-instruction cycle regression must be
//! attributed to the right function and fail the gate.

use mptrace::snapshot::TraceSnapshot;
use mptrace::stream::LiveLog;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn craft(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_craft")).args(args).output().expect("craft binary should run")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// A scratch directory under the target tmpdir, wiped on entry so
/// repeated test runs start clean.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a traced class-S analysis into `<root>/run` with the registry at
/// `<root>/registry`, returning the run directory.
fn traced_run(root: &Path) -> PathBuf {
    let run = root.join("run");
    let reg = root.join("registry");
    let out = craft(&[
        "analyze",
        "vecops",
        "s",
        &format!("--trace={}", run.display()),
        &format!("--registry={}", reg.display()),
    ]);
    assert!(out.status.success(), "analyze failed: {}", String::from_utf8_lossy(&out.stderr));
    run
}

#[test]
fn traced_run_streams_and_registers() {
    let root = scratch("cli-traced-run");
    let run = traced_run(&root);

    for f in ["events.jsonl", "trace.jsonl", "live.jsonl", "manifest.json"] {
        assert!(run.join(f).is_file(), "run directory missing {f}");
    }

    // The live stream must parse cleanly and end in a drained `done`
    // progress record consistent with the manifest's summary.
    let log = LiveLog::from_file(run.join("live.jsonl")).unwrap();
    assert!(log.warning.is_none(), "unexpected warning: {:?}", log.warning);
    let last = log.latest_progress().expect("live stream has progress records");
    assert_eq!(last.progress.phase, "done");
    assert_eq!(last.progress.queue_depth, 0);
    assert_eq!(last.progress.in_flight, 0);

    let manifest = mptrace::registry::RunManifest::load(&run).unwrap().expect("manifest exists");
    assert_eq!(manifest.bench, "vecops");
    assert_eq!(manifest.class, "s");
    assert_eq!(manifest.config_hash.len(), 16);
    let summary = manifest.summary.expect("manifest carries a search summary");
    assert!(summary.final_pass);
    assert_eq!(last.progress.done, summary.tested as u64);

    // The registry index lists the run, and `craft runs` renders it.
    let reg_arg = format!("--registry={}", root.join("registry").display());
    let runs = craft(&["runs", &reg_arg]);
    assert!(runs.status.success());
    assert!(stdout(&runs).contains(&manifest.id), "craft runs omits the recorded id");

    // `craft watch` replays the finished stream (registry `latest`
    // resolution and the explicit path must agree).
    for target in [run.display().to_string(), "latest".into()] {
        let watch = craft(&["watch", &target, &reg_arg]);
        assert!(watch.status.success(), "watch {target} failed");
        let text = stdout(&watch);
        assert!(text.contains("phase timeline"), "watch output missing timeline:\n{text}");
        assert!(text.contains("done"), "watch output missing done phase:\n{text}");
    }
}

#[test]
fn report_degrades_gracefully_on_partial_run_dirs() {
    let root = scratch("cli-partial-report");
    let run = traced_run(&root);

    // Full directory reports everything.
    let full = craft(&["report", &run.display().to_string()]);
    assert!(full.status.success());
    assert!(stdout(&full).contains("event log"));
    assert!(stdout(&full).contains("trace"));

    // Without events.jsonl the report still renders manifest + trace
    // and names the missing artifact instead of failing.
    std::fs::remove_file(run.join("events.jsonl")).unwrap();
    let partial = craft(&["report", &run.display().to_string()]);
    assert!(partial.status.success(), "partial run dir must still report");
    let text = stdout(&partial);
    assert!(text.contains("summary"), "manifest summary missing:\n{text}");
    assert!(text.contains("absent from run directory"), "absence note missing:\n{text}");
    assert!(text.contains("events.jsonl"), "missing artifact not named:\n{text}");

    // Without trace.jsonl the live stream is folded in its place.
    std::fs::remove_file(run.join("trace.jsonl")).unwrap();
    let folded = craft(&["report", &run.display().to_string()]);
    assert!(folded.status.success(), "live-only run dir must still report");
    assert!(stdout(&folded).contains("folded"), "live fallback note missing");

    // An empty directory has nothing to report: runtime error, exit 1.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let nothing = craft(&["report", &empty.display().to_string()]);
    assert_eq!(nothing.status.code(), Some(1));
}

#[test]
fn compare_self_is_clean_and_deterministic() {
    let root = scratch("cli-compare-self");
    let run = traced_run(&root);
    let run = run.display().to_string();

    let first = craft(&["compare", &run, &run]);
    let second = craft(&["compare", &run, &run]);
    assert!(first.status.success(), "self-compare must exit 0");
    assert_eq!(stdout(&first), stdout(&second), "self-compare must be byte-identical");
    let text = stdout(&first);
    assert!(text.contains("no regressions"), "unexpected self-compare verdict:\n{text}");
    assert!(text.contains("counters (0 changed)"), "self-compare found counter drift:\n{text}");
}

#[test]
fn injected_cycle_regression_is_attributed_and_gates() {
    let root = scratch("cli-compare-inject");
    let run_a = traced_run(&root);

    // Clone the run and inject +50k interpreter cycles into two hot
    // instructions of vecops' main function.
    let run_b = root.join("run-b");
    std::fs::create_dir_all(&run_b).unwrap();
    let text = std::fs::read_to_string(run_a.join("trace.jsonl")).unwrap();
    let mut snap = TraceSnapshot::parse(&text).unwrap();
    let mut bumped = 0;
    for h in &mut snap.hot {
        if h.label.contains("/main/") && bumped < 2 {
            h.cycles += 50_000;
            bumped += 1;
        }
    }
    assert_eq!(bumped, 2, "expected at least two labelled hot insns in vecops/main");
    std::fs::write(run_b.join("trace.jsonl"), snap.to_jsonl()).unwrap();

    let a = run_a.display().to_string();
    let b = run_b.display().to_string();
    let out = craft(&["compare", &a, &b]);
    assert_eq!(out.status.code(), Some(1), "injected regression must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("function vecops.s/main: +100000 cycles"),
        "delta not attributed to vecops.s/main:\n{text}"
    );
    assert!(text.contains("2 insn(s) affected"), "wrong insn count:\n{text}");
    assert!(text.contains("REGRESSION"), "verdict section missing regression:\n{text}");

    // --warn-only reports the same text but exits 0, and the reverse
    // direction (B -> A) is an improvement, not a regression.
    let warn = craft(&["compare", &a, &b, "--warn-only"]);
    assert!(warn.status.success(), "--warn-only must not gate");
    let reverse = craft(&["compare", &b, &a]);
    assert!(reverse.status.success(), "an improvement must pass the gate");
}
