//! # mixedprec — the end-to-end mixed-precision analysis system
//!
//! The paper's Fig. 2 pipeline as one API: given an *original program*, a
//! *data set*, and a *verification routine* (packaged together as a
//! [`workloads::Workload`]), the system
//!
//! 1. generates the initial configuration (structure tree + `ignore`
//!    flags for constructs like FP-trick RNGs),
//! 2. profiles the original binary,
//! 3. runs the automatic breadth-first search over mixed-precision
//!    configurations (instrument → run → verify, in parallel),
//! 4. composes and tests the final union configuration, and
//! 5. reports a recommendation with static/dynamic replacement
//!    percentages and a modelled speedup.

#![warn(missing_docs)]

use fpvm::cost::CostModel;
use fpvm::isa::{FpAluOp, InstKind, Prec, Width};
use fpvm::{Profile, Vm, VmOptions};
use instrument::{rewrite_all_double, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use mpsearch::{
    search_observed, SearchHooks, SearchOptions, SearchReport, ShadowOracle, VmEvaluator,
};
use std::sync::Arc;
use std::time::Instant;
use workloads::Workload;

pub mod jobspec;

pub use jobspec::JobSpec;
pub use mpsearch::StopDepth;

/// Context handed to [`EvalMiddleware::wrap`]: the structure tree the
/// evaluations index into, and a namespace string identifying every
/// option that changes an evaluation's verdict (see
/// [`JobSpec::cache_namespace`]) so cross-run state is never shared
/// between semantically different jobs.
pub struct WrapCtx<'a> {
    /// The workload's structure tree.
    pub tree: &'a StructureTree,
    /// Verdict-determining option fingerprint.
    pub namespace: String,
}

/// Interposes on configuration evaluation for a whole analysis run.
///
/// A long-running driver (the `craftd` daemon) installs one middleware
/// on every [`AnalysisSystem`] it builds; the middleware wraps the
/// system's private evaluator before each search, typically with a
/// cache shared *across* jobs. The wrapper sits *under* the search's
/// own per-run [`mpsearch::CachedEvaluator`], so its hits chain into
/// [`SearchReport::cache_hits`] via `Evaluator::stats`.
pub trait EvalMiddleware: Send + Sync {
    /// Wrap `inner` for one search run.
    fn wrap<'a>(
        &'a self,
        inner: &'a dyn mpsearch::Evaluator,
        ctx: &WrapCtx<'a>,
    ) -> Box<dyn mpsearch::Evaluator + 'a>;
}

/// Options for a full analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Search options (§2.2).
    pub search: SearchOptions,
    /// Rewriter options (§2.3–2.4).
    pub rewrite: RewriteOptions,
    /// Shadow-value analysis options (see `mpshadow`).
    pub shadow: ShadowOptions,
    /// Execution backend for verification runs (`--backend=`). All
    /// backends are bit-identical; this only changes trial throughput.
    pub backend: fpvm::Backend,
    /// Arm the numerical-health observer (`--num-health`): after the
    /// search, the final configuration is run once more under the
    /// [`fpvm::NumObserver`] hook and the per-instruction `fp.*` event
    /// counters are folded into the attached tracer. The observed run
    /// always uses the interpreter fast path — both compiled tiers
    /// execute FP effects inside opaque handlers (see
    /// `fpvm::compiled`) — which is sound because all backends are
    /// bit-identical.
    pub num_health: bool,
}

/// How the shadow-value sensitivity profile guides the search.
#[derive(Debug, Clone)]
pub struct ShadowOptions {
    /// Rank search-queue items by low shadow error (profile counts break
    /// ties). Changes test *order* only, never results.
    pub prioritize: bool,
    /// Skip-as-failed items whose worst *instruction-local* shadow error
    /// exceeds `tolerance × prune_margin`, refining them directly.
    pub prune: bool,
    /// Margin between the workload's verification tolerance and the
    /// prune threshold. Ordinary one-step truncation error is ~1e-7
    /// relative; the margin keeps the threshold far above it so only
    /// instructions the shadow run shows to be genuinely amplified
    /// (cancellation blow-ups, f32 range overflow) are pruned.
    pub prune_margin: f64,
}

impl Default for ShadowOptions {
    fn default() -> Self {
        ShadowOptions { prioritize: false, prune: false, prune_margin: 100.0 }
    }
}

/// The assembled analysis system for one workload.
pub struct AnalysisSystem {
    workload: Workload,
    tree: StructureTree,
    base: Config,
    opts: AnalysisOptions,
    tracer: Option<mptrace::Tracer>,
    middleware: Option<(Arc<dyn EvalMiddleware>, String)>,
}

/// Overhead of the all-double instrumented binary relative to the
/// original (the base-case measurement of Figs. 8–9).
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Wall-clock ratio (instrumented / original).
    pub wall_x: f64,
    /// Dynamic instruction ratio.
    pub steps_x: f64,
    /// Modelled cycle ratio.
    pub cycles_x: f64,
    /// Candidates instrumented.
    pub instrumented: usize,
}

/// The final recommendation handed to the developer.
pub struct Recommendation {
    /// The search report (Fig. 10 row data).
    pub report: SearchReport,
    /// The recommended configuration rendered in the exchange format.
    pub config_text: String,
    /// Modelled speedup of a source-level conversion following the
    /// recommended configuration (per-operation cost model over the
    /// original profile).
    pub modelled_speedup: f64,
}

impl AnalysisSystem {
    /// Build the system: structure tree plus the initial configuration
    /// carrying `ignore` flags for the workload's hinted functions.
    pub fn new(workload: Workload) -> Self {
        Self::with_options(workload, AnalysisOptions::default())
    }

    /// Build with explicit options.
    pub fn with_options(workload: Workload, opts: AnalysisOptions) -> Self {
        let tree = StructureTree::build(workload.program());
        let mut base = Config::new();
        for name in workload.ignore_funcs() {
            for m in &tree.modules {
                for fun in &m.funcs {
                    if fun.name == name {
                        base.set_func(fun.id, Flag::Ignore);
                    }
                }
            }
        }
        AnalysisSystem { workload, tree, base, opts, tracer: None, middleware: None }
    }

    /// Install an evaluation middleware (see [`EvalMiddleware`]). The
    /// `namespace` should fingerprint every option that changes a
    /// verdict — [`JobSpec::cache_namespace`] builds the canonical one.
    pub fn set_middleware(&mut self, middleware: Arc<dyn EvalMiddleware>, namespace: String) {
        self.middleware = Some((middleware, namespace));
    }

    /// Attach a span/metric recorder. Every subsequent pipeline run
    /// (search, evaluation, rewriting, hot-spot profiling) records into
    /// it; hot instructions are labelled with their full structural path
    /// `module/func/b{block}@addr: disasm`, so snapshots are readable
    /// without the binary and `craft compare` can fold per-insn cycle
    /// deltas up the structure tree.
    pub fn set_tracer(&mut self, tracer: mptrace::Tracer) {
        for m in &self.tree.modules {
            for fun in &m.funcs {
                for b in &fun.blocks {
                    for e in &b.insns {
                        tracer.label_insn(
                            e.id.0,
                            format!(
                                "{}/{}/b{}@{:#x}: {}",
                                m.name, fun.name, b.id.0, e.addr, e.disasm
                            ),
                        );
                    }
                }
            }
        }
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&mptrace::Tracer> {
        self.tracer.as_ref()
    }

    /// The structure tree of the original binary.
    pub fn tree(&self) -> &StructureTree {
        &self.tree
    }

    /// The initial (base) configuration.
    pub fn base_config(&self) -> &Config {
        &self.base
    }

    /// The packaged workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Profile the original binary (used for search prioritization and
    /// the dynamic-replacement metric).
    pub fn profile(&self) -> Profile {
        let opts = VmOptions { profile: true, ..self.workload.vm_opts() };
        Vm::run_program(self.workload.program(), opts)
            .profile
            .expect("profiling run lost its profile")
    }

    /// Evaluate one configuration: instrument, run, verify.
    pub fn evaluate(&self, cfg: &Config) -> bool {
        use mpsearch::Evaluator as _;
        self.evaluator().evaluate(cfg)
    }

    fn evaluator(&self) -> VmEvaluator<'_> {
        let mut ev = VmEvaluator::with_options(
            self.workload.program(),
            &self.tree,
            self.workload.vm_opts(),
            self.opts.rewrite.clone(),
            self.workload.verifier(),
        );
        ev.set_backend(self.opts.backend);
        if let Some(t) = &self.tracer {
            ev.set_tracer(t.clone());
        }
        ev
    }

    /// Measure the all-double instrumentation overhead (Figs. 8–9): same
    /// semantics, every candidate checked.
    pub fn overhead_all_double(&self) -> OverheadReport {
        let prog = self.workload.program();
        let (instrumented, stats) = rewrite_all_double(prog, &self.tree);
        let vm_opts = self.workload.vm_opts();

        let t0 = Instant::now();
        let base = Vm::run_program(prog, vm_opts.clone());
        let base_wall = t0.elapsed();
        assert!(base.ok());

        let t1 = Instant::now();
        let instr = Vm::run_program(&instrumented, vm_opts);
        let instr_wall = t1.elapsed();
        assert!(instr.ok(), "all-double instrumented run failed: {:?}", instr.result);

        OverheadReport {
            wall_x: instr_wall.as_secs_f64() / base_wall.as_secs_f64().max(1e-9),
            steps_x: instr.stats.steps as f64 / base.stats.steps.max(1) as f64,
            cycles_x: instr.stats.cycles as f64 / base.stats.cycles.max(1) as f64,
            instrumented: stats.instrumented(),
        }
    }

    /// Run the automatic search (§2.2) and return the raw report.
    pub fn run_search(&self) -> SearchReport {
        self.run_search_with(&SearchHooks::default())
    }

    /// [`AnalysisSystem::run_search`] with observability hooks: a JSONL
    /// event sink and/or a deterministic fault plan for the evaluation
    /// executor.
    pub fn run_search_with(&self, hooks: &SearchHooks<'_>) -> SearchReport {
        self.search_with_profile(hooks).0
    }

    /// Run the workload once under the shadow-value engine and return
    /// the per-instruction sensitivity profile (see `mpshadow`).
    pub fn shadow_profile(&self) -> mpshadow::SensitivityProfile {
        mpshadow::shadow_run(self.workload.program(), self.workload.vm_opts()).profile
    }

    /// Run `cfg`'s instrumented program once under the numerical-health
    /// observer and return the per-instruction event profile, folded
    /// back to original instruction ids (instrumentation snippets
    /// attribute to the instruction they expand). The observed run uses
    /// the interpreter fast path regardless of
    /// [`AnalysisOptions::backend`] — the compiled tiers execute FP
    /// effects inside opaque handlers and cannot expose per-operation
    /// values — which is sound because all backends are bit-identical.
    pub fn num_health_profile(&self, cfg: &Config) -> mptrace::numprof::NumProfiler {
        let prog = self.workload.program();
        let rewriter = instrument::Rewriter::new(prog, self.opts.rewrite.clone());
        let (instrumented, _) = rewriter.rewrite(prog, &self.tree, cfg);
        let vm_opts = self.workload.vm_opts();
        let image = fpvm::exec::ExecImage::compile(&instrumented, &vm_opts.cost);
        let mut prof = mptrace::numprof::NumProfiler::new(instrumented.insn_id_bound());
        let mut vm = Vm::new(&instrumented, vm_opts);
        let out = vm.run_image_numhealth(&image, &mut prof);
        assert!(out.ok(), "num-health run of a verified config failed: {:?}", out.result);
        let mut origin: Vec<u32> = (0..instrumented.insn_id_bound() as u32).collect();
        for (_, _, insn) in instrumented.iter_insns() {
            if let Some(o) = insn.origin {
                origin[insn.id.0 as usize] = o.0;
            }
        }
        prof.fold_ids(prog.insn_id_bound(), |i| origin[i as usize])
    }

    /// Shared search driver: profiles the original binary, optionally
    /// runs the shadow analysis and plugs it into the hooks as an
    /// oracle, then runs the observed search.
    fn search_with_profile(&self, hooks: &SearchHooks<'_>) -> (SearchReport, Profile) {
        let tracer = hooks.tracer.or(self.tracer.as_ref());
        let profile = {
            let _s = tracer.map(|t| t.span("profile"));
            self.profile()
        };
        let sh = &self.opts.shadow;
        let sprof = (sh.prioritize || sh.prune).then(|| {
            let _s = tracer.map(|t| t.span("shadow_profile"));
            self.shadow_profile()
        });
        let hooks = SearchHooks {
            bench: hooks.bench.clone(),
            faults: hooks.faults.clone(),
            events: hooks.events,
            stream: hooks.stream,
            pool: hooks.pool,
            tracer,
            shadow: sprof.as_ref().map(|sp| ShadowOracle {
                profile: sp,
                prioritize: sh.prioritize,
                prune_threshold: sh.prune.then_some(self.workload.tol * sh.prune_margin),
            }),
        };
        // The installed middleware (a daemon's cross-job cache) wraps
        // the evaluator *outside* this call; the search then stacks its
        // own per-run CachedEvaluator on top, so middleware hits chain
        // into the report's cache_hits through Evaluator::stats.
        let ev = self.evaluator();
        let wrapped = self
            .middleware
            .as_ref()
            .map(|(m, ns)| m.wrap(&ev, &WrapCtx { tree: &self.tree, namespace: ns.clone() }));
        let eval: &dyn mpsearch::Evaluator = match &wrapped {
            Some(b) => b.as_ref(),
            None => &ev,
        };
        let report = search_observed(
            &self.tree,
            &self.base,
            Some(&profile),
            eval,
            &self.opts.search,
            &hooks,
        );
        // Numerical health: one extra observed run of the final
        // configuration, folded into the tracer as the `fp.*` family.
        if self.opts.num_health {
            if let Some(t) = tracer {
                let _s = t.span("num_health");
                self.num_health_profile(&report.final_config).fold_into(t);
            }
        }
        (report, profile)
    }

    /// Full pipeline: search, compose, and package the recommendation.
    pub fn recommend(&self) -> Recommendation {
        self.recommend_with(&SearchHooks::default())
    }

    /// [`AnalysisSystem::recommend`] with observability/fault-injection
    /// hooks for the underlying search.
    pub fn recommend_with(&self, hooks: &SearchHooks<'_>) -> Recommendation {
        let (report, profile) = self.search_with_profile(hooks);
        let config_text = mpconfig::print_config(&self.tree, &report.final_config);
        let modelled_speedup = model_speedup(
            self.workload.program(),
            &self.tree,
            &report.final_config,
            &profile,
            &CostModel::default(),
        );
        Recommendation { report, config_text, modelled_speedup }
    }
}

/// Modelled speedup of converting the recommended regions to single
/// precision at the source level: per-operation cost-model cycles over
/// the original profile, with replaced candidates costed at their
/// single-precision variant.
pub fn model_speedup(
    prog: &fpvm::Program,
    tree: &StructureTree,
    cfg: &Config,
    profile: &Profile,
    cost: &CostModel,
) -> f64 {
    // Dynamic replacement fraction, used to prorate FP data movement: a
    // source-level conversion shrinks the *arrays* the replaced regions
    // touch, halving the traffic of their loads/stores. Moves are not
    // candidates themselves, so we attribute the width reduction in
    // proportion to how much of the FP work was replaced.
    let mut cand_total = 0u128;
    let mut cand_repl = 0u128;
    for id in tree.all_insns() {
        let n = profile.count(id) as u128;
        cand_total += n;
        if cfg.effective(tree, id).is_replacement() {
            cand_repl += n;
        }
    }
    let w = if cand_total == 0 { 0.0 } else { cand_repl as f64 / cand_total as f64 };

    let mut orig = 0.0f64;
    let mut mixed = 0.0f64;
    for (_, _, insn) in prog.iter_insns() {
        let n = profile.count(insn.id) as f64;
        if n == 0.0 {
            continue;
        }
        let c_orig = cost.cost(&insn.kind) as f64;
        // Reduced formats (half/bf16/custom) are costed at their
        // single-precision variant: the emulation executes the single op
        // plus a quantize, and a source-level conversion would use the
        // same 32-bit datapath on scalar hardware — the model stays
        // conservative rather than inventing 16-bit op costs.
        let c_mixed = if insn.kind.is_candidate() && cfg.effective(tree, insn.id).is_replacement() {
            cost.cost(&to_single(&insn.kind)) as f64
        } else if let InstKind::MovF { width, dst, src } = &insn.kind {
            match width {
                Width::W64 | Width::W128 => {
                    let narrow = InstKind::MovF {
                        width: if *width == Width::W64 { Width::W32 } else { Width::W64 },
                        dst: *dst,
                        src: *src,
                    };
                    w * cost.cost(&narrow) as f64 + (1.0 - w) * c_orig
                }
                Width::W32 => c_orig,
            }
        } else {
            c_orig
        };
        orig += n * c_orig;
        mixed += n * c_mixed;
    }
    if mixed == 0.0 {
        1.0
    } else {
        orig / mixed
    }
}

fn to_single(kind: &InstKind) -> InstKind {
    let mut k = kind.clone();
    match &mut k {
        InstKind::FpArith { prec, .. }
        | InstKind::FpSqrt { prec, .. }
        | InstKind::FpMath { prec, .. }
        | InstKind::FpUcomi { prec, .. }
        | InstKind::CvtF2I { from: prec, .. } => *prec = Prec::Single,
        InstKind::CvtF2F { .. } => {
            // a narrowing conversion disappears in an all-single source;
            // model it as a cheap register-register single op
            k = InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Single,
                packed: false,
                dst: fpvm::Xmm(0),
                src: fpvm::RM::Reg(fpvm::Xmm(0)),
            };
        }
        _ => {}
    }
    k
}

/// Measured + modelled speedup of the whole-program manual f32 conversion
/// (the paper's AMG §3.2 and SuperLU §3.3 experiments).
pub struct ConversionSpeedup {
    /// Modelled cycle ratio f64/f32 (the headline number; captures the
    /// bandwidth/SIMD/issue effects an interpreter cannot show).
    pub modelled: f64,
    /// Interpreter wall-clock ratio (for completeness).
    pub wall: f64,
    /// Dynamic instruction ratio.
    pub steps: f64,
}

/// Measure [`ConversionSpeedup`] for a workload.
pub fn conversion_speedup(w: &Workload) -> ConversionSpeedup {
    let p64 = w.program();
    let p32 = w.compile_f32();
    let opts = w.vm_opts();

    let t0 = Instant::now();
    let o64 = Vm::run_program(p64, opts.clone());
    let w64 = t0.elapsed();
    let t1 = Instant::now();
    let o32 = Vm::run_program(&p32, opts);
    let w32 = t1.elapsed();
    assert!(o64.ok() && o32.ok());

    ConversionSpeedup {
        modelled: o64.stats.cycles as f64 / o32.stats.cycles.max(1) as f64,
        wall: w64.as_secs_f64() / w32.as_secs_f64().max(1e-9),
        steps: o64.stats.steps as f64 / o32.stats.steps.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Class;

    fn fast_opts() -> AnalysisOptions {
        AnalysisOptions {
            search: SearchOptions { threads: 2, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn overhead_is_real_and_semantics_preserving() {
        let sys = AnalysisSystem::new(workloads::nas::ep(Class::S));
        let o = sys.overhead_all_double();
        assert!(o.steps_x > 1.5, "instrumentation too cheap: {}x", o.steps_x);
        assert!(o.steps_x < 100.0, "instrumentation absurdly expensive: {}x", o.steps_x);
        assert!(o.instrumented > 10);
    }

    #[test]
    fn amg_fully_replaceable_with_speedup() {
        let sys = AnalysisSystem::with_options(workloads::amg::amg(Class::S), fast_opts());
        let rec = sys.recommend();
        assert!(rec.report.final_pass, "AMG final configuration must verify");
        assert!(
            (rec.report.static_pct - 100.0).abs() < 1e-9,
            "AMG should be fully replaceable, got {:.1}%",
            rec.report.static_pct
        );
        assert!(rec.modelled_speedup > 1.3, "modelled speedup {}", rec.modelled_speedup);
        assert!(rec.config_text.contains("MODULE"));
    }

    #[test]
    fn ep_search_ignores_the_rng() {
        let sys = AnalysisSystem::with_options(workloads::nas::ep(Class::S), fast_opts());
        let rec = sys.recommend();
        let tree = sys.tree();
        for m in &tree.modules {
            for fun in &m.funcs {
                if fun.name == "randlc" {
                    for b in &fun.blocks {
                        for e in &b.insns {
                            assert_eq!(rec.report.final_config.effective(tree, e.id), Flag::Ignore);
                        }
                    }
                }
            }
        }
        assert!(rec.report.static_pct > 50.0, "static {}%", rec.report.static_pct);
    }

    #[test]
    fn conversion_speedup_favors_f32() {
        let s = conversion_speedup(&workloads::amg::amg(Class::S));
        assert!(s.modelled > 1.2, "modelled {}", s.modelled);
    }
}
