//! `craft` — the command-line front end to the mixed-precision analysis
//! system, operating on the bundled benchmark programs.
//!
//! ```text
//! craft list                          # available benchmarks
//! craft analyze <bench> [class]      # full search + recommendation
//! craft shadow <bench> [class]       # shadow-value sensitivity analysis
//! craft overhead <bench> [class]     # all-double instrumentation cost
//! craft tree <bench> [class]         # structure tree (Fig. 4 view)
//! craft config <bench> [class]       # initial config file (Fig. 3)
//! craft report <events.jsonl|run-dir>  # digest a search event log / run directory
//! craft metrics <trace.jsonl>          # render a trace snapshot (Prometheus/folded)
//! craft runs                           # list registry-recorded runs
//! craft explain <run-dir|latest>       # decision provenance + numerical health
//! craft watch <run-dir|latest>         # render a run's live.jsonl stream
//! craft compare <run-a> <run-b>        # cross-run diff with regression attribution
//! craft submit <bench> [class]         # submit a tuning job to a craftd daemon
//! craft status <job-id>                # one daemon job, analyze-style summary
//! craft jobs                           # list a daemon's jobs
//! craft top                            # live multi-job daemon dashboard
//! ```
//!
//! The daemon-mode subcommands (`submit`/`status`/`jobs`/`top`) talk
//! HTTP to a running `craftd` (`--daemon=HOST:PORT`, else
//! `$CRAFTD_ADDR`, else `127.0.0.1:7050`). `submit --follow` tails the
//! job's live stream to completion and then prints the same labelled
//! summary lines as `craft analyze`, so the two outputs can be diffed
//! directly. Every `submit` mints an `x-craft-trace` id that the daemon
//! stamps through its structured log, the job record, the run manifest,
//! and the run-dir spans — one id links the client call to everything
//! it caused. `top` polls the unified `/metrics` exposition and tails
//! running jobs' `live.jsonl` (when the data directory is reachable via
//! `--data=DIR` or `$CRAFTD_DATA`) into a refreshing multi-job view;
//! `--once` renders a single frame for scripts and CI.
//!
//! Options for `analyze`: `--second-phase`, `--stop-depth=f|b|i`,
//! `--no-split`, `--no-priority`, `--lean`, `--threads=N`,
//! `--lattice=SPEC` (comma-joined precision levels the search descends
//! through, e.g. `s,h` or `s,b,m5e6`; default `s`, the classic
//! single-only search — recorded in the run manifest),
//! `--backend=interp|fast|compiled` (execution engine for verification
//! runs — bit-identical results, different throughput; also accepted by
//! `shadow`/`overhead`/`tree`/`config`, and recorded in the run
//! manifest), `--shadow-priority` / `--shadow-prune` (shadow-value
//! search guidance), `--num-health` (replay the final configuration
//! under the numerical-health observer and fold `fp.*` counters into
//! the trace — requires `--trace`; `craft explain` renders the hot
//! lists), `--events=FILE` (JSONL event log), `--trace=DIR` (run
//! directory collecting `events.jsonl` + `trace.jsonl` + `live.jsonl` +
//! `decisions.jsonl` + `manifest.json`), `--registry=DIR` (record the run in a registry;
//! defaults to `$CRAFT_REGISTRY` or `~/.craft/runs`), and the
//! fault-injection drills `--inject-panic=IDX[,IDX…]` /
//! `--inject-timeout=IDX[,IDX…]`.
//!
//! Exit codes are uniform across subcommands: `2` for usage/argument
//! errors (unknown benchmark, missing operand), `1` for runtime errors
//! (unreadable file, malformed log) *and* for `compare` when a
//! regression crosses its threshold (suppress with `--warn-only`),
//! `0` otherwise.

use mixedprec::{AnalysisOptions, AnalysisSystem, JobSpec, ShadowOptions, StopDepth};
use mpconfig::editor::render_tree;
use mpconfig::print_config;
use mpsearch::events::{Event, EventLog, Record};
use mpsearch::{FaultPlan, SearchHooks, SearchOptions, SearchReport, Verdict};
use mptrace::compare::{compare, CompareOptions};
use mptrace::json::{self, Value};
use mptrace::registry::{self, Registry, RunManifest, RunSummary};
use mptrace::snapshot::TraceSnapshot;
use mptrace::stream::{LiveLog, LiveTail, StreamOptions, StreamSink};
use mptrace::{sinks, Tracer};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use workloads::{Class, Workload};

/// Usage/argument error: print the message and exit 2.
fn usage(msg: &str) -> ! {
    eprintln!("craft: {msg}");
    eprintln!("run `craft` with no arguments for usage");
    std::process::exit(2)
}

/// Runtime/data error (unreadable file, malformed log): exit 1.
fn fail(msg: String) -> ! {
    eprintln!("craft: {msg}");
    std::process::exit(1)
}

use mixedprec::jobspec::{self, BENCHES};

fn build(bench: &str, class: Class) -> Workload {
    jobspec::build_workload(bench, class).unwrap_or_else(|e| usage(&e))
}

fn parse_class(s: Option<&str>) -> Class {
    jobspec::parse_class(s.unwrap_or("w")).unwrap_or_else(|e| usage(&e))
}

fn parse_indices(spec: &str) -> Vec<u64> {
    spec.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// Digest a JSONL search event log: per-phase timing, a verdict
/// histogram over evaluation attempts, robustness counters, and the
/// top-k most expensive evaluations. Returns an error (instead of
/// exiting) so run-directory reports can degrade gracefully.
fn render_report(path: &str, top: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match Record::parse(line) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    if records.is_empty() {
        return Err(format!(
            "{path}: no parseable events{}",
            if malformed > 0 { " (all malformed)" } else { "" }
        ));
    }
    let span_us = records.last().map(|r| r.t_us).unwrap_or(0);
    println!("event log   : {path}");
    println!(
        "events      : {}{}   span: {:.1} ms",
        records.len(),
        if malformed > 0 { format!(" (+{malformed} malformed)") } else { String::new() },
        span_us as f64 / 1e3
    );

    let searches: Vec<&Record> =
        records.iter().filter(|r| matches!(r.event, Event::SearchStarted { .. })).collect();
    for r in &searches {
        if let Event::SearchStarted { bench, candidates, threads } = &r.event {
            println!(
                "search      : {}  ({candidates} candidates, {threads} threads)",
                if bench.is_empty() { "<unnamed>" } else { bench }
            );
        }
    }

    println!("\nphase timing:");
    for r in &records {
        if let Event::PhaseFinished { phase, wall_us } = &r.event {
            println!("  {:<14} {:>10.1} ms", phase, *wall_us as f64 / 1e3);
        }
    }

    let mut verdicts: HashMap<Verdict, usize> = HashMap::new();
    let mut evals: Vec<(u64, u64, Verdict, String, bool)> = Vec::new();
    let mut cache_hits = 0usize;
    let mut retries = 0usize;
    let mut quarantines = 0usize;
    let mut max_depth = 0usize;
    for r in &records {
        match &r.event {
            Event::EvalFinished { idx, label, verdict, wall_us, cache_hit, .. } => {
                *verdicts.entry(*verdict).or_default() += 1;
                cache_hits += *cache_hit as usize;
                evals.push((*wall_us, *idx, *verdict, label.clone(), *cache_hit));
            }
            Event::Retry { .. } => retries += 1,
            Event::Quarantined { .. } => quarantines += 1,
            Event::QueueDepth { depth, .. } => max_depth = max_depth.max(*depth),
            _ => {}
        }
    }
    println!("\nverdicts ({} evaluation attempts):", evals.len());
    for v in Verdict::ALL {
        let n = verdicts.get(&v).copied().unwrap_or(0);
        if n > 0 || matches!(v, Verdict::Pass | Verdict::Fail) {
            println!("  {:<12} {n:>6}", v.as_str());
        }
    }
    println!(
        "\nretries: {retries}   quarantines: {quarantines}   cache hits: {cache_hits}   \
         max queue depth: {max_depth}"
    );

    evals.sort_by_key(|e| std::cmp::Reverse(e.0));
    println!("\ntop {} most expensive evaluations:", top.min(evals.len()));
    println!("  {:>10}  {:>5}  {:<11}  label", "wall", "idx", "verdict");
    for (wall_us, idx, verdict, label, cache_hit) in evals.iter().take(top) {
        println!(
            "  {:>8.1}ms  {idx:>5}  {:<11}  {label}{}",
            *wall_us as f64 / 1e3,
            verdict.as_str(),
            if *cache_hit { " (cached)" } else { "" }
        );
    }
    Ok(())
}

/// Read and parse a `trace.jsonl` snapshot, exiting 1 on failure. A
/// truncated final line (crash-interrupted run) is tolerated with a
/// warning on stderr.
fn load_snapshot(path: &str) -> TraceSnapshot {
    try_load_snapshot(path).unwrap_or_else(|e| fail(e))
}

/// [`load_snapshot`] returning the error instead of exiting.
fn try_load_snapshot(path: &str) -> Result<TraceSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (snap, warn) = TraceSnapshot::parse_tolerant(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(w) = warn {
        eprintln!("craft: warning: {path}: {w}");
    }
    Ok(snap)
}

/// Render a trace snapshot: per-phase timeline (spans aggregated by
/// name, ordered by first start) and the top-k hottest instructions by
/// attributed interpreter cycles.
fn render_trace_report(path: &str, snap: &TraceSnapshot, top: usize) {
    println!("trace       : {path}");
    if !snap.spans.is_empty() {
        // Aggregate spans by name: repeated spans (one per work item)
        // collapse into count + total, one-shot phases keep their slot.
        struct Agg {
            first_start: u64,
            total_us: u64,
            count: u64,
        }
        let mut by_name: Vec<(String, Agg)> = Vec::new();
        for s in &snap.spans {
            match by_name.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, a)) => {
                    a.first_start = a.first_start.min(s.start_us);
                    a.total_us += s.dur_us;
                    a.count += 1;
                }
                None => by_name.push((
                    s.name.clone(),
                    Agg { first_start: s.start_us, total_us: s.dur_us, count: 1 },
                )),
            }
        }
        by_name.sort_by_key(|(_, a)| a.first_start);
        println!("\nphase timeline ({} spans):", snap.spans.len());
        println!("  {:>10}  {:>12}  {:>6}  span", "start", "total", "count");
        for (name, a) in &by_name {
            println!(
                "  {:>8.1}ms  {:>10.1}ms  {:>6}  {name}",
                a.first_start as f64 / 1e3,
                a.total_us as f64 / 1e3,
                a.count
            );
        }
    }
    if !snap.hot.is_empty() {
        let mut hot: Vec<_> = snap.hot.iter().collect();
        hot.sort_by_key(|h| std::cmp::Reverse(h.cycles));
        let total: u64 = hot.iter().map(|h| h.cycles).sum();
        println!("\ntop {} hottest instructions ({total} attributed cycles):", top.min(hot.len()));
        println!("  {:>12}  {:>10}  {:>6}  insn", "cycles", "hits", "%");
        for h in hot.iter().take(top) {
            let label =
                if h.label.is_empty() { format!("insn {}", h.insn) } else { h.label.clone() };
            println!(
                "  {:>12}  {:>10}  {:>5.1}%  {label}",
                h.cycles,
                h.hits,
                100.0 * h.cycles as f64 / total.max(1) as f64
            );
        }
    }
    let interesting =
        ["exec.cache_hits", "exec.retries", "search.enqueued", "search.shadow_pruned"];
    let lines: Vec<String> = interesting
        .iter()
        .filter_map(|k| snap.counters.get(*k).map(|v| format!("{k}={v}")))
        .collect();
    if !lines.is_empty() {
        println!("\ncounters    : {}", lines.join("  "));
    }
}

/// `git describe --always --dirty`, best-effort (empty when git or the
/// repo is unavailable).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_default()
}

/// Fold a [`SearchReport`] into the manifest's [`RunSummary`].
fn summary_of(r: &SearchReport) -> RunSummary {
    RunSummary {
        candidates: r.candidates,
        tested: r.configs_tested,
        static_pct: r.static_pct,
        dynamic_pct: r.dynamic_pct,
        final_pass: r.final_pass,
        timeouts: r.timeouts,
        crashes: r.crashes,
        retries: r.retries,
        quarantined: r.quarantined,
        pruned_by_shadow: r.pruned_by_shadow,
    }
}

/// Open the resolved registry (`--registry` > `$CRAFT_REGISTRY` >
/// `~/.craft/runs`); `None` with a note when nothing resolves.
fn open_registry(explicit: Option<&str>) -> Option<Registry> {
    let dir = Registry::resolve(explicit)?;
    match Registry::open(&dir) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("craft: warning: cannot open registry {}: {e}", dir.display());
            None
        }
    }
}

/// Resolve a run argument — a run directory, a bare `trace.jsonl`/
/// `live.jsonl` path, or the literal `latest` (most recent registry
/// run) — to a concrete path.
fn resolve_run_arg(arg: &str, registry_flag: Option<&str>) -> PathBuf {
    if arg == "latest" {
        let reg = open_registry(registry_flag)
            .unwrap_or_else(|| fail("no registry available to resolve `latest`".into()));
        match reg.latest(None) {
            Ok(Some(e)) => e.path,
            Ok(None) => fail(format!("registry {} has no recorded runs", reg.dir().display())),
            Err(e) => fail(e),
        }
    } else {
        PathBuf::from(arg)
    }
}

/// Load the trace snapshot for a run: a run directory's `trace.jsonl`,
/// falling back to folding its `live.jsonl` stream (a crashed run has
/// only the stream), or a direct artifact path.
fn load_run_snapshot(path: &Path) -> Result<TraceSnapshot, String> {
    if path.is_dir() {
        let trace = path.join("trace.jsonl");
        if trace.is_file() {
            return try_load_snapshot(&trace.display().to_string());
        }
        let live = path.join("live.jsonl");
        if live.is_file() {
            let log = LiveLog::from_file(&live)?;
            if let Some(w) = &log.warning {
                eprintln!("craft: warning: {}: {w}", live.display());
            }
            return Ok(log.final_snapshot());
        }
        return Err(format!("{}: no trace.jsonl or live.jsonl", path.display()));
    }
    let s = path.display().to_string();
    if s.ends_with("live.jsonl") {
        let log = LiveLog::from_file(path)?;
        if let Some(w) = &log.warning {
            eprintln!("craft: warning: {s}: {w}");
        }
        return Ok(log.final_snapshot());
    }
    try_load_snapshot(&s)
}

/// The manifest next to a run artifact (the directory itself, or the
/// artifact's parent directory). `None` when absent or unreadable.
fn load_run_manifest(path: &Path) -> Option<RunManifest> {
    let dir = if path.is_dir() { path } else { path.parent()? };
    match RunManifest::load(dir) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("craft: warning: {e}");
            None
        }
    }
}

/// Down-sample `values` to at most `cols` buckets (max within each) and
/// render them as a unicode spark-line.
fn sparkline(values: &[u64], cols: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let cols = cols.max(1).min(values.len());
    let mut sampled = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        sampled.push(values[lo..hi].iter().copied().max().unwrap_or(0));
    }
    let top = sampled.iter().copied().max().unwrap_or(0).max(1);
    sampled.iter().map(|&v| BARS[(v * 7).div_ceil(top).min(7) as usize]).collect()
}

/// Render one frame of `craft watch`: phase timeline, queue-depth
/// spark-line, verdict histogram, and hottest instructions so far.
fn render_watch(dir_label: &str, log: &LiveLog, manifest: Option<&RunManifest>, top: usize) {
    println!("watching    : {dir_label}");
    if let Some(m) = manifest {
        println!(
            "run         : {} ({}.{}, tol {:e}, {} threads{})",
            m.id,
            m.bench,
            m.class,
            m.tol,
            m.threads,
            if m.git.is_empty() { String::new() } else { format!(", git {}", m.git) }
        );
    }
    if let Some(w) = &log.warning {
        println!("warning     : {w}");
    }

    // Phase timeline: first/last t_us per phase, in first-seen order.
    let mut phases: Vec<(String, u64, u64)> = Vec::new();
    for p in &log.progress {
        match phases.iter_mut().find(|(n, _, _)| *n == p.progress.phase) {
            Some((_, _, last)) => *last = p.t_us,
            None => phases.push((p.progress.phase.clone(), p.t_us, p.t_us)),
        }
    }
    if !phases.is_empty() {
        println!("\nphase timeline:");
        for (name, first, last) in &phases {
            println!(
                "  {:<14} {:>8.1} ms -> {:>8.1} ms",
                name,
                *first as f64 / 1e3,
                *last as f64 / 1e3
            );
        }
    }

    let depths: Vec<u64> = log.progress.iter().map(|p| p.progress.queue_depth).collect();
    if let Some(last) = log.latest_progress() {
        println!("\nqueue depth : {} (now {})", sparkline(&depths, 60), last.progress.queue_depth);
        let eta = match last.eta_us {
            Some(e) => format!("   eta ~{:.1}s", e as f64 / 1e6),
            None => String::new(),
        };
        println!(
            "progress    : phase {}  done {}/{}  in-flight {}{eta}",
            last.progress.phase,
            last.progress.done,
            last.progress.total_estimate,
            last.progress.in_flight
        );
        if !last.verdicts.is_empty() {
            let total: u64 = last.verdicts.values().sum();
            println!("\nverdicts ({total} attempts):");
            for (name, n) in &last.verdicts {
                let width = (n * 40).div_ceil(total.max(1)) as usize;
                println!("  {:<12} {n:>6}  {}", name, "#".repeat(width));
            }
        }
    }

    let snap = log.final_snapshot();
    if !snap.hot.is_empty() {
        let mut hot: Vec<_> = snap.hot.iter().collect();
        hot.sort_by_key(|h| std::cmp::Reverse(h.cycles));
        println!("\nhottest instructions so far:");
        for h in hot.iter().take(top) {
            let label =
                if h.label.is_empty() { format!("insn {}", h.insn) } else { h.label.clone() };
            println!("  {:>12} cycles  {:>8} hits  {label}", h.cycles, h.hits);
        }
    }
}

/// The daemon address for client-mode subcommands: `--daemon=HOST:PORT`
/// beats `$CRAFTD_ADDR` beats the craftd default `127.0.0.1:7050`.
fn daemon_addr(explicit: Option<String>) -> String {
    explicit
        .or_else(|| std::env::var("CRAFTD_ADDR").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "127.0.0.1:7050".into())
}

/// Minimal HTTP/1.1 keep-alive client for daemon mode
/// (`submit`/`status`/`jobs`): `cached` holds a connection reused across
/// requests in one command (e.g. submit → follow → status), refreshed
/// when the daemon closes it. Response bodies are framed by
/// `Content-Length`, chunked encoding (live follows), or EOF. Body
/// pieces go to `on_data` as they arrive. Kept local because `core`
/// cannot depend on the `craftd` crate (craftd depends on it).
fn http_exchange(
    cached: &mut Option<std::net::TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    trace: Option<&str>,
    on_data: &mut dyn FnMut(&str),
) -> Result<u16, String> {
    let had_cached = cached.is_some();
    let mut delivered = false;
    match http_attempt(cached, addr, method, path, body, trace, &mut delivered, on_data) {
        // A cached connection can go stale (daemon restarted, idle
        // timeout). Retry once on a fresh one — but only if the failed
        // attempt delivered no body bytes, so `on_data` never sees data
        // twice.
        Err(_) if had_cached && !delivered => {
            *cached = None;
            http_exchange(cached, addr, method, path, body, trace, on_data)
        }
        done => done,
    }
}

/// One request/response over `cached` (connecting first if empty),
/// returning the connection to `cached` when it remains reusable.
#[allow(clippy::too_many_arguments)]
fn http_attempt(
    cached: &mut Option<std::net::TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    trace: Option<&str>,
    delivered: &mut bool,
    on_data: &mut dyn FnMut(&str),
) -> Result<u16, String> {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    let mut conn = match cached.take() {
        Some(c) => c,
        None => {
            TcpStream::connect(addr).map_err(|e| format!("cannot reach daemon at {addr}: {e}"))?
        }
    };
    let payload = body.unwrap_or("");
    // The cross-process trace id rides along as `x-craft-trace`; the
    // daemon stamps it through its log, the job record, and the run-dir
    // artifacts.
    let trace_header = match trace {
        Some(id) if !id.is_empty() => format!("x-craft-trace: {id}\r\n"),
        _ => String::new(),
    };
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: keep-alive\r\n{trace_header}\r\n{payload}",
        payload.len()
    )
    .and_then(|()| conn.flush())
    .map_err(|e| format!("send: {e}"))?;

    let read_line = |conn: &mut TcpStream| -> Result<String, String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        while !line.ends_with(b"\r\n") {
            match conn.read(&mut byte) {
                Ok(0) => return Err("daemon closed the connection mid-line".into()),
                Ok(_) => line.push(byte[0]),
                Err(e) => return Err(format!("read: {e}")),
            }
        }
        line.truncate(line.len() - 2);
        Ok(String::from_utf8_lossy(&line).into_owned())
    };

    let status_line = read_line(&mut conn)?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    let mut reusable = true;
    loop {
        let line = read_line(&mut conn)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length =
                    Some(value.parse().map_err(|_| format!("bad content-length {value:?}"))?);
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                reusable = false;
            }
        }
    }
    if chunked {
        loop {
            let size_line = read_line(&mut conn)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size {size_line:?}"))?;
            let mut data = vec![0u8; size + 2]; // payload + trailing CRLF
            conn.read_exact(&mut data).map_err(|e| format!("read chunk: {e}"))?;
            if size == 0 {
                break;
            }
            *delivered = true;
            on_data(&String::from_utf8_lossy(&data[..size]));
        }
    } else if let Some(n) = content_length {
        let mut data = vec![0u8; n];
        conn.read_exact(&mut data).map_err(|e| format!("read body: {e}"))?;
        *delivered = true;
        on_data(&String::from_utf8_lossy(&data));
    } else {
        // EOF framing consumes the connection by definition.
        reusable = false;
        let mut data = Vec::new();
        conn.read_to_end(&mut data).map_err(|e| format!("read body: {e}"))?;
        *delivered = true;
        on_data(&String::from_utf8_lossy(&data));
    }
    if reusable {
        *cached = Some(conn);
    }
    Ok(status)
}

/// [`http_exchange`] collecting the whole body into a string.
fn http_request(
    cached: &mut Option<std::net::TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    trace: Option<&str>,
) -> Result<(u16, String), String> {
    let mut out = String::new();
    let status = http_exchange(cached, addr, method, path, body, trace, &mut |p| out.push_str(p))?;
    Ok((status, out))
}

/// The daemon's `{"error":…}` message, or the raw body if it isn't one.
fn daemon_error(body: &str) -> String {
    json::parse(body)
        .ok()
        .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| body.trim().to_string())
}

/// Render one daemon job record. Completed jobs print the same labelled
/// summary lines as `craft analyze`, so daemon output and in-process
/// output can be diffed directly. Returns the exit code (1 for
/// failed/crashed jobs).
fn render_job_record(v: &Value) -> i32 {
    let s = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("");
    let state = s("state");
    println!("job                  : {}", s("id"));
    if !s("trace").is_empty() {
        println!("trace id             : {}", s("trace"));
    }
    println!("state                : {state}");
    match state {
        "done" => {
            println!("benchmark            : {}.{}", s("bench"), s("class"));
            if let Some(sum) = v.get("summary").filter(|s| s.get("candidates").is_some()) {
                let n = |k: &str| sum.get(k).and_then(Value::as_u64).unwrap_or(0);
                let f = |k: &str| sum.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                println!("candidates           : {}", n("candidates"));
                println!("configurations tested: {}", n("tested"));
                println!("replaced (static)    : {:.1}%", f("static_pct"));
                println!("replaced (dynamic)   : {:.1}%", f("dynamic_pct"));
                println!(
                    "final verification   : {}",
                    if sum.get("final_pass").and_then(Value::as_bool).unwrap_or(false) {
                        "pass"
                    } else {
                        "fail"
                    }
                );
            }
            println!(
                "modelled speedup     : {:.2}x",
                v.get("modelled_speedup").and_then(Value::as_f64).unwrap_or(0.0)
            );
            println!(
                "search wall time     : {:.2}s",
                v.get("wall_us").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6
            );
            println!(
                "cache hits           : {}",
                v.get("cache_hits").and_then(Value::as_u64).unwrap_or(0)
            );
            if let Some(n) = v.get("regressions").and_then(Value::as_u64) {
                println!("regressions          : {n} (vs previous run of this bench)");
            }
            0
        }
        "failed" | "crashed" => {
            println!("error                : {}", s("error"));
            1
        }
        _ => 0,
    }
}

/// Parse a Prometheus text exposition into `(series, value)` rows:
/// comment lines are skipped and the series string keeps its label set,
/// so lookups are exact-match on `name` or `name{labels}`.
fn parse_prom(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| {
            let (name, val) = l.rsplit_once(' ')?;
            Some((name.to_string(), val.parse().ok()?))
        })
        .collect()
}

/// Exact-name lookup in a parsed exposition.
fn prom_get(series: &[(String, f64)], name: &str) -> Option<f64> {
    series.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Sum of a job's abnormal-FP-event counters from the unified
/// exposition: NaN/Inf/underflow/subnormal results plus quantize
/// saturations and flushes. Only the job-wide totals are summed — the
/// per-instruction breakdown series (those carrying an `insn` label)
/// cover the same events and would double-count. `None` when the job
/// exported no `craft_fp_*` series at all (run without `--num-health`),
/// so the dashboard can distinguish "unobserved" from "clean".
fn fp_anomalies(series: &[(String, f64)], job: &str) -> Option<u64> {
    const FP: &[&str] = &[
        "craft_fp_nan_total",
        "craft_fp_inf_total",
        "craft_fp_underflow_total",
        "craft_fp_subnormal_total",
        "craft_fp_sat_total",
        "craft_fp_flush_total",
    ];
    let tag = format!("job=\"{job}\"");
    let mut seen = false;
    let mut sum = 0.0;
    for (name, v) in series {
        let base = name.split('{').next().unwrap_or(name);
        if base.starts_with("craft_fp_") && name.contains(&tag) {
            seen = true; // armed: `fp.result` exports even for clean runs
            if FP.contains(&base) && !name.contains("insn=\"") {
                sum += v;
            }
        }
    }
    seen.then_some(sum as u64)
}

/// One frame of `craft top`: daemon request/queue/cache lines from the
/// unified `/metrics` exposition, a latency spark-line, and a per-job
/// table; running jobs are tailed from their `live.jsonl` when the data
/// directory is known. Returns `(requests_total, now)` so the next
/// frame can show a request rate.
fn render_top(
    addr: &str,
    series: &[(String, f64)],
    jobs: &[Value],
    data_dir: Option<&Path>,
    tails: &mut HashMap<String, LiveTail>,
    prev: Option<(f64, std::time::Instant)>,
) -> (f64, std::time::Instant) {
    let now = std::time::Instant::now();
    let g = |name: &str| prom_get(series, name).unwrap_or(0.0);
    let requests = g("craft_http_requests_total");
    let rate_txt = prev
        .map(|(r0, t0)| {
            let dt = now.duration_since(t0).as_secs_f64();
            format!("  ({:.1}/s)", if dt > 0.0 { (requests - r0).max(0.0) / dt } else { 0.0 })
        })
        .unwrap_or_default();
    println!("craftd      : {addr}");
    println!(
        "requests    : {requests:.0} total{rate_txt}   in-flight {:.0}   open conns {:.0}   \
         keepalive reuse {:.0}   parse errors {:.0}",
        g("craft_http_in_flight"),
        g("craft_http_open_connections"),
        g("craft_http_keepalive_reuse_total"),
        g("craft_http_parse_errors_total"),
    );
    println!(
        "jobs        : queue {:.0}   running {:.0}   submitted {:.0}   completed {:.0}   \
         failed {:.0}   crashed {:.0}   shed {:.0}",
        g("craft_daemon_queue_depth"),
        g("craft_daemon_jobs_running"),
        g("craft_daemon_jobs_submitted_total"),
        g("craft_daemon_jobs_completed_total"),
        g("craft_daemon_jobs_failed_total"),
        g("craft_daemon_jobs_crashed_total"),
        g("craft_daemon_jobs_shed_total"),
    );
    let (hits, misses) = (g("craft_daemon_cache_hits"), g("craft_daemon_cache_misses"));
    let ratio = if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 };
    println!(
        "shared cache: {hits:.0} hits / {misses:.0} misses ({ratio:.0}%)   entries {:.0}",
        g("craft_daemon_cache_entries")
    );
    // The log2 latency histogram, rendered as per-bucket counts.
    let mut buckets: Vec<(f64, f64)> = series
        .iter()
        .filter_map(|(n, v)| {
            let le = n.strip_prefix("craft_http_latency_us_bucket{le=\"")?.strip_suffix("\"}")?;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((le, *v))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let count = g("craft_http_latency_us_count");
    if buckets.is_empty() || count <= 0.0 {
        // No latency samples yet (e.g. `--once` against a daemon that
        // has served nothing): render an explicit placeholder instead
        // of a meaningless all-zero spark-line / `mean 0us over 0`.
        println!("latency     : -");
    } else {
        let mut cum = 0.0;
        let counts: Vec<u64> = buckets
            .iter()
            .map(|(_, c)| {
                let d = (c - cum).max(0.0);
                cum = *c;
                d as u64
            })
            .collect();
        let mean = g("craft_http_latency_us_sum") / count;
        println!(
            "latency     : {}  mean {mean:.0}us over {count:.0} requests",
            sparkline(&counts, 32)
        );
    }
    if jobs.is_empty() {
        println!("\n(no jobs)");
    } else {
        println!(
            "\n{:<34}  {:<8}  {:<10}  {:>9}  {:>6}  {:>7}  live",
            "id", "state", "bench", "wall", "hits", "fp!"
        );
        for j in jobs {
            let s = |k: &str| j.get(k).and_then(Value::as_str).unwrap_or("");
            let (id, state) = (s("id"), s("state"));
            let mut live = String::new();
            if state == "running" {
                match data_dir {
                    Some(dir) => {
                        let path = dir.join("jobs").join(id).join("live.jsonl");
                        let tail =
                            tails.entry(id.to_string()).or_insert_with(|| LiveTail::new(&path));
                        if tail.poll().is_ok() {
                            let _ = tail.take_raw();
                            if let Some(p) = tail.log().latest_progress() {
                                let eta = p
                                    .eta_us
                                    .map(|e| format!("  eta ~{:.1}s", e as f64 / 1e6))
                                    .unwrap_or_default();
                                live = format!(
                                    "{} {}/{}{eta}",
                                    p.progress.phase, p.progress.done, p.progress.total_estimate
                                );
                            }
                        }
                    }
                    None => live = "(pass --data=DIR to tail)".into(),
                }
            }
            println!(
                "{:<34}  {:<8}  {:<10}  {:>8.2}s  {:>6}  {:>7}  {live}",
                id,
                state,
                format!("{}.{}", s("bench"), s("class")),
                j.get("wall_us").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6,
                j.get("cache_hits").and_then(Value::as_u64).unwrap_or(0),
                fp_anomalies(series, id).map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            );
        }
    }
    (requests, now)
}

/// Human name for a config flag token as stored in decision records.
fn flag_name(tok: &str) -> &'static str {
    match tok {
        "d" => "double",
        "s" => "single",
        "h" => "half",
        "b" => "bf16",
        "i" => "ignored",
        _ => "custom",
    }
}

/// `craft explain`: per-instruction decision timelines from a run
/// directory's `decisions.jsonl`, then the numerical-health hot lists
/// from its trace snapshot. Every line of a timeline names the exact
/// evidence the search acted on — the unit that passed or failed at
/// each lattice level, the verdict, the shadow error metric, or the
/// range-guard envelope that refused a demotion — so "why is this
/// instruction half?" has a mechanical answer.
fn render_explain(
    dir: &Path,
    records: &[mpsearch::decisions::DecisionRecord],
    insn: Option<u64>,
    func: Option<&str>,
    top: usize,
) {
    use mpsearch::decisions::DecisionEvent as Ev;
    let replaced =
        records.iter().filter(|r| r.final_format != "d" && r.final_format != "i").count();
    let ignored = records.iter().filter(|r| matches!(r.events.as_slice(), [Ev::Ignored])).count();
    println!("run        : {}", dir.display());
    println!(
        "decisions  : {} instructions ({replaced} replaced, {} kept double, {ignored} ignored)",
        records.len(),
        records.len() - replaced - ignored,
    );
    let filtered = insn.is_some() || func.is_some();
    let shown: Vec<_> = records
        .iter()
        .filter(|r| {
            if let Some(a) = insn {
                return r.addr == a;
            }
            if let Some(f) = func {
                return r.func == f;
            }
            // Unfiltered view: skip the ignored bulk (loads, stores,
            // control flow) — a filter brings them back.
            !matches!(r.events.as_slice(), [Ev::Ignored])
        })
        .collect();
    if filtered && shown.is_empty() {
        println!("\n(no instructions match the filter)");
    }
    for r in &shown {
        println!("\ninsn {:>3} @{:#x}  {}", r.insn, r.addr, r.label);
        println!("  final : {} ({})", r.final_format, flag_name(&r.final_format));
        for ev in &r.events {
            match ev {
                Ev::Passed { level, format, unit } => {
                    println!("  - passed        level {level} ({format}) in {unit}");
                }
                Ev::Failed { level, format, verdict, unit, shadow_err } => {
                    let err =
                        shadow_err.map(|e| format!("  shadow-err {e:.3e}")).unwrap_or_default();
                    println!(
                        "  - failed        level {level} ({format}) verdict {} in {unit}{err}",
                        verdict.as_str()
                    );
                }
                Ev::GuardRefused { format, class, max_abs, min_abs, bound } => {
                    println!(
                        "  - guard-refused {format}: {class} observed |x| in \
                         [{min_abs:.3e}, {max_abs:.3e}], bound {bound:.3e}"
                    );
                }
                Ev::ShadowPruned { level, format, err, threshold, unit } => {
                    println!(
                        "  - shadow-pruned level {level} ({format}): predicted err {err:.3e} \
                         > threshold {threshold:.3e} in {unit}"
                    );
                }
                Ev::Dropped { unit } => {
                    println!("  - dropped       by second phase from passing unit {unit}");
                }
                Ev::Ignored => println!("  - ignored       (not a tunable FP instruction)"),
            }
        }
        if r.events.is_empty() {
            println!("  - untested      (kept at base format; never isolated by the search)");
        }
    }
    render_num_health(dir, records, top);
}

/// The numerical-health tail of `craft explain`: totals plus hot lists
/// ("top NaN producers", "insns saturating at bf16") from the run's
/// `fp.*` counter family. Absent counters mean the run was not armed —
/// say so instead of printing an empty section.
fn render_num_health(dir: &Path, records: &[mpsearch::decisions::DecisionRecord], top: usize) {
    let snap = match load_run_snapshot(dir) {
        Ok(s) => s,
        Err(_) => {
            println!("\nnumerical health: (no trace snapshot in this run directory)");
            return;
        }
    };
    if !snap.counters.keys().any(|k| k.starts_with("fp.")) {
        println!(
            "\nnumerical health: (none recorded — rerun `craft analyze --num-health --trace=DIR`)"
        );
        return;
    }
    let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    println!("\n--- numerical health ---");
    println!(
        "fp results : {}   nan {}   inf {}   underflow {}   subnormal {}",
        c("fp.result"),
        c("fp.nan"),
        c("fp.inf"),
        c("fp.underflow"),
        c("fp.subnormal")
    );
    for (k, v) in &snap.counters {
        let Some(fmt) = k.strip_prefix("fp.quantize.") else { continue };
        println!(
            "quantize   : {fmt} {v}   sat {}   flush {}",
            c(&format!("fp.sat.{fmt}")),
            c(&format!("fp.flush.{fmt}"))
        );
    }
    let labels: HashMap<u32, &str> = records.iter().map(|r| (r.insn, r.label.as_str())).collect();
    // Per-instruction series are `fp.<kind>.i<id>` where <kind> is
    // `nan`/`inf`/`underflow`/`subnormal`/`sat.<fmt>`/`flush.<fmt>`.
    let mut by_kind: std::collections::BTreeMap<&str, Vec<(u64, u32)>> = Default::default();
    for (k, v) in &snap.counters {
        let Some(rest) = k.strip_prefix("fp.") else { continue };
        let Some((kind, id)) = rest.rsplit_once(".i") else { continue };
        let Ok(id) = id.parse::<u32>() else { continue };
        by_kind.entry(kind).or_default().push((*v, id));
    }
    let hot = |kind: &str, title: String| {
        let Some(rows) = by_kind.get(kind) else { return };
        let mut rows = rows.clone();
        rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        println!("{title}:");
        for (v, id) in rows.iter().take(top) {
            println!("  {v:>10}  insn {id:>3}  {}", labels.get(id).copied().unwrap_or("?"));
        }
    };
    hot("nan", "top NaN producers".into());
    hot("inf", "top Inf producers".into());
    hot("underflow", "top underflow-to-zero sites".into());
    hot("subnormal", "top subnormal producers".into());
    for kind in by_kind.keys() {
        if let Some(fmt) = kind.strip_prefix("sat.") {
            hot(kind, format!("insns saturating at {fmt}"));
        }
    }
    for kind in by_kind.keys() {
        if let Some(fmt) = kind.strip_prefix("flush.") {
            hot(kind, format!("insns flushing to zero at {fmt}"));
        }
    }
}

/// Restore the default SIGPIPE disposition so `craft … | head` dies
/// quietly instead of panicking on the broken pipe (Rust's runtime
/// ignores SIGPIPE by default). Hand-rolled signal(2) binding — the
/// toolchain has no libc crate (same idiom as craftd's handlers).
#[cfg(unix)]
fn restore_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_sigpipe() {}

fn main() {
    restore_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };

    let cmd = positional.first().copied().unwrap_or("help");
    match cmd {
        "list" => {
            println!("benchmarks: {}", BENCHES.join(", "));
            println!("classes:    s (sample), w (workstation), a, c");
        }
        "report" => {
            let path = positional
                .get(1)
                .copied()
                .unwrap_or_else(|| usage("usage: craft report <events.jsonl|run-dir> [--top=N]"));
            let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(5);
            if Path::new(path).is_dir() {
                // A run directory as written by `craft analyze --trace=DIR`:
                // digest whatever artifacts it holds and note the rest, so a
                // partial (crashed, rsynced, pruned) directory still reports.
                let dir = Path::new(path);
                let mut reported = false;
                let mut absent: Vec<&str> = Vec::new();
                match load_run_manifest(dir) {
                    Some(m) => {
                        println!(
                            "run         : {} ({}.{}, tol {:e}, {} threads{})",
                            m.id,
                            m.bench,
                            m.class,
                            m.tol,
                            m.threads,
                            if m.git.is_empty() {
                                String::new()
                            } else {
                                format!(", git {}", m.git)
                            }
                        );
                        println!("wall time   : {:.2}s", m.wall_us as f64 / 1e6);
                        if let Some(s) = &m.summary {
                            println!(
                                "summary     : {} tested / {} candidates, static {:.1}%, \
                                 dynamic {:.1}%, final {}",
                                s.tested,
                                s.candidates,
                                s.static_pct,
                                s.dynamic_pct,
                                if s.final_pass { "pass" } else { "fail" }
                            );
                        }
                        reported = true;
                    }
                    None => absent.push("manifest.json"),
                }
                let events = dir.join("events.jsonl");
                if events.is_file() {
                    if reported {
                        println!();
                    }
                    match render_report(&events.display().to_string(), top) {
                        Ok(()) => reported = true,
                        Err(e) => eprintln!("craft: warning: {e}"),
                    }
                } else {
                    absent.push("events.jsonl");
                }
                let trace = dir.join("trace.jsonl");
                let live = dir.join("live.jsonl");
                if trace.is_file() {
                    match try_load_snapshot(&trace.display().to_string()) {
                        Ok(snap) => {
                            if reported {
                                println!();
                            }
                            render_trace_report(&trace.display().to_string(), &snap, top);
                            reported = true;
                        }
                        Err(e) => eprintln!("craft: warning: {e}"),
                    }
                } else {
                    absent.push("trace.jsonl");
                    // A run that crashed mid-search leaves only the live
                    // stream; fold it into a snapshot so something renders.
                    if live.is_file() {
                        match LiveLog::from_file(&live) {
                            Ok(log) => {
                                if let Some(w) = &log.warning {
                                    eprintln!("craft: warning: {}: {w}", live.display());
                                }
                                if reported {
                                    println!();
                                }
                                println!(
                                    "(trace.jsonl absent; folded {} delta(s) from live.jsonl)",
                                    log.deltas.len()
                                );
                                render_trace_report(
                                    &live.display().to_string(),
                                    &log.final_snapshot(),
                                    top,
                                );
                                reported = true;
                            }
                            Err(e) => eprintln!("craft: warning: {e}"),
                        }
                    }
                }
                if !live.is_file() {
                    absent.push("live.jsonl");
                }
                if !absent.is_empty() {
                    println!("\n(absent from run directory: {})", absent.join(", "));
                }
                if !reported {
                    fail(format!(
                        "{path}: nothing reportable (no readable manifest.json, events.jsonl, \
                         trace.jsonl, or live.jsonl)"
                    ));
                }
            } else {
                render_report(path, top).unwrap_or_else(|e| fail(e));
            }
        }
        "metrics" => {
            let path = positional.get(1).copied().unwrap_or_else(|| {
                usage("usage: craft metrics <trace.jsonl> [--prom=FILE] [--folded=FILE]")
            });
            let snap = load_snapshot(path);
            let prom_out = opt("--prom");
            let folded_out = opt("--folded");
            if let Some(f) = &folded_out {
                std::fs::write(f, sinks::folded(&snap))
                    .unwrap_or_else(|e| fail(format!("cannot write {f}: {e}")));
                eprintln!("folded stacks written to {f}");
            }
            match &prom_out {
                Some(f) => {
                    std::fs::write(f, sinks::prometheus(&snap))
                        .unwrap_or_else(|e| fail(format!("cannot write {f}: {e}")));
                    eprintln!("prometheus exposition written to {f}");
                }
                // default: exposition on stdout unless --folded alone was asked for
                None if folded_out.is_none() => print!("{}", sinks::prometheus(&snap)),
                None => {}
            }
        }
        "analyze" | "shadow" | "overhead" | "tree" | "config" => {
            let bench = positional.get(1).copied().unwrap_or_else(|| {
                eprintln!("usage: craft {cmd} <bench> [class]");
                std::process::exit(2);
            });
            let class = parse_class(positional.get(2).copied());
            let threads = opt("--threads")
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(SearchOptions::default_threads);
            let stop_depth = match opt("--stop-depth").as_deref() {
                Some("f") => StopDepth::Function,
                Some("b") => StopDepth::Block,
                _ => StopDepth::Instruction,
            };
            let backend = match opt("--backend") {
                Some(s) => fpvm::Backend::parse(&s).unwrap_or_else(|| {
                    fail(format!("unknown backend `{s}` (interp|fast|compiled)"))
                }),
                None => fpvm::Backend::default(),
            };
            // --lattice=s,h: the precision levels the search descends
            // through. Absent = the classic single-only search, which
            // keeps the manifest's lattice field empty.
            let lattice =
                opt("--lattice").map(|s| mpconfig::parse_lattice(&s).unwrap_or_else(|e| usage(&e)));
            let workload = build(bench, class);
            let tol = workload.tol;
            let mut sys = AnalysisSystem::with_options(
                workload,
                AnalysisOptions {
                    search: SearchOptions {
                        threads,
                        stop_depth,
                        binary_split: !flag("--no-split"),
                        prioritize: !flag("--no-priority"),
                        second_phase: flag("--second-phase"),
                        lattice: lattice
                            .clone()
                            .unwrap_or_else(|| SearchOptions::default().lattice),
                        ..Default::default()
                    },
                    rewrite: instrument::RewriteOptions {
                        lean: flag("--lean"),
                        ..Default::default()
                    },
                    shadow: ShadowOptions {
                        prioritize: flag("--shadow-priority"),
                        prune: flag("--shadow-prune"),
                        ..Default::default()
                    },
                    backend,
                    num_health: flag("--num-health"),
                },
            );
            match cmd {
                "analyze" => {
                    // --trace=DIR collects a full run directory: the JSONL
                    // event log plus the span/metric/hot-spot snapshot.
                    let trace_dir = opt("--trace");
                    let tracer = trace_dir.as_ref().map(|dir| {
                        std::fs::create_dir_all(dir)
                            .unwrap_or_else(|e| fail(format!("cannot create {dir}: {e}")));
                        Tracer::new()
                    });
                    if let Some(t) = &tracer {
                        sys.set_tracer(t.clone());
                    }
                    // Every traced run also streams live telemetry: the sink
                    // is interval- and delta-gated, so this is nearly free.
                    let stream = match (&tracer, &trace_dir) {
                        (Some(t), Some(dir)) => {
                            let path = format!("{dir}/live.jsonl");
                            match StreamSink::to_file(&path, t, StreamOptions::default()) {
                                Ok(s) => Some(s),
                                Err(e) => {
                                    eprintln!("craft: warning: cannot stream to {path}: {e}");
                                    None
                                }
                            }
                        }
                        _ => None,
                    };
                    let events_path = opt("--events")
                        .or_else(|| trace_dir.as_ref().map(|d| format!("{d}/events.jsonl")));
                    let events = events_path.map(|path| {
                        EventLog::to_file(&path).unwrap_or_else(|e| {
                            fail(format!("cannot create event log {path}: {e}"))
                        })
                    });
                    let hooks = SearchHooks {
                        bench: format!("{bench}.{class}"),
                        faults: FaultPlan {
                            panic_at: opt("--inject-panic")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            timeout_at: opt("--inject-timeout")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            ..Default::default()
                        },
                        events: events.as_ref(),
                        shadow: None,
                        tracer: None,
                        stream: stream.as_ref(),
                        pool: None,
                    };
                    let rec = sys.recommend_with(&hooks);
                    let r = &rec.report;
                    println!("benchmark            : {bench}.{class}");
                    println!("candidates           : {}", r.candidates);
                    println!("configurations tested: {}", r.configs_tested);
                    println!("replaced (static)    : {:.1}%", r.static_pct);
                    println!("replaced (dynamic)   : {:.1}%", r.dynamic_pct);
                    println!(
                        "final verification   : {}",
                        if r.final_pass { "pass" } else { "fail" }
                    );
                    println!("modelled speedup     : {:.2}x", rec.modelled_speedup);
                    println!("search wall time     : {:.2?}", r.elapsed);
                    if r.timeouts + r.crashes + r.retries + r.quarantined > 0 {
                        println!(
                            "executor faults      : {} timeouts, {} crashes, {} retries, {} quarantined",
                            r.timeouts, r.crashes, r.retries, r.quarantined
                        );
                    }
                    if r.pruned_by_shadow > 0 {
                        println!("shadow-pruned        : {}", r.pruned_by_shadow);
                    }
                    if r.guard_refused > 0 {
                        println!("guard-refused        : {}", r.guard_refused);
                    }
                    if lattice.is_some() {
                        let rows: Vec<String> = r
                            .format_breakdown(sys.tree())
                            .into_iter()
                            .map(|(tok, n)| format!("{tok}:{n}"))
                            .collect();
                        println!("precision breakdown  : {}", rows.join("  "));
                    }
                    println!("\n--- recommended configuration ---");
                    print!("{}", rec.config_text);
                    if let (Some(t), Some(dir)) = (&tracer, &trace_dir) {
                        let path = format!("{dir}/trace.jsonl");
                        std::fs::write(&path, t.snapshot().to_jsonl())
                            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
                        eprintln!("trace written to {path}");
                        // Decision provenance rides along with every traced
                        // run: one record per instruction explaining why it
                        // ended up at its final format. `craft explain`
                        // renders these.
                        let dpath = std::path::Path::new(dir).join("decisions.jsonl");
                        match mpsearch::decisions::save(&dpath, &r.decisions) {
                            Ok(()) => eprintln!("decisions written to {}", dpath.display()),
                            Err(e) => eprintln!("craft: warning: cannot write decisions: {e}"),
                        }
                        // Stamp the run directory with a manifest and record
                        // it in the registry; neither is allowed to fail the
                        // analysis that already succeeded.
                        drop(stream);
                        let created = registry::unix_now();
                        let manifest = RunManifest {
                            id: registry::new_run_id(bench, created),
                            bench: bench.to_string(),
                            class: class.to_string(),
                            backend: backend.name().to_string(),
                            lattice: lattice
                                .as_deref()
                                .map(mpconfig::lattice_tokens)
                                .unwrap_or_default(),
                            config_hash: registry::fnv1a64(&rec.config_text),
                            trace_id: String::new(), // in-process run: no cross-process trace
                            tol,
                            threads,
                            git: git_describe(),
                            created_unix: created,
                            wall_us: r.elapsed.as_micros() as u64,
                            summary: Some(summary_of(r)),
                            bench_min_ns: Default::default(),
                        };
                        match manifest.save(dir) {
                            Ok(()) => eprintln!("manifest written to {dir}/manifest.json"),
                            Err(e) => eprintln!("craft: warning: cannot write manifest: {e}"),
                        }
                        if let Some(reg) = open_registry(opt("--registry").as_deref()) {
                            match reg.record(&manifest, dir) {
                                Ok(()) => eprintln!(
                                    "run {} recorded in {}",
                                    manifest.id,
                                    reg.dir().display()
                                ),
                                Err(e) => eprintln!("craft: warning: cannot record run: {e}"),
                            }
                        }
                    }
                }
                "shadow" => {
                    let profile = sys.shadow_profile();
                    let tree = sys.tree();
                    println!("benchmark            : {bench}.{class}");
                    println!("instructions shadowed: {}", profile.len());
                    println!(
                        "shadowed executions  : {}",
                        profile.insns.values().map(|s| s.count).sum::<u64>()
                    );
                    println!("cancellation events  : {}", profile.total_cancellations());

                    // label lookup: instruction id -> structure-tree position
                    let mut labels = HashMap::new();
                    for (mi, m) in tree.modules.iter().enumerate() {
                        for (fi, f) in m.funcs.iter().enumerate() {
                            for (bi, b) in f.blocks.iter().enumerate() {
                                for (ii, e) in b.insns.iter().enumerate() {
                                    labels.insert(e.id.0, mpconfig::NodeRef::Insn(mi, fi, bi, ii));
                                }
                            }
                        }
                    }
                    let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(10);
                    let mut ranked: Vec<_> = profile.insns.iter().collect();
                    ranked.sort_by(|a, b| b.1.max_rel.total_cmp(&a.1.max_rel).then(a.0.cmp(b.0)));
                    println!("\ntop {} by max divergence:", top.min(ranked.len()));
                    println!(
                        "  {:>9}  {:>9}  {:>8}  {:>7}  insn",
                        "max_rel", "mean_rel", "count", "cancels"
                    );
                    for (id, s) in ranked.iter().take(top) {
                        let label = labels
                            .get(id)
                            .map(|&n| tree.label(n))
                            .unwrap_or_else(|| format!("insn {id}"));
                        println!(
                            "  {:>9.2e}  {:>9.2e}  {:>8}  {:>7}  {label}",
                            s.max_rel,
                            s.mean_rel(),
                            s.count,
                            s.cancels
                        );
                    }

                    let blocks = profile.block_aggregates(tree);
                    if !blocks.is_empty() {
                        println!("\nper-block aggregates:");
                        println!("  {:>9}  {:>8}  {:>7}  block", "max_rel", "count", "cancels");
                        for (node, agg) in &blocks {
                            println!(
                                "  {:>9.2e}  {:>8}  {:>7}  {}",
                                agg.max_rel,
                                agg.count,
                                agg.cancels,
                                tree.label(*node)
                            );
                        }
                    }

                    if let Some(path) = opt("--out") {
                        profile
                            .to_file(&path)
                            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
                        println!("\nprofile written to {path}");
                    }
                }
                "overhead" => {
                    let o = sys.overhead_all_double();
                    println!("benchmark    : {bench}.{class}");
                    println!("instrumented : {} candidates", o.instrumented);
                    println!("wall ratio   : {:.1}X", o.wall_x);
                    println!("steps ratio  : {:.1}X", o.steps_x);
                }
                "tree" => print!("{}", render_tree(sys.tree(), sys.base_config())),
                "config" => print!("{}", print_config(sys.tree(), sys.base_config())),
                _ => unreachable!(),
            }
        }
        "submit" => {
            let bench = positional.get(1).copied().unwrap_or_else(|| {
                usage(
                    "usage: craft submit <bench> [class] [--daemon=HOST:PORT] [--follow] \
                     [analyze flags]",
                )
            });
            let class = positional.get(2).copied().unwrap_or("w");
            let parse_num = |name: &str| -> Option<u64> {
                opt(name).map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| usage(&format!("{name} wants a number, got {v:?}")))
                })
            };
            let spec = JobSpec {
                bench: bench.to_string(),
                class: class.to_string(),
                backend: opt("--backend").unwrap_or_default(),
                lattice: opt("--lattice").unwrap_or_default(),
                tol: opt("--tol").map(|v| {
                    v.parse().unwrap_or_else(|_| usage(&format!("--tol wants a number, got {v:?}")))
                }),
                threads: parse_num("--threads").map(|n| n as usize),
                stop_depth: opt("--stop-depth").unwrap_or_default(),
                second_phase: flag("--second-phase"),
                binary_split: !flag("--no-split"),
                prioritize: !flag("--no-priority"),
                lean: flag("--lean"),
                shadow_priority: flag("--shadow-priority"),
                shadow_prune: flag("--shadow-prune"),
                max_tests: parse_num("--max-tests").map(|n| n as usize),
                fuel_limit: parse_num("--fuel-limit"),
                wall_limit_ms: parse_num("--wall-limit-ms"),
                batch: parse_num("--batch").map(|n| n as usize).unwrap_or(1),
                num_health: flag("--num-health"),
                inject_runner_panic: false,
            };
            spec.validate().unwrap_or_else(|e| usage(&e));
            let addr = daemon_addr(opt("--daemon"));
            // Mint the cross-process trace id here, at the origin of the
            // request chain: it links this submit to the daemon's log,
            // the job record/manifest, and the run-dir spans.
            let trace = registry::new_run_id("tr", registry::unix_now());
            let mut conn = None;
            let (code, body) = http_request(
                &mut conn,
                &addr,
                "POST",
                "/jobs",
                Some(&spec.to_json()),
                Some(&trace),
            )
            .unwrap_or_else(|e| fail(e));
            if code != 202 {
                fail(format!("daemon {addr} rejected the job ({code}): {}", daemon_error(&body)));
            }
            let id = json::parse(&body)
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
                .unwrap_or_else(|| fail(format!("daemon returned no job id: {body}")));
            if !flag("--follow") {
                // The id alone on stdout, for scripting; decoration on stderr.
                eprintln!("craft: job {id} queued on {addr} (trace {trace})");
                println!("{id}");
            } else {
                eprintln!("craft: job {id} queued on {addr}, following live stream");
                let mut records = 0usize;
                let code = http_exchange(
                    &mut conn,
                    &addr,
                    "GET",
                    &format!("/jobs/{id}/live"),
                    None,
                    Some(&trace),
                    &mut |piece| records += piece.lines().count(),
                )
                .unwrap_or_else(|e| fail(e));
                if code != 200 {
                    fail(format!("daemon {addr} refused the live stream ({code})"));
                }
                eprintln!("craft: followed {records} live records to completion");
                let (code, body) = http_request(
                    &mut conn,
                    &addr,
                    "GET",
                    &format!("/jobs/{id}"),
                    None,
                    Some(&trace),
                )
                .unwrap_or_else(|e| fail(e));
                if code != 200 {
                    fail(format!("daemon {addr} answered {code}: {}", daemon_error(&body)));
                }
                let v = json::parse(&body)
                    .unwrap_or_else(|e| fail(format!("malformed job record: {e}")));
                let rc = render_job_record(&v);
                if rc != 0 {
                    std::process::exit(rc);
                }
            }
        }
        "status" => {
            let id = positional
                .get(1)
                .copied()
                .unwrap_or_else(|| usage("usage: craft status <job-id> [--daemon=HOST:PORT]"));
            let addr = daemon_addr(opt("--daemon"));
            let (code, body) =
                http_request(&mut None, &addr, "GET", &format!("/jobs/{id}"), None, None)
                    .unwrap_or_else(|e| fail(e));
            if code != 200 {
                fail(format!("daemon {addr} answered {code}: {}", daemon_error(&body)));
            }
            let v =
                json::parse(&body).unwrap_or_else(|e| fail(format!("malformed job record: {e}")));
            let rc = render_job_record(&v);
            if rc != 0 {
                std::process::exit(rc);
            }
        }
        "jobs" => {
            let addr = daemon_addr(opt("--daemon"));
            let (code, body) = http_request(&mut None, &addr, "GET", "/jobs", None, None)
                .unwrap_or_else(|e| fail(e));
            if code != 200 {
                fail(format!("daemon {addr} answered {code}: {}", daemon_error(&body)));
            }
            let v = json::parse(&body).unwrap_or_else(|e| fail(format!("malformed job list: {e}")));
            let jobs = v.as_arr().unwrap_or(&[]);
            println!("daemon      : {addr}");
            if jobs.is_empty() {
                println!("(no jobs)");
            } else {
                println!(
                    "{:<34}  {:<8}  {:<10}  {:>9}  {:>6}",
                    "id", "state", "bench", "wall", "hits"
                );
                for j in jobs {
                    let s = |k: &str| j.get(k).and_then(Value::as_str).unwrap_or("");
                    println!(
                        "{:<34}  {:<8}  {:<10}  {:>8.2}s  {:>6}",
                        s("id"),
                        s("state"),
                        format!("{}.{}", s("bench"), s("class")),
                        j.get("wall_us").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6,
                        j.get("cache_hits").and_then(Value::as_u64).unwrap_or(0),
                    );
                }
            }
        }
        "top" => {
            let addr = daemon_addr(opt("--daemon"));
            let once = flag("--once");
            let interval = opt("--interval-ms").and_then(|v| v.parse().ok()).unwrap_or(1000u64);
            // The daemon's data directory, for tailing running jobs'
            // live streams; without it the dashboard degrades to the
            // HTTP-only view.
            let data_dir: Option<PathBuf> = opt("--data")
                .map(PathBuf::from)
                .or_else(|| {
                    std::env::var("CRAFTD_DATA").ok().filter(|s| !s.is_empty()).map(PathBuf::from)
                })
                .or_else(|| {
                    std::env::var_os("HOME")
                        .map(|h| PathBuf::from(h).join(".craft").join("craftd"))
                        .filter(|p| p.is_dir())
                });
            let mut conn = None;
            let mut tails: HashMap<String, LiveTail> = HashMap::new();
            let mut prev: Option<(f64, std::time::Instant)> = None;
            loop {
                let (code, metrics) = http_request(&mut conn, &addr, "GET", "/metrics", None, None)
                    .unwrap_or_else(|e| fail(e));
                if code != 200 {
                    fail(format!("daemon {addr} answered {code} for /metrics"));
                }
                let (code, jobs_body) = http_request(&mut conn, &addr, "GET", "/jobs", None, None)
                    .unwrap_or_else(|e| fail(e));
                if code != 200 {
                    fail(format!("daemon {addr} answered {code} for /jobs"));
                }
                let series = parse_prom(&metrics);
                let jobs_v = json::parse(&jobs_body)
                    .unwrap_or_else(|e| fail(format!("malformed job list: {e}")));
                if !once {
                    print!("\x1b[2J\x1b[H"); // clear screen between frames
                }
                prev = Some(render_top(
                    &addr,
                    &series,
                    jobs_v.as_arr().unwrap_or(&[]),
                    data_dir.as_deref(),
                    &mut tails,
                    prev,
                ));
                if once {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(interval));
            }
        }
        "runs" => {
            let reg = open_registry(opt("--registry").as_deref()).unwrap_or_else(|| {
                fail("no registry available (set --registry=DIR, $CRAFT_REGISTRY, or $HOME)".into())
            });
            let (mut entries, warn) = reg.entries().unwrap_or_else(|e| fail(e));
            if let Some(w) = warn {
                eprintln!("craft: warning: {}: {w}", reg.dir().display());
            }
            if let Some(b) = opt("--bench") {
                entries.retain(|e| e.bench == b);
            }
            println!("registry    : {}", reg.dir().display());
            if entries.is_empty() {
                println!("(no recorded runs)");
            } else {
                println!(
                    "{:<34}  {:<8}  {:>9}  {:<5}  {:<20}  path",
                    "id", "bench", "wall", "final", "trace"
                );
                for e in &entries {
                    // The index line itself carries no trace id; pull it
                    // from the run's manifest. Blank for legacy manifests
                    // (pre-trace-propagation) and unreadable run dirs.
                    let trace = load_run_manifest(&e.path).map(|m| m.trace_id).unwrap_or_default();
                    println!(
                        "{:<34}  {:<8}  {:>8.2}s  {:<5}  {:<20}  {}",
                        e.id,
                        e.bench,
                        e.wall_us as f64 / 1e6,
                        if e.final_pass { "pass" } else { "fail" },
                        trace,
                        e.path.display()
                    );
                }
            }
        }
        "explain" => {
            let arg = positional.get(1).copied().unwrap_or_else(|| {
                usage("usage: craft explain <run-dir|latest> [--insn=ADDR] [--func=NAME] [--top=N]")
            });
            let run = resolve_run_arg(arg, opt("--registry").as_deref());
            let dir = if run.is_dir() {
                run.clone()
            } else {
                run.parent().map(Path::to_path_buf).unwrap_or(run)
            };
            let dpath = dir.join("decisions.jsonl");
            if !dpath.is_file() {
                fail(format!(
                    "{}: no decisions.jsonl — record one with `craft analyze <bench> --trace={}`",
                    dir.display(),
                    dir.display()
                ));
            }
            let (records, warn) = mpsearch::decisions::load(&dpath).unwrap_or_else(|e| fail(e));
            if let Some(w) = warn {
                eprintln!("craft: warning: {}: {w}", dpath.display());
            }
            let insn_filter = opt("--insn").map(|s| {
                let s = s.trim().to_string();
                s.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| s.parse())
                    .unwrap_or_else(|_| usage(&format!("--insn wants an address, got {s:?}")))
            });
            let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(5);
            render_explain(&dir, &records, insn_filter, opt("--func").as_deref(), top);
        }
        "watch" => {
            let arg = positional.get(1).copied().unwrap_or("latest");
            let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(5);
            let run = resolve_run_arg(arg, opt("--registry").as_deref());
            let live = if run.is_dir() { run.join("live.jsonl") } else { run.clone() };
            let manifest = load_run_manifest(&run);
            let follow = flag("--follow");
            if !live.is_file() {
                fail(format!("cannot read {}: no such file", live.display()));
            }
            // Tail by byte offset: each frame folds only the lines
            // appended since the last poll instead of re-reading the
            // whole stream, so following a long run stays O(delta).
            let mut tail = LiveTail::new(&live);
            loop {
                tail.poll().unwrap_or_else(|e| fail(e));
                let _ = tail.take_raw(); // unneeded here; keep the buffer empty
                render_watch(&run.display().to_string(), tail.log(), manifest.as_ref(), top);
                let done = tail.log().latest_progress().is_some_and(|p| p.progress.phase == "done");
                if !follow || done {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
                println!();
            }
        }
        "compare" => {
            let a = positional.get(1).copied().unwrap_or_else(|| {
                usage("usage: craft compare <run-a> <run-b> [--warn-only] [--top=N]")
            });
            let b = positional.get(2).copied().unwrap_or_else(|| {
                usage("usage: craft compare <run-a> <run-b> [--warn-only] [--top=N]")
            });
            let reg_flag = opt("--registry");
            let pa = resolve_run_arg(a, reg_flag.as_deref());
            let pb = resolve_run_arg(b, reg_flag.as_deref());
            let sa = load_run_snapshot(&pa).unwrap_or_else(|e| fail(e));
            let sb = load_run_snapshot(&pb).unwrap_or_else(|e| fail(e));
            let ma = load_run_manifest(&pa);
            let mb = load_run_manifest(&pb);
            let mut copts = CompareOptions::default();
            if let Some(v) = opt("--counter-pct").and_then(|v| v.parse().ok()) {
                copts.counter_pct = v;
            }
            if let Some(v) = opt("--cycles-pct").and_then(|v| v.parse().ok()) {
                copts.cycles_pct = v;
            }
            if let Some(v) = opt("--quantile-pct").and_then(|v| v.parse().ok()) {
                copts.quantile_pct = v;
            }
            if let Some(v) = opt("--min-cycles").and_then(|v| v.parse().ok()) {
                copts.min_cycles = v;
            }
            if let Some(v) = opt("--top").and_then(|v| v.parse().ok()) {
                copts.top = v;
            }
            let rep = compare(
                &sa,
                &sb,
                &pa.display().to_string(),
                &pb.display().to_string(),
                ma.as_ref(),
                mb.as_ref(),
                &copts,
            );
            print!("{}", rep.text);
            if !rep.regressions.is_empty() && !flag("--warn-only") {
                std::process::exit(1);
            }
        }
        _ => {
            println!("craft — automatic mixed-precision analysis (paper reproduction)");
            println!();
            println!("usage:");
            println!("  craft list");
            println!("  craft analyze  <bench> [class] [--second-phase] [--stop-depth=f|b|i]");
            println!("                 [--no-split] [--no-priority] [--lean] [--threads=N]");
            println!("                 [--backend=interp|fast|compiled] [--lattice=s,h|s,b|...]");
            println!("                 [--shadow-priority] [--shadow-prune] [--num-health]");
            println!("                 [--events=FILE] [--trace=DIR] [--registry=DIR]");
            println!("                 [--inject-panic=IDX[,IDX..]]");
            println!("                 [--inject-timeout=IDX[,IDX..]]");
            println!("  craft shadow   <bench> [class] [--top=N] [--out=FILE]");
            println!("                 [--backend=interp|fast|compiled]");
            println!("  craft overhead <bench> [class]");
            println!("  craft tree     <bench> [class]");
            println!("  craft config   <bench> [class]");
            println!("  craft report   <events.jsonl|run-dir> [--top=N]");
            println!("  craft metrics  <trace.jsonl> [--prom=FILE] [--folded=FILE]");
            println!("  craft runs     [--registry=DIR] [--bench=NAME]");
            println!("  craft explain  <run-dir|latest> [--insn=ADDR] [--func=NAME] [--top=N]");
            println!("                 [--registry=DIR]");
            println!("  craft watch    [run-dir|latest] [--top=N] [--follow] [--registry=DIR]");
            println!("  craft compare  <run-a> <run-b> [--warn-only] [--top=N]");
            println!("                 [--counter-pct=P] [--cycles-pct=P] [--quantile-pct=P]");
            println!("                 [--min-cycles=N] [--registry=DIR]");
            println!("  craft submit   <bench> [class] [--daemon=HOST:PORT] [--follow]");
            println!("                 [--tol=T] [--max-tests=N] [--fuel-limit=N]");
            println!("                 [--wall-limit-ms=N] [--batch=N] [analyze flags]");
            println!("  craft status   <job-id> [--daemon=HOST:PORT]");
            println!("  craft jobs     [--daemon=HOST:PORT]");
            println!("  craft top      [--daemon=HOST:PORT] [--data=DIR] [--once]");
            println!("                 [--interval-ms=N]");
            println!();
            println!("daemon mode talks to a running `craftd` (default 127.0.0.1:7050,");
            println!("override with --daemon or $CRAFTD_ADDR).");
        }
    }
}
