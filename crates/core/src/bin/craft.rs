//! `craft` — the command-line front end to the mixed-precision analysis
//! system, operating on the bundled benchmark programs.
//!
//! ```text
//! craft list                          # available benchmarks
//! craft analyze <bench> [class]      # full search + recommendation
//! craft shadow <bench> [class]       # shadow-value sensitivity analysis
//! craft overhead <bench> [class]     # all-double instrumentation cost
//! craft tree <bench> [class]         # structure tree (Fig. 4 view)
//! craft config <bench> [class]       # initial config file (Fig. 3)
//! craft report <events.jsonl>        # digest a search event log
//! ```
//!
//! Options for `analyze`: `--second-phase`, `--stop-depth=f|b|i`,
//! `--no-split`, `--no-priority`, `--lean`, `--threads=N`,
//! `--shadow-priority` / `--shadow-prune` (shadow-value search
//! guidance), `--events=FILE` (JSONL event log), and the
//! fault-injection drills `--inject-panic=IDX[,IDX…]` /
//! `--inject-timeout=IDX[,IDX…]`.

use mixedprec::{AnalysisOptions, AnalysisSystem, ShadowOptions, StopDepth};
use mpconfig::editor::render_tree;
use mpconfig::print_config;
use mpsearch::events::{Event, EventLog, Record};
use mpsearch::{FaultPlan, SearchHooks, SearchOptions, Verdict};
use std::collections::HashMap;
use workloads::{Class, Workload};

const BENCHES: &[&str] =
    &["bt", "cg", "ep", "ft", "lu", "mg", "sp", "amg", "slu", "mathmix", "vecops"];

fn build(bench: &str, class: Class) -> Workload {
    match bench {
        "bt" => workloads::nas::bt(class),
        "cg" => workloads::nas::cg(class),
        "ep" => workloads::nas::ep(class),
        "ft" => workloads::nas::ft(class),
        "lu" => workloads::nas::lu(class),
        "mg" => workloads::nas::mg(class),
        "sp" => workloads::nas::sp(class),
        "amg" => workloads::amg::amg(class),
        "slu" => workloads::slu::slu(class).wl,
        "mathmix" => workloads::mathmix::mathmix(class, workloads::mathmix::LibmKind::Intrinsic),
        "vecops" => workloads::vecops::vecops(class),
        other => {
            eprintln!("unknown benchmark `{other}`; try `craft list`");
            std::process::exit(2);
        }
    }
}

fn parse_class(s: Option<&str>) -> Class {
    match s.unwrap_or("w") {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        "c" => Class::C,
        other => {
            eprintln!("unknown class `{other}` (expected s|w|a|c)");
            std::process::exit(2);
        }
    }
}

fn parse_indices(spec: &str) -> Vec<u64> {
    spec.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// Digest a JSONL search event log: per-phase timing, a verdict
/// histogram over evaluation attempts, robustness counters, and the
/// top-k most expensive evaluations.
fn render_report(path: &str, top: usize) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match Record::parse(line) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    if records.is_empty() {
        eprintln!(
            "{path}: no parseable events{}",
            if malformed > 0 { " (all malformed)" } else { "" }
        );
        std::process::exit(1);
    }
    let span_us = records.last().map(|r| r.t_us).unwrap_or(0);
    println!("event log   : {path}");
    println!(
        "events      : {}{}   span: {:.1} ms",
        records.len(),
        if malformed > 0 { format!(" (+{malformed} malformed)") } else { String::new() },
        span_us as f64 / 1e3
    );

    let searches: Vec<&Record> =
        records.iter().filter(|r| matches!(r.event, Event::SearchStarted { .. })).collect();
    for r in &searches {
        if let Event::SearchStarted { bench, candidates, threads } = &r.event {
            println!(
                "search      : {}  ({candidates} candidates, {threads} threads)",
                if bench.is_empty() { "<unnamed>" } else { bench }
            );
        }
    }

    println!("\nphase timing:");
    for r in &records {
        if let Event::PhaseFinished { phase, wall_us } = &r.event {
            println!("  {:<14} {:>10.1} ms", phase, *wall_us as f64 / 1e3);
        }
    }

    let mut verdicts: HashMap<Verdict, usize> = HashMap::new();
    let mut evals: Vec<(u64, u64, Verdict, String, bool)> = Vec::new();
    let mut cache_hits = 0usize;
    let mut retries = 0usize;
    let mut quarantines = 0usize;
    let mut max_depth = 0usize;
    for r in &records {
        match &r.event {
            Event::EvalFinished { idx, label, verdict, wall_us, cache_hit, .. } => {
                *verdicts.entry(*verdict).or_default() += 1;
                cache_hits += *cache_hit as usize;
                evals.push((*wall_us, *idx, *verdict, label.clone(), *cache_hit));
            }
            Event::Retry { .. } => retries += 1,
            Event::Quarantined { .. } => quarantines += 1,
            Event::QueueDepth { depth, .. } => max_depth = max_depth.max(*depth),
            _ => {}
        }
    }
    println!("\nverdicts ({} evaluation attempts):", evals.len());
    for v in Verdict::ALL {
        let n = verdicts.get(&v).copied().unwrap_or(0);
        if n > 0 || matches!(v, Verdict::Pass | Verdict::Fail) {
            println!("  {:<12} {n:>6}", v.as_str());
        }
    }
    println!(
        "\nretries: {retries}   quarantines: {quarantines}   cache hits: {cache_hits}   \
         max queue depth: {max_depth}"
    );

    evals.sort_by_key(|e| std::cmp::Reverse(e.0));
    println!("\ntop {} most expensive evaluations:", top.min(evals.len()));
    println!("  {:>10}  {:>5}  {:<11}  label", "wall", "idx", "verdict");
    for (wall_us, idx, verdict, label, cache_hit) in evals.iter().take(top) {
        println!(
            "  {:>8.1}ms  {idx:>5}  {:<11}  {label}{}",
            *wall_us as f64 / 1e3,
            verdict.as_str(),
            if *cache_hit { " (cached)" } else { "" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };

    let cmd = positional.first().copied().unwrap_or("help");
    match cmd {
        "list" => {
            println!("benchmarks: {}", BENCHES.join(", "));
            println!("classes:    s (sample), w (workstation), a, c");
        }
        "report" => {
            let path = positional.get(1).copied().unwrap_or_else(|| {
                eprintln!("usage: craft report <events.jsonl> [--top=N]");
                std::process::exit(2);
            });
            let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(5);
            render_report(path, top);
        }
        "analyze" | "shadow" | "overhead" | "tree" | "config" => {
            let bench = positional.get(1).copied().unwrap_or_else(|| {
                eprintln!("usage: craft {cmd} <bench> [class]");
                std::process::exit(2);
            });
            let class = parse_class(positional.get(2).copied());
            let threads = opt("--threads")
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(SearchOptions::default_threads);
            let stop_depth = match opt("--stop-depth").as_deref() {
                Some("f") => StopDepth::Function,
                Some("b") => StopDepth::Block,
                _ => StopDepth::Instruction,
            };
            let sys = AnalysisSystem::with_options(
                build(bench, class),
                AnalysisOptions {
                    search: SearchOptions {
                        threads,
                        stop_depth,
                        binary_split: !flag("--no-split"),
                        prioritize: !flag("--no-priority"),
                        second_phase: flag("--second-phase"),
                        ..Default::default()
                    },
                    rewrite: instrument::RewriteOptions {
                        lean: flag("--lean"),
                        ..Default::default()
                    },
                    shadow: ShadowOptions {
                        prioritize: flag("--shadow-priority"),
                        prune: flag("--shadow-prune"),
                        ..Default::default()
                    },
                },
            );
            match cmd {
                "analyze" => {
                    let events = opt("--events").map(|path| {
                        EventLog::to_file(&path).unwrap_or_else(|e| {
                            eprintln!("cannot create event log {path}: {e}");
                            std::process::exit(2);
                        })
                    });
                    let hooks = SearchHooks {
                        bench: format!("{bench}.{class}"),
                        faults: FaultPlan {
                            panic_at: opt("--inject-panic")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            timeout_at: opt("--inject-timeout")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            ..Default::default()
                        },
                        events: events.as_ref(),
                        shadow: None,
                    };
                    let rec = sys.recommend_with(&hooks);
                    let r = &rec.report;
                    println!("benchmark            : {bench}.{class}");
                    println!("candidates           : {}", r.candidates);
                    println!("configurations tested: {}", r.configs_tested);
                    println!("replaced (static)    : {:.1}%", r.static_pct);
                    println!("replaced (dynamic)   : {:.1}%", r.dynamic_pct);
                    println!(
                        "final verification   : {}",
                        if r.final_pass { "pass" } else { "fail" }
                    );
                    println!("modelled speedup     : {:.2}x", rec.modelled_speedup);
                    println!("search wall time     : {:.2?}", r.elapsed);
                    if r.timeouts + r.crashes + r.retries + r.quarantined > 0 {
                        println!(
                            "executor faults      : {} timeouts, {} crashes, {} retries, {} quarantined",
                            r.timeouts, r.crashes, r.retries, r.quarantined
                        );
                    }
                    if r.pruned_by_shadow > 0 {
                        println!("shadow-pruned        : {}", r.pruned_by_shadow);
                    }
                    println!("\n--- recommended configuration ---");
                    print!("{}", rec.config_text);
                }
                "shadow" => {
                    let profile = sys.shadow_profile();
                    let tree = sys.tree();
                    println!("benchmark            : {bench}.{class}");
                    println!("instructions shadowed: {}", profile.len());
                    println!(
                        "shadowed executions  : {}",
                        profile.insns.values().map(|s| s.count).sum::<u64>()
                    );
                    println!("cancellation events  : {}", profile.total_cancellations());

                    // label lookup: instruction id -> structure-tree position
                    let mut labels = HashMap::new();
                    for (mi, m) in tree.modules.iter().enumerate() {
                        for (fi, f) in m.funcs.iter().enumerate() {
                            for (bi, b) in f.blocks.iter().enumerate() {
                                for (ii, e) in b.insns.iter().enumerate() {
                                    labels.insert(e.id.0, mpconfig::NodeRef::Insn(mi, fi, bi, ii));
                                }
                            }
                        }
                    }
                    let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(10);
                    let mut ranked: Vec<_> = profile.insns.iter().collect();
                    ranked.sort_by(|a, b| b.1.max_rel.total_cmp(&a.1.max_rel).then(a.0.cmp(b.0)));
                    println!("\ntop {} by max divergence:", top.min(ranked.len()));
                    println!(
                        "  {:>9}  {:>9}  {:>8}  {:>7}  insn",
                        "max_rel", "mean_rel", "count", "cancels"
                    );
                    for (id, s) in ranked.iter().take(top) {
                        let label = labels
                            .get(id)
                            .map(|&n| tree.label(n))
                            .unwrap_or_else(|| format!("insn {id}"));
                        println!(
                            "  {:>9.2e}  {:>9.2e}  {:>8}  {:>7}  {label}",
                            s.max_rel,
                            s.mean_rel(),
                            s.count,
                            s.cancels
                        );
                    }

                    let blocks = profile.block_aggregates(tree);
                    if !blocks.is_empty() {
                        println!("\nper-block aggregates:");
                        println!("  {:>9}  {:>8}  {:>7}  block", "max_rel", "count", "cancels");
                        for (node, agg) in &blocks {
                            println!(
                                "  {:>9.2e}  {:>8}  {:>7}  {}",
                                agg.max_rel,
                                agg.count,
                                agg.cancels,
                                tree.label(*node)
                            );
                        }
                    }

                    if let Some(path) = opt("--out") {
                        if let Err(e) = profile.to_file(&path) {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(2);
                        }
                        println!("\nprofile written to {path}");
                    }
                }
                "overhead" => {
                    let o = sys.overhead_all_double();
                    println!("benchmark    : {bench}.{class}");
                    println!("instrumented : {} candidates", o.instrumented);
                    println!("wall ratio   : {:.1}X", o.wall_x);
                    println!("steps ratio  : {:.1}X", o.steps_x);
                }
                "tree" => print!("{}", render_tree(sys.tree(), sys.base_config())),
                "config" => print!("{}", print_config(sys.tree(), sys.base_config())),
                _ => unreachable!(),
            }
        }
        _ => {
            println!("craft — automatic mixed-precision analysis (paper reproduction)");
            println!();
            println!("usage:");
            println!("  craft list");
            println!("  craft analyze  <bench> [class] [--second-phase] [--stop-depth=f|b|i]");
            println!("                 [--no-split] [--no-priority] [--lean] [--threads=N]");
            println!("                 [--shadow-priority] [--shadow-prune]");
            println!("                 [--events=FILE] [--inject-panic=IDX[,IDX..]]");
            println!("                 [--inject-timeout=IDX[,IDX..]]");
            println!("  craft shadow   <bench> [class] [--top=N] [--out=FILE]");
            println!("  craft overhead <bench> [class]");
            println!("  craft tree     <bench> [class]");
            println!("  craft config   <bench> [class]");
            println!("  craft report   <events.jsonl> [--top=N]");
        }
    }
}
