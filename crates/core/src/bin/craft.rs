//! `craft` — the command-line front end to the mixed-precision analysis
//! system, operating on the bundled benchmark programs.
//!
//! ```text
//! craft list                          # available benchmarks
//! craft analyze <bench> [class]      # full search + recommendation
//! craft overhead <bench> [class]     # all-double instrumentation cost
//! craft tree <bench> [class]         # structure tree (Fig. 4 view)
//! craft config <bench> [class]       # initial config file (Fig. 3)
//! ```
//!
//! Options for `analyze`: `--second-phase`, `--stop-depth=f|b|i`,
//! `--no-split`, `--no-priority`, `--lean`, `--threads=N`.

use mixedprec::{AnalysisOptions, AnalysisSystem, StopDepth};
use mpconfig::editor::render_tree;
use mpconfig::print_config;
use mpsearch::SearchOptions;
use workloads::{Class, Workload};

const BENCHES: &[&str] =
    &["bt", "cg", "ep", "ft", "lu", "mg", "sp", "amg", "slu", "mathmix", "vecops"];

fn build(bench: &str, class: Class) -> Workload {
    match bench {
        "bt" => workloads::nas::bt(class),
        "cg" => workloads::nas::cg(class),
        "ep" => workloads::nas::ep(class),
        "ft" => workloads::nas::ft(class),
        "lu" => workloads::nas::lu(class),
        "mg" => workloads::nas::mg(class),
        "sp" => workloads::nas::sp(class),
        "amg" => workloads::amg::amg(class),
        "slu" => workloads::slu::slu(class).wl,
        "mathmix" => workloads::mathmix::mathmix(class, workloads::mathmix::LibmKind::Intrinsic),
        "vecops" => workloads::vecops::vecops(class),
        other => {
            eprintln!("unknown benchmark `{other}`; try `craft list`");
            std::process::exit(2);
        }
    }
}

fn parse_class(s: Option<&str>) -> Class {
    match s.unwrap_or("w") {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        "c" => Class::C,
        other => {
            eprintln!("unknown class `{other}` (expected s|w|a|c)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };

    let cmd = positional.first().copied().unwrap_or("help");
    match cmd {
        "list" => {
            println!("benchmarks: {}", BENCHES.join(", "));
            println!("classes:    s (sample), w (workstation), a, c");
        }
        "analyze" | "overhead" | "tree" | "config" => {
            let bench = positional.get(1).copied().unwrap_or_else(|| {
                eprintln!("usage: craft {cmd} <bench> [class]");
                std::process::exit(2);
            });
            let class = parse_class(positional.get(2).copied());
            let threads = opt("--threads")
                .and_then(|t| t.parse().ok())
                .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
                .unwrap_or(4);
            let stop_depth = match opt("--stop-depth").as_deref() {
                Some("f") => StopDepth::Function,
                Some("b") => StopDepth::Block,
                _ => StopDepth::Instruction,
            };
            let sys = AnalysisSystem::with_options(
                build(bench, class),
                AnalysisOptions {
                    search: SearchOptions {
                        threads,
                        stop_depth,
                        binary_split: !flag("--no-split"),
                        prioritize: !flag("--no-priority"),
                        second_phase: flag("--second-phase"),
                        ..Default::default()
                    },
                    rewrite: instrument::RewriteOptions {
                        lean: flag("--lean"),
                        ..Default::default()
                    },
                },
            );
            match cmd {
                "analyze" => {
                    let rec = sys.recommend();
                    let r = &rec.report;
                    println!("benchmark            : {bench}.{class}");
                    println!("candidates           : {}", r.candidates);
                    println!("configurations tested: {}", r.configs_tested);
                    println!("replaced (static)    : {:.1}%", r.static_pct);
                    println!("replaced (dynamic)   : {:.1}%", r.dynamic_pct);
                    println!(
                        "final verification   : {}",
                        if r.final_pass { "pass" } else { "fail" }
                    );
                    println!("modelled speedup     : {:.2}x", rec.modelled_speedup);
                    println!("search wall time     : {:.2?}", r.elapsed);
                    println!("\n--- recommended configuration ---");
                    print!("{}", rec.config_text);
                }
                "overhead" => {
                    let o = sys.overhead_all_double();
                    println!("benchmark    : {bench}.{class}");
                    println!("instrumented : {} candidates", o.instrumented);
                    println!("wall ratio   : {:.1}X", o.wall_x);
                    println!("steps ratio  : {:.1}X", o.steps_x);
                }
                "tree" => print!("{}", render_tree(sys.tree(), sys.base_config())),
                "config" => print!("{}", print_config(sys.tree(), sys.base_config())),
                _ => unreachable!(),
            }
        }
        _ => {
            println!("craft — automatic mixed-precision analysis (paper reproduction)");
            println!();
            println!("usage:");
            println!("  craft list");
            println!("  craft analyze  <bench> [class] [--second-phase] [--stop-depth=f|b|i]");
            println!("                 [--no-split] [--no-priority] [--lean] [--threads=N]");
            println!("  craft overhead <bench> [class]");
            println!("  craft tree     <bench> [class]");
            println!("  craft config   <bench> [class]");
        }
    }
}
