//! `craft` — the command-line front end to the mixed-precision analysis
//! system, operating on the bundled benchmark programs.
//!
//! ```text
//! craft list                          # available benchmarks
//! craft analyze <bench> [class]      # full search + recommendation
//! craft shadow <bench> [class]       # shadow-value sensitivity analysis
//! craft overhead <bench> [class]     # all-double instrumentation cost
//! craft tree <bench> [class]         # structure tree (Fig. 4 view)
//! craft config <bench> [class]       # initial config file (Fig. 3)
//! craft report <events.jsonl|run-dir>  # digest a search event log / run directory
//! craft metrics <trace.jsonl>          # render a trace snapshot (Prometheus/folded)
//! ```
//!
//! Options for `analyze`: `--second-phase`, `--stop-depth=f|b|i`,
//! `--no-split`, `--no-priority`, `--lean`, `--threads=N`,
//! `--shadow-priority` / `--shadow-prune` (shadow-value search
//! guidance), `--events=FILE` (JSONL event log), `--trace=DIR` (run
//! directory collecting `events.jsonl` + `trace.jsonl`), and the
//! fault-injection drills `--inject-panic=IDX[,IDX…]` /
//! `--inject-timeout=IDX[,IDX…]`.
//!
//! Exit codes are uniform across subcommands: `2` for usage/argument
//! errors (unknown benchmark, missing operand), `1` for runtime errors
//! (unreadable file, malformed log), `0` otherwise.

use mixedprec::{AnalysisOptions, AnalysisSystem, ShadowOptions, StopDepth};
use mpconfig::editor::render_tree;
use mpconfig::print_config;
use mpsearch::events::{Event, EventLog, Record};
use mpsearch::{FaultPlan, SearchHooks, SearchOptions, Verdict};
use mptrace::snapshot::TraceSnapshot;
use mptrace::{sinks, Tracer};
use std::collections::HashMap;
use workloads::{Class, Workload};

/// Usage/argument error: print the message and exit 2.
fn usage(msg: &str) -> ! {
    eprintln!("craft: {msg}");
    eprintln!("run `craft` with no arguments for usage");
    std::process::exit(2)
}

/// Runtime/data error (unreadable file, malformed log): exit 1.
fn fail(msg: String) -> ! {
    eprintln!("craft: {msg}");
    std::process::exit(1)
}

const BENCHES: &[&str] =
    &["bt", "cg", "ep", "ft", "lu", "mg", "sp", "amg", "slu", "mathmix", "vecops"];

fn build(bench: &str, class: Class) -> Workload {
    match bench {
        "bt" => workloads::nas::bt(class),
        "cg" => workloads::nas::cg(class),
        "ep" => workloads::nas::ep(class),
        "ft" => workloads::nas::ft(class),
        "lu" => workloads::nas::lu(class),
        "mg" => workloads::nas::mg(class),
        "sp" => workloads::nas::sp(class),
        "amg" => workloads::amg::amg(class),
        "slu" => workloads::slu::slu(class).wl,
        "mathmix" => workloads::mathmix::mathmix(class, workloads::mathmix::LibmKind::Intrinsic),
        "vecops" => workloads::vecops::vecops(class),
        other => usage(&format!("unknown benchmark `{other}`; try `craft list`")),
    }
}

fn parse_class(s: Option<&str>) -> Class {
    match s.unwrap_or("w") {
        "s" => Class::S,
        "w" => Class::W,
        "a" => Class::A,
        "c" => Class::C,
        other => usage(&format!("unknown class `{other}` (expected s|w|a|c)")),
    }
}

fn parse_indices(spec: &str) -> Vec<u64> {
    spec.split(',').filter_map(|t| t.trim().parse().ok()).collect()
}

/// Digest a JSONL search event log: per-phase timing, a verdict
/// histogram over evaluation attempts, robustness counters, and the
/// top-k most expensive evaluations.
fn render_report(path: &str, top: usize) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match Record::parse(line) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    if records.is_empty() {
        fail(format!(
            "{path}: no parseable events{}",
            if malformed > 0 { " (all malformed)" } else { "" }
        ));
    }
    let span_us = records.last().map(|r| r.t_us).unwrap_or(0);
    println!("event log   : {path}");
    println!(
        "events      : {}{}   span: {:.1} ms",
        records.len(),
        if malformed > 0 { format!(" (+{malformed} malformed)") } else { String::new() },
        span_us as f64 / 1e3
    );

    let searches: Vec<&Record> =
        records.iter().filter(|r| matches!(r.event, Event::SearchStarted { .. })).collect();
    for r in &searches {
        if let Event::SearchStarted { bench, candidates, threads } = &r.event {
            println!(
                "search      : {}  ({candidates} candidates, {threads} threads)",
                if bench.is_empty() { "<unnamed>" } else { bench }
            );
        }
    }

    println!("\nphase timing:");
    for r in &records {
        if let Event::PhaseFinished { phase, wall_us } = &r.event {
            println!("  {:<14} {:>10.1} ms", phase, *wall_us as f64 / 1e3);
        }
    }

    let mut verdicts: HashMap<Verdict, usize> = HashMap::new();
    let mut evals: Vec<(u64, u64, Verdict, String, bool)> = Vec::new();
    let mut cache_hits = 0usize;
    let mut retries = 0usize;
    let mut quarantines = 0usize;
    let mut max_depth = 0usize;
    for r in &records {
        match &r.event {
            Event::EvalFinished { idx, label, verdict, wall_us, cache_hit, .. } => {
                *verdicts.entry(*verdict).or_default() += 1;
                cache_hits += *cache_hit as usize;
                evals.push((*wall_us, *idx, *verdict, label.clone(), *cache_hit));
            }
            Event::Retry { .. } => retries += 1,
            Event::Quarantined { .. } => quarantines += 1,
            Event::QueueDepth { depth, .. } => max_depth = max_depth.max(*depth),
            _ => {}
        }
    }
    println!("\nverdicts ({} evaluation attempts):", evals.len());
    for v in Verdict::ALL {
        let n = verdicts.get(&v).copied().unwrap_or(0);
        if n > 0 || matches!(v, Verdict::Pass | Verdict::Fail) {
            println!("  {:<12} {n:>6}", v.as_str());
        }
    }
    println!(
        "\nretries: {retries}   quarantines: {quarantines}   cache hits: {cache_hits}   \
         max queue depth: {max_depth}"
    );

    evals.sort_by_key(|e| std::cmp::Reverse(e.0));
    println!("\ntop {} most expensive evaluations:", top.min(evals.len()));
    println!("  {:>10}  {:>5}  {:<11}  label", "wall", "idx", "verdict");
    for (wall_us, idx, verdict, label, cache_hit) in evals.iter().take(top) {
        println!(
            "  {:>8.1}ms  {idx:>5}  {:<11}  {label}{}",
            *wall_us as f64 / 1e3,
            verdict.as_str(),
            if *cache_hit { " (cached)" } else { "" }
        );
    }
}

/// Read and parse a `trace.jsonl` snapshot.
fn load_snapshot(path: &str) -> TraceSnapshot {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    TraceSnapshot::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
}

/// Render a trace snapshot: per-phase timeline (spans aggregated by
/// name, ordered by first start) and the top-k hottest instructions by
/// attributed interpreter cycles.
fn render_trace_report(path: &str, snap: &TraceSnapshot, top: usize) {
    println!("trace       : {path}");
    if !snap.spans.is_empty() {
        // Aggregate spans by name: repeated spans (one per work item)
        // collapse into count + total, one-shot phases keep their slot.
        struct Agg {
            first_start: u64,
            total_us: u64,
            count: u64,
        }
        let mut by_name: Vec<(String, Agg)> = Vec::new();
        for s in &snap.spans {
            match by_name.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, a)) => {
                    a.first_start = a.first_start.min(s.start_us);
                    a.total_us += s.dur_us;
                    a.count += 1;
                }
                None => by_name.push((
                    s.name.clone(),
                    Agg { first_start: s.start_us, total_us: s.dur_us, count: 1 },
                )),
            }
        }
        by_name.sort_by_key(|(_, a)| a.first_start);
        println!("\nphase timeline ({} spans):", snap.spans.len());
        println!("  {:>10}  {:>12}  {:>6}  span", "start", "total", "count");
        for (name, a) in &by_name {
            println!(
                "  {:>8.1}ms  {:>10.1}ms  {:>6}  {name}",
                a.first_start as f64 / 1e3,
                a.total_us as f64 / 1e3,
                a.count
            );
        }
    }
    if !snap.hot.is_empty() {
        let mut hot: Vec<_> = snap.hot.iter().collect();
        hot.sort_by_key(|h| std::cmp::Reverse(h.cycles));
        let total: u64 = hot.iter().map(|h| h.cycles).sum();
        println!("\ntop {} hottest instructions ({total} attributed cycles):", top.min(hot.len()));
        println!("  {:>12}  {:>10}  {:>6}  insn", "cycles", "hits", "%");
        for h in hot.iter().take(top) {
            let label =
                if h.label.is_empty() { format!("insn {}", h.insn) } else { h.label.clone() };
            println!(
                "  {:>12}  {:>10}  {:>5.1}%  {label}",
                h.cycles,
                h.hits,
                100.0 * h.cycles as f64 / total.max(1) as f64
            );
        }
    }
    let interesting =
        ["exec.cache_hits", "exec.retries", "search.enqueued", "search.shadow_pruned"];
    let lines: Vec<String> = interesting
        .iter()
        .filter_map(|k| snap.counters.get(*k).map(|v| format!("{k}={v}")))
        .collect();
    if !lines.is_empty() {
        println!("\ncounters    : {}", lines.join("  "));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&str> =
        args.iter().map(String::as_str).filter(|a| !a.starts_with("--")).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
    };

    let cmd = positional.first().copied().unwrap_or("help");
    match cmd {
        "list" => {
            println!("benchmarks: {}", BENCHES.join(", "));
            println!("classes:    s (sample), w (workstation), a, c");
        }
        "report" => {
            let path = positional
                .get(1)
                .copied()
                .unwrap_or_else(|| usage("usage: craft report <events.jsonl|run-dir> [--top=N]"));
            let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(5);
            if std::path::Path::new(path).is_dir() {
                // A run directory as written by `craft analyze --trace=DIR`:
                // digest whichever of events.jsonl / trace.jsonl it holds.
                let events = format!("{path}/events.jsonl");
                let trace = format!("{path}/trace.jsonl");
                let have_events = std::path::Path::new(&events).is_file();
                let have_trace = std::path::Path::new(&trace).is_file();
                if !have_events && !have_trace {
                    fail(format!("{path}: no events.jsonl or trace.jsonl in run directory"));
                }
                if have_events {
                    render_report(&events, top);
                }
                if have_trace {
                    if have_events {
                        println!();
                    }
                    render_trace_report(&trace, &load_snapshot(&trace), top);
                }
            } else {
                render_report(path, top);
            }
        }
        "metrics" => {
            let path = positional.get(1).copied().unwrap_or_else(|| {
                usage("usage: craft metrics <trace.jsonl> [--prom=FILE] [--folded=FILE]")
            });
            let snap = load_snapshot(path);
            let prom_out = opt("--prom");
            let folded_out = opt("--folded");
            if let Some(f) = &folded_out {
                std::fs::write(f, sinks::folded(&snap))
                    .unwrap_or_else(|e| fail(format!("cannot write {f}: {e}")));
                eprintln!("folded stacks written to {f}");
            }
            match &prom_out {
                Some(f) => {
                    std::fs::write(f, sinks::prometheus(&snap))
                        .unwrap_or_else(|e| fail(format!("cannot write {f}: {e}")));
                    eprintln!("prometheus exposition written to {f}");
                }
                // default: exposition on stdout unless --folded alone was asked for
                None if folded_out.is_none() => print!("{}", sinks::prometheus(&snap)),
                None => {}
            }
        }
        "analyze" | "shadow" | "overhead" | "tree" | "config" => {
            let bench = positional.get(1).copied().unwrap_or_else(|| {
                eprintln!("usage: craft {cmd} <bench> [class]");
                std::process::exit(2);
            });
            let class = parse_class(positional.get(2).copied());
            let threads = opt("--threads")
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(SearchOptions::default_threads);
            let stop_depth = match opt("--stop-depth").as_deref() {
                Some("f") => StopDepth::Function,
                Some("b") => StopDepth::Block,
                _ => StopDepth::Instruction,
            };
            let mut sys = AnalysisSystem::with_options(
                build(bench, class),
                AnalysisOptions {
                    search: SearchOptions {
                        threads,
                        stop_depth,
                        binary_split: !flag("--no-split"),
                        prioritize: !flag("--no-priority"),
                        second_phase: flag("--second-phase"),
                        ..Default::default()
                    },
                    rewrite: instrument::RewriteOptions {
                        lean: flag("--lean"),
                        ..Default::default()
                    },
                    shadow: ShadowOptions {
                        prioritize: flag("--shadow-priority"),
                        prune: flag("--shadow-prune"),
                        ..Default::default()
                    },
                },
            );
            match cmd {
                "analyze" => {
                    // --trace=DIR collects a full run directory: the JSONL
                    // event log plus the span/metric/hot-spot snapshot.
                    let trace_dir = opt("--trace");
                    let tracer = trace_dir.as_ref().map(|dir| {
                        std::fs::create_dir_all(dir)
                            .unwrap_or_else(|e| fail(format!("cannot create {dir}: {e}")));
                        Tracer::new()
                    });
                    if let Some(t) = &tracer {
                        sys.set_tracer(t.clone());
                    }
                    let events_path = opt("--events")
                        .or_else(|| trace_dir.as_ref().map(|d| format!("{d}/events.jsonl")));
                    let events = events_path.map(|path| {
                        EventLog::to_file(&path).unwrap_or_else(|e| {
                            fail(format!("cannot create event log {path}: {e}"))
                        })
                    });
                    let hooks = SearchHooks {
                        bench: format!("{bench}.{class}"),
                        faults: FaultPlan {
                            panic_at: opt("--inject-panic")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            timeout_at: opt("--inject-timeout")
                                .map(|s| parse_indices(&s))
                                .unwrap_or_default(),
                            ..Default::default()
                        },
                        events: events.as_ref(),
                        shadow: None,
                        tracer: None,
                    };
                    let rec = sys.recommend_with(&hooks);
                    let r = &rec.report;
                    println!("benchmark            : {bench}.{class}");
                    println!("candidates           : {}", r.candidates);
                    println!("configurations tested: {}", r.configs_tested);
                    println!("replaced (static)    : {:.1}%", r.static_pct);
                    println!("replaced (dynamic)   : {:.1}%", r.dynamic_pct);
                    println!(
                        "final verification   : {}",
                        if r.final_pass { "pass" } else { "fail" }
                    );
                    println!("modelled speedup     : {:.2}x", rec.modelled_speedup);
                    println!("search wall time     : {:.2?}", r.elapsed);
                    if r.timeouts + r.crashes + r.retries + r.quarantined > 0 {
                        println!(
                            "executor faults      : {} timeouts, {} crashes, {} retries, {} quarantined",
                            r.timeouts, r.crashes, r.retries, r.quarantined
                        );
                    }
                    if r.pruned_by_shadow > 0 {
                        println!("shadow-pruned        : {}", r.pruned_by_shadow);
                    }
                    println!("\n--- recommended configuration ---");
                    print!("{}", rec.config_text);
                    if let (Some(t), Some(dir)) = (&tracer, &trace_dir) {
                        let path = format!("{dir}/trace.jsonl");
                        std::fs::write(&path, t.snapshot().to_jsonl())
                            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
                        eprintln!("trace written to {path}");
                    }
                }
                "shadow" => {
                    let profile = sys.shadow_profile();
                    let tree = sys.tree();
                    println!("benchmark            : {bench}.{class}");
                    println!("instructions shadowed: {}", profile.len());
                    println!(
                        "shadowed executions  : {}",
                        profile.insns.values().map(|s| s.count).sum::<u64>()
                    );
                    println!("cancellation events  : {}", profile.total_cancellations());

                    // label lookup: instruction id -> structure-tree position
                    let mut labels = HashMap::new();
                    for (mi, m) in tree.modules.iter().enumerate() {
                        for (fi, f) in m.funcs.iter().enumerate() {
                            for (bi, b) in f.blocks.iter().enumerate() {
                                for (ii, e) in b.insns.iter().enumerate() {
                                    labels.insert(e.id.0, mpconfig::NodeRef::Insn(mi, fi, bi, ii));
                                }
                            }
                        }
                    }
                    let top = opt("--top").and_then(|t| t.parse().ok()).unwrap_or(10);
                    let mut ranked: Vec<_> = profile.insns.iter().collect();
                    ranked.sort_by(|a, b| b.1.max_rel.total_cmp(&a.1.max_rel).then(a.0.cmp(b.0)));
                    println!("\ntop {} by max divergence:", top.min(ranked.len()));
                    println!(
                        "  {:>9}  {:>9}  {:>8}  {:>7}  insn",
                        "max_rel", "mean_rel", "count", "cancels"
                    );
                    for (id, s) in ranked.iter().take(top) {
                        let label = labels
                            .get(id)
                            .map(|&n| tree.label(n))
                            .unwrap_or_else(|| format!("insn {id}"));
                        println!(
                            "  {:>9.2e}  {:>9.2e}  {:>8}  {:>7}  {label}",
                            s.max_rel,
                            s.mean_rel(),
                            s.count,
                            s.cancels
                        );
                    }

                    let blocks = profile.block_aggregates(tree);
                    if !blocks.is_empty() {
                        println!("\nper-block aggregates:");
                        println!("  {:>9}  {:>8}  {:>7}  block", "max_rel", "count", "cancels");
                        for (node, agg) in &blocks {
                            println!(
                                "  {:>9.2e}  {:>8}  {:>7}  {}",
                                agg.max_rel,
                                agg.count,
                                agg.cancels,
                                tree.label(*node)
                            );
                        }
                    }

                    if let Some(path) = opt("--out") {
                        profile
                            .to_file(&path)
                            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
                        println!("\nprofile written to {path}");
                    }
                }
                "overhead" => {
                    let o = sys.overhead_all_double();
                    println!("benchmark    : {bench}.{class}");
                    println!("instrumented : {} candidates", o.instrumented);
                    println!("wall ratio   : {:.1}X", o.wall_x);
                    println!("steps ratio  : {:.1}X", o.steps_x);
                }
                "tree" => print!("{}", render_tree(sys.tree(), sys.base_config())),
                "config" => print!("{}", print_config(sys.tree(), sys.base_config())),
                _ => unreachable!(),
            }
        }
        _ => {
            println!("craft — automatic mixed-precision analysis (paper reproduction)");
            println!();
            println!("usage:");
            println!("  craft list");
            println!("  craft analyze  <bench> [class] [--second-phase] [--stop-depth=f|b|i]");
            println!("                 [--no-split] [--no-priority] [--lean] [--threads=N]");
            println!("                 [--shadow-priority] [--shadow-prune]");
            println!("                 [--events=FILE] [--trace=DIR]");
            println!("                 [--inject-panic=IDX[,IDX..]]");
            println!("                 [--inject-timeout=IDX[,IDX..]]");
            println!("  craft shadow   <bench> [class] [--top=N] [--out=FILE]");
            println!("  craft overhead <bench> [class]");
            println!("  craft tree     <bench> [class]");
            println!("  craft config   <bench> [class]");
            println!("  craft report   <events.jsonl|run-dir> [--top=N]");
            println!("  craft metrics  <trace.jsonl> [--prom=FILE] [--folded=FILE]");
        }
    }
}
