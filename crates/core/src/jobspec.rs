//! Job specifications: the wire format through which `craftd` (and any
//! other out-of-process driver) requests a tuning run.
//!
//! A [`JobSpec`] is the serializable twin of [`AnalysisOptions`] plus
//! the workload selector: benchmark, input class, verification
//! tolerance, execution backend, and the search/rewrite switches the
//! `craft analyze` CLI exposes as flags. It round-trips through the
//! repo's hand-rolled JSON (`mptrace::json`), with every field except
//! `bench` optional so a minimal `{"bench":"ep","class":"s"}` body is a
//! complete job.
//!
//! The benchmark table ([`BENCHES`], [`build_workload`],
//! [`parse_class`]) lives here too, shared by the CLI and the daemon so
//! the two can never drift apart on what a bench name means.

use crate::{AnalysisOptions, ShadowOptions};
use instrument::RewriteOptions;
use mpsearch::{ExecPolicy, SearchOptions, StopDepth};
use mptrace::json::{self, Value};
use std::time::Duration;
use workloads::{Class, Workload};

/// Every benchmark the system can build, by CLI/job name.
pub const BENCHES: &[&str] =
    &["bt", "cg", "ep", "ft", "lu", "mg", "sp", "amg", "slu", "mathmix", "vecops"];

/// Build a named benchmark workload, or explain which names exist.
pub fn build_workload(bench: &str, class: Class) -> Result<Workload, String> {
    Ok(match bench {
        "bt" => workloads::nas::bt(class),
        "cg" => workloads::nas::cg(class),
        "ep" => workloads::nas::ep(class),
        "ft" => workloads::nas::ft(class),
        "lu" => workloads::nas::lu(class),
        "mg" => workloads::nas::mg(class),
        "sp" => workloads::nas::sp(class),
        "amg" => workloads::amg::amg(class),
        "slu" => workloads::slu::slu(class).wl,
        "mathmix" => workloads::mathmix::mathmix(class, workloads::mathmix::LibmKind::Intrinsic),
        "vecops" => workloads::vecops::vecops(class),
        other => {
            return Err(format!("unknown benchmark `{other}` (known: {})", BENCHES.join(", ")))
        }
    })
}

/// Parse a one-letter input-class name (`s|w|a|c`).
pub fn parse_class(s: &str) -> Result<Class, String> {
    match s {
        "s" => Ok(Class::S),
        "w" => Ok(Class::W),
        "a" => Ok(Class::A),
        "c" => Ok(Class::C),
        other => Err(format!("unknown class `{other}` (expected s|w|a|c)")),
    }
}

/// A serializable tuning-job request. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name (see [`BENCHES`]).
    pub bench: String,
    /// Input-class letter (`s|w|a|c`); defaults to `w` like the CLI.
    pub class: String,
    /// Execution backend (`interp|fast|compiled`); empty = default.
    pub backend: String,
    /// Precision lattice spec: comma-joined replacement-flag tokens
    /// (e.g. `"s,h"` or `"s,b,m5e6"`), the levels the search descends
    /// through in order. Empty = the classic single-only search.
    pub lattice: String,
    /// Verification-tolerance override; `None` keeps the workload's own.
    pub tol: Option<f64>,
    /// Worker threads; `None` = [`SearchOptions::default_threads`].
    pub threads: Option<usize>,
    /// Stop depth letter (`f|b|i`); empty = instruction.
    pub stop_depth: String,
    /// Run the §3.1 second search phase.
    pub second_phase: bool,
    /// Binary splitting (default on).
    pub binary_split: bool,
    /// Profile prioritization (default on).
    pub prioritize: bool,
    /// Lean rewriting (`--lean`).
    pub lean: bool,
    /// Shadow-guided queue ordering.
    pub shadow_priority: bool,
    /// Shadow-guided pruning.
    pub shadow_prune: bool,
    /// Evaluation budget; `None` = unbounded.
    pub max_tests: Option<usize>,
    /// Per-evaluation fuel quota (instructions); `None` = the
    /// evaluator's derived budget only.
    pub fuel_limit: Option<u64>,
    /// Per-evaluation wall-clock quota in milliseconds.
    pub wall_limit_ms: Option<u64>,
    /// Queue items per worker lock acquisition (batched dispatch).
    pub batch: usize,
    /// Arm the numerical-health observer: one extra observed run of the
    /// final configuration whose `fp.*` event counters join the job's
    /// metrics (see [`AnalysisOptions::num_health`]).
    pub num_health: bool,
    /// Test drill: panic inside the job runner after the search starts,
    /// exercising the daemon's crashed-job isolation path.
    pub inject_runner_panic: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            bench: String::new(),
            class: "w".into(),
            backend: String::new(),
            lattice: String::new(),
            tol: None,
            threads: None,
            stop_depth: String::new(),
            second_phase: false,
            binary_split: true,
            prioritize: true,
            lean: false,
            shadow_priority: false,
            shadow_prune: false,
            max_tests: None,
            fuel_limit: None,
            wall_limit_ms: None,
            batch: 1,
            num_health: false,
            inject_runner_panic: false,
        }
    }
}

impl JobSpec {
    /// Serialize to one JSON object (the `POST /jobs` body format).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"bench\":");
        json::esc(&mut o, &self.bench);
        o.push_str(",\"class\":");
        json::esc(&mut o, &self.class);
        if !self.backend.is_empty() {
            o.push_str(",\"backend\":");
            json::esc(&mut o, &self.backend);
        }
        if !self.lattice.is_empty() {
            o.push_str(",\"lattice\":");
            json::esc(&mut o, &self.lattice);
        }
        if let Some(t) = self.tol {
            o.push_str(&format!(",\"tol\":{t:e}"));
        }
        if let Some(t) = self.threads {
            o.push_str(&format!(",\"threads\":{t}"));
        }
        if !self.stop_depth.is_empty() {
            o.push_str(",\"stop_depth\":");
            json::esc(&mut o, &self.stop_depth);
        }
        for (key, val, default) in [
            ("second_phase", self.second_phase, false),
            ("binary_split", self.binary_split, true),
            ("prioritize", self.prioritize, true),
            ("lean", self.lean, false),
            ("shadow_priority", self.shadow_priority, false),
            ("shadow_prune", self.shadow_prune, false),
            ("num_health", self.num_health, false),
            ("inject_runner_panic", self.inject_runner_panic, false),
        ] {
            if val != default {
                o.push_str(&format!(",\"{key}\":{val}"));
            }
        }
        if let Some(m) = self.max_tests {
            o.push_str(&format!(",\"max_tests\":{m}"));
        }
        if let Some(f) = self.fuel_limit {
            o.push_str(&format!(",\"fuel_limit\":{f}"));
        }
        if let Some(w) = self.wall_limit_ms {
            o.push_str(&format!(",\"wall_limit_ms\":{w}"));
        }
        if self.batch != 1 {
            o.push_str(&format!(",\"batch\":{}", self.batch));
        }
        o.push('}');
        o
    }

    /// Parse a `POST /jobs` body. Unknown fields are ignored; absent
    /// fields take their defaults; a missing/empty `bench` is an error.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let v = json::parse(text)?;
        let str_of = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        let bool_of = |k: &str, d: bool| v.get(k).and_then(Value::as_bool).unwrap_or(d);
        let d = JobSpec::default();
        let spec = JobSpec {
            bench: str_of("bench").unwrap_or_default(),
            class: str_of("class").unwrap_or(d.class),
            backend: str_of("backend").unwrap_or_default(),
            lattice: str_of("lattice").unwrap_or_default(),
            tol: v.get("tol").and_then(Value::as_f64),
            threads: v.get("threads").and_then(Value::as_u64).map(|n| n as usize),
            stop_depth: str_of("stop_depth").unwrap_or_default(),
            second_phase: bool_of("second_phase", false),
            binary_split: bool_of("binary_split", true),
            prioritize: bool_of("prioritize", true),
            lean: bool_of("lean", false),
            shadow_priority: bool_of("shadow_priority", false),
            shadow_prune: bool_of("shadow_prune", false),
            max_tests: v.get("max_tests").and_then(Value::as_u64).map(|n| n as usize),
            fuel_limit: v.get("fuel_limit").and_then(Value::as_u64),
            wall_limit_ms: v.get("wall_limit_ms").and_then(Value::as_u64),
            batch: v.get("batch").and_then(Value::as_u64).map(|n| n as usize).unwrap_or(1),
            num_health: bool_of("num_health", false),
            inject_runner_panic: bool_of("inject_runner_panic", false),
        };
        if spec.bench.is_empty() {
            return Err("job spec is missing `bench`".into());
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Check every enumerated field without building anything.
    pub fn validate(&self) -> Result<(), String> {
        if !BENCHES.contains(&self.bench.as_str()) {
            return Err(format!(
                "unknown benchmark `{}` (known: {})",
                self.bench,
                BENCHES.join(", ")
            ));
        }
        parse_class(&self.class)?;
        if !self.backend.is_empty() && fpvm::Backend::parse(&self.backend).is_none() {
            return Err(format!("unknown backend `{}` (interp|fast|compiled)", self.backend));
        }
        if !self.lattice.is_empty() {
            mpconfig::parse_lattice(&self.lattice)?;
        }
        if !matches!(self.stop_depth.as_str(), "" | "f" | "b" | "i") {
            return Err(format!("unknown stop depth `{}` (expected f|b|i)", self.stop_depth));
        }
        if let Some(t) = self.tol {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!("tolerance must be a positive finite number, got {t}"));
            }
        }
        Ok(())
    }

    /// Build the workload, applying the tolerance override if any.
    pub fn workload(&self) -> Result<Workload, String> {
        let mut w = build_workload(&self.bench, parse_class(&self.class)?)?;
        if let Some(t) = self.tol {
            w.tol = t;
        }
        Ok(w)
    }

    /// Map the spec to concrete [`AnalysisOptions`].
    pub fn options(&self) -> Result<AnalysisOptions, String> {
        self.validate()?;
        let backend = if self.backend.is_empty() {
            fpvm::Backend::default()
        } else {
            fpvm::Backend::parse(&self.backend)
                .ok_or_else(|| format!("unknown backend `{}`", self.backend))?
        };
        let stop_depth = match self.stop_depth.as_str() {
            "f" => StopDepth::Function,
            "b" => StopDepth::Block,
            _ => StopDepth::Instruction,
        };
        let lattice = if self.lattice.is_empty() {
            SearchOptions::default().lattice
        } else {
            mpconfig::parse_lattice(&self.lattice)?
        };
        Ok(AnalysisOptions {
            search: SearchOptions {
                threads: self.threads.unwrap_or_else(SearchOptions::default_threads),
                stop_depth,
                binary_split: self.binary_split,
                prioritize: self.prioritize,
                second_phase: self.second_phase,
                max_tests: self.max_tests,
                batch: self.batch,
                lattice,
                exec: ExecPolicy {
                    fuel_limit: self.fuel_limit,
                    wall_limit: self.wall_limit_ms.map(Duration::from_millis),
                    ..Default::default()
                },
                ..Default::default()
            },
            rewrite: RewriteOptions { lean: self.lean, ..Default::default() },
            shadow: ShadowOptions {
                prioritize: self.shadow_priority,
                prune: self.shadow_prune,
                ..Default::default()
            },
            backend,
            num_health: self.num_health,
        })
    }

    /// Cache namespace for the cross-job evaluation cache: everything
    /// that deterministically changes an evaluation's verdict for a
    /// given replaced-instruction set — program identity (bench +
    /// class), tolerance, rewrite shape, fuel quota, and backend.
    /// The lattice is *not* part of the namespace: cache keys already
    /// encode each instruction's target format, so jobs with different
    /// lattices share any overlapping trials.
    /// Wall-clock quotas are deliberately excluded: a timeout verdict is
    /// machine noise, and the daemon never caches non-pass/fail
    /// outcomes anyway.
    pub fn cache_namespace(&self) -> String {
        format!(
            "{}.{}|tol={}|lean={}|fuel={}|backend={}",
            self.bench,
            self.class,
            self.tol.map(|t| format!("{t:e}")).unwrap_or_else(|| "default".into()),
            self.lean,
            self.fuel_limit.map(|f| f.to_string()).unwrap_or_else(|| "default".into()),
            if self.backend.is_empty() { "default" } else { &self.backend },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_body_round_trips() {
        let spec = JobSpec::parse(r#"{"bench":"ep","class":"s"}"#).unwrap();
        assert_eq!(spec.bench, "ep");
        assert_eq!(spec.class, "s");
        assert!(spec.binary_split && spec.prioritize);
        let again = JobSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn full_body_round_trips() {
        let spec = JobSpec {
            bench: "cg".into(),
            class: "s".into(),
            backend: "fast".into(),
            lattice: "s,h,m5e6".into(),
            tol: Some(1e-8),
            threads: Some(3),
            stop_depth: "b".into(),
            second_phase: true,
            binary_split: false,
            prioritize: false,
            lean: true,
            shadow_priority: true,
            shadow_prune: true,
            max_tests: Some(40),
            fuel_limit: Some(1_000_000),
            wall_limit_ms: Some(5_000),
            batch: 4,
            num_health: true,
            inject_runner_panic: true,
        };
        let again = JobSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(JobSpec::parse(r#"{"class":"s"}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"nope"}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"ep","class":"z"}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"ep","backend":"gpu"}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"ep","tol":-1.0}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"ep","lattice":"s,x"}"#).is_err());
        assert!(JobSpec::parse(r#"{"bench":"ep","lattice":"s,d"}"#).is_err());
        assert!(JobSpec::parse("not json").is_err());
    }

    #[test]
    fn options_reflect_the_spec() {
        let spec = JobSpec {
            bench: "ep".into(),
            class: "s".into(),
            stop_depth: "f".into(),
            threads: Some(2),
            wall_limit_ms: Some(250),
            ..Default::default()
        };
        let o = spec.options().unwrap();
        assert_eq!(o.search.threads, 2);
        assert!(matches!(o.search.stop_depth, StopDepth::Function));
        assert_eq!(o.search.exec.wall_limit, Some(Duration::from_millis(250)));
        // Default lattice is the classic single-only descent.
        assert_eq!(o.search.lattice, vec![mpconfig::Flag::Single]);
        let w = spec.workload().unwrap();
        assert_eq!(w.name, "ep");
        let deep = JobSpec { lattice: "s,b".into(), ..spec };
        let o = deep.options().unwrap();
        assert_eq!(o.search.lattice, vec![mpconfig::Flag::Single, mpconfig::Flag::Bf16]);
    }

    #[test]
    fn namespace_separates_semantically_different_jobs() {
        let a = JobSpec { bench: "ep".into(), class: "s".into(), ..Default::default() };
        let mut b = a.clone();
        assert_eq!(a.cache_namespace(), b.cache_namespace());
        b.tol = Some(1e-3);
        assert_ne!(a.cache_namespace(), b.cache_namespace());
        let mut c = a.clone();
        c.lean = true;
        assert_ne!(a.cache_namespace(), c.cache_namespace());
        // Purely schedule-shaping knobs do not split the cache.
        let mut d = a.clone();
        d.threads = Some(7);
        d.batch = 5;
        d.wall_limit_ms = Some(9);
        assert_eq!(a.cache_namespace(), d.cache_namespace());
    }
}
