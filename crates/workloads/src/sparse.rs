//! Host-side sparse matrix helpers: CSR construction, SpMV, and the
//! 5-point Laplacian / memplus-like generators used to bake workload data
//! sets into program images.

use crate::rng::StdRng;

/// A CSR (compressed sparse row) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows (== columns; all our matrices are square).
    pub n: usize,
    /// Row pointers, length `n + 1`.
    pub rowptr: Vec<i64>,
    /// Column indices, length `nnz`.
    pub colidx: Vec<i64>,
    /// Values, length `nnz`.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Build from coordinate triplets (duplicates summed, rows sorted).
    pub fn from_coo(n: usize, mut coo: Vec<(usize, usize, f64)>) -> Csr {
        coo.sort_by_key(|&(r, c, _)| (r, c));
        let mut rowptr = vec![0i64; n + 1];
        let mut colidx: Vec<i64> = Vec::with_capacity(coo.len());
        let mut vals: Vec<f64> = Vec::with_capacity(coo.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in coo {
            assert!(r < n && c < n, "coordinate out of range");
            if last == Some((r, c)) {
                *vals.last_mut().unwrap() += v;
            } else {
                colidx.push(c as i64);
                vals.push(v);
                rowptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..n {
            rowptr[r + 1] += rowptr[r];
        }
        Csr { n, rowptr, colidx, vals }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        for (yr, w) in y.iter_mut().zip(self.rowptr.windows(2)) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            *yr = (a..b).map(|k| self.vals[k] * x[self.colidx[k] as usize]).sum();
        }
        y
    }

    /// Infinity norm of the matrix.
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|r| {
                let (a, b) = (self.rowptr[r] as usize, self.rowptr[r + 1] as usize);
                (a..b).map(|k| self.vals[k].abs()).sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Dense copy (row-major), for small direct solvers.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n * self.n];
        for r in 0..self.n {
            let (a, b) = (self.rowptr[r] as usize, self.rowptr[r + 1] as usize);
            for k in a..b {
                d[r * self.n + self.colidx[k] as usize] += self.vals[k];
            }
        }
        d
    }
}

/// The 2D 5-point Laplacian on a `g × g` grid (SPD, `n = g²`).
pub fn laplacian_2d(g: usize) -> Csr {
    let n = g * g;
    let mut coo = Vec::with_capacity(5 * n);
    let idx = |i: usize, j: usize| i * g + j;
    for i in 0..g {
        for j in 0..g {
            coo.push((idx(i, j), idx(i, j), 4.0));
            if i > 0 {
                coo.push((idx(i, j), idx(i - 1, j), -1.0));
            }
            if i + 1 < g {
                coo.push((idx(i, j), idx(i + 1, j), -1.0));
            }
            if j > 0 {
                coo.push((idx(i, j), idx(i, j - 1), -1.0));
            }
            if j + 1 < g {
                coo.push((idx(i, j), idx(i, j + 1), -1.0));
            }
        }
    }
    Csr::from_coo(n, coo)
}

/// A memplus-like asymmetric circuit matrix: banded sparsity with a few
/// long-range couplings, strong diagonal, and entry magnitudes spread over
/// several orders of magnitude (conductances in a memory circuit span
/// wide ranges — the property that makes the SuperLU threshold sweep of
/// the paper's Fig. 11 interesting).
pub fn memplus_like(n: usize, band: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Vec::new();
    for r in 0..n {
        let mut row_sum = 0.0f64;
        for dc in 1..=band {
            for c in [r.checked_sub(dc), Some(r + dc)].into_iter().flatten() {
                if c < n && rng.random_bool(0.6) {
                    // magnitudes spread over ~4 decades, random sign
                    let mag = 10f64.powf(rng.random_range(-3.0..1.0));
                    let v = if rng.random_bool(0.5) { mag } else { -mag };
                    coo.push((r, c, v));
                    row_sum += v.abs();
                }
            }
        }
        // occasional long-range coupling (word/bit lines)
        if rng.random_bool(0.15) {
            let c = rng.random_range(0..n);
            if c != r {
                let v = 10f64.powf(rng.random_range(-3.0..0.0));
                coo.push((r, c, v));
                row_sum += v;
            }
        }
        // strong-ish (but not strictly dominant) diagonal
        let d = row_sum * rng.random_range(0.9..1.6) + 1e-3;
        coo.push((r, r, d));
    }
    Csr::from_coo(n, coo)
}

/// Dense LU with partial pivoting (host reference). Returns `None` for a
/// singular matrix. `a` is row-major `n × n`, overwritten with LU factors.
pub fn dense_lu_solve(a: &mut [f64], n: usize, b: &mut [f64]) -> Option<()> {
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // pivot
        let (mut best, mut bv) = (k, a[piv[k] * n + k].abs());
        for r in k + 1..n {
            let v = a[piv[r] * n + k].abs();
            if v > bv {
                best = r;
                bv = v;
            }
        }
        if bv == 0.0 {
            return None;
        }
        piv.swap(k, best);
        let pk = piv[k];
        for &pr in &piv[k + 1..n] {
            let m = a[pr * n + k] / a[pk * n + k];
            a[pr * n + k] = m;
            for c in k + 1..n {
                a[pr * n + c] -= m * a[pk * n + c];
            }
        }
    }
    // forward/back substitution on permuted rows
    let mut y = vec![0.0; n];
    for r in 0..n {
        let mut s = b[piv[r]];
        for c in 0..r {
            s -= a[piv[r] * n + c] * y[c];
        }
        y[r] = s;
    }
    for r in (0..n).rev() {
        let mut s = y[r];
        for c in r + 1..n {
            s -= a[piv[r] * n + c] * b[c];
        }
        b[r] = s / a[piv[r] * n + r];
    }
    Some(())
}

/// Componentwise backward error `‖b − A·x‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞)`, the
/// metric SuperLU's example driver reports.
pub fn backward_error(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.spmv(x);
    let rmax = b.iter().zip(&ax).map(|(bi, axi)| (bi - axi).abs()).fold(0.0, f64::max);
    let xmax = x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let bmax = b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    rmax / (a.norm_inf() * xmax + bmax).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_structure() {
        let a = laplacian_2d(3);
        assert_eq!(a.n, 9);
        // interior node has 5 entries, corners 3
        assert_eq!(a.nnz(), 9 + 2 * 12); // diag + 2 per interior edge
                                         // symmetric positive row sums ≥ 0
        let x = vec![1.0; 9];
        let y = a.spmv(&x);
        assert!(y.iter().all(|&v| v >= 0.0));
        assert_eq!(a.norm_inf(), 8.0);
    }

    #[test]
    fn spmv_identity_like() {
        let a = Csr::from_coo(3, vec![(0, 0, 2.0), (1, 1, 3.0), (2, 2, 4.0)]);
        assert_eq!(a.spmv(&[1.0, 1.0, 1.0]), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn memplus_like_is_reproducible_and_wild() {
        let a = memplus_like(50, 4, 42);
        let b = memplus_like(50, 4, 42);
        assert_eq!(a, b);
        let c = memplus_like(50, 4, 43);
        assert_ne!(a, c);
        // magnitude spread of several decades
        let max = a.vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let min = a.vals.iter().fold(f64::INFINITY, |m, v| m.min(v.abs()));
        assert!(max / min > 1e2);
    }

    #[test]
    fn dense_lu_solves_memplus_like() {
        let a = memplus_like(40, 4, 7);
        let xs: Vec<f64> = (0..40).map(|k| 1.0 + 0.01 * k as f64).collect();
        let b = a.spmv(&xs);
        let mut d = a.to_dense();
        let mut x = b.clone();
        dense_lu_solve(&mut d, 40, &mut x).unwrap();
        for (g, w) in x.iter().zip(&xs) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
        assert!(backward_error(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn backward_error_detects_garbage() {
        let a = laplacian_2d(3);
        let b = vec![1.0; 9];
        let junk = vec![100.0; 9];
        assert!(backward_error(&a, &junk, &b) > 1e-2);
    }
}
