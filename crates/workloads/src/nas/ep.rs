//! EP — the "embarrassingly parallel" kernel: generate pseudo-random
//! pairs, accept those inside the unit disc, transform to independent
//! Gaussians (Marsaglia polar method), tally them into deviation bins and
//! accumulate the sums.
//!
//! Faithful detail: the random number generator is the NAS `randlc`
//! linear congruential generator, which performs exact 46-bit integer
//! arithmetic *using double-precision multiplications* (the classic
//! `r23`/`t23` splitting). Replacing those operations with single
//! precision destroys the generator, so the function carries the paper's
//! `ignore` recommendation (§2.1: "flagging unusual constructs like
//! random number generation routines").

use super::size;
use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

const LCG_A: f64 = 1220703125.0; // 5^13, the NAS multiplier
const SEED: f64 = 271828183.0;

/// Build the EP workload. The class sets the number of generated pairs.
pub fn ep(class: Class) -> Workload {
    ep_sized(class, size(class, 1 << 8, 1 << 10, 1 << 12, 1 << 14) as i64)
}

/// Build EP with an explicit pair count (used by the rank-sharded scaling
/// experiments, where each MPI-rank analogue generates `pairs/nranks`).
pub fn ep_sized(class: Class, n: i64) -> Workload {
    let mut ir = IrProgram::new(format!("ep.{}", class.letter()));

    let rngst = ir.array_f64_init("rngst", vec![SEED]);
    let sums = ir.array_f64("sums", 2); // sx, sy
    let q = ir.array_f64("q", 10); // deviation bins

    // aint(x): truncation toward zero through the int domain.
    let aint = |e: Expr| itof(ftoi(e));

    // randlc: x_{k+1} = a * x_k mod 2^46, via 23-bit halves.
    let (randlc, _) = ir.declare("randlc", &[], Some(Ty::F64));
    {
        let t1 = ir.local_f(randlc);
        let x = ir.local_f(randlc);
        let x1 = ir.local_f(randlc);
        let x2 = ir.local_f(randlc);
        let a1 = ir.local_f(randlc);
        let a2 = ir.local_f(randlc);
        let z = ir.local_f(randlc);
        let t3 = ir.local_f(randlc);
        let r23 = f(2f64.powi(-23));
        let t23 = f(2f64.powi(23));
        let r46 = f(2f64.powi(-46));
        let t46 = f(2f64.powi(46));
        ir.define(
            randlc,
            vec![
                set(a1, aint(fmul(r23.clone(), f(LCG_A)))),
                set(a2, fsub(f(LCG_A), fmul(t23.clone(), v(a1)))),
                set(x, ld(rngst, i(0))),
                set(x1, aint(fmul(r23.clone(), v(x)))),
                set(x2, fsub(v(x), fmul(t23.clone(), v(x1)))),
                set(t1, fadd(fmul(v(a1), v(x2)), fmul(v(a2), v(x1)))),
                set(z, fsub(v(t1), fmul(t23.clone(), aint(fmul(r23, v(t1)))))),
                set(t3, fadd(fmul(t23, v(z)), fmul(v(a2), v(x2)))),
                set(x, fsub(v(t3), fmul(t46, aint(fmul(r46.clone(), v(t3)))))),
                st(rngst, i(0), v(x)),
                ret(fmul(r46, v(x))),
            ],
        );
        ir.mark_ignore(randlc);
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let x1 = ir.local_f(fr);
        let x2 = ir.local_f(fr);
        let t = ir.local_f(fr);
        let t2 = ir.local_f(fr);
        let gx = ir.local_f(fr);
        let gy = ir.local_f(fr);
        let l = ir.local_i(fr);
        vec![for_(
            k,
            i(0),
            i(n),
            vec![
                set(x1, fsub(fmul(f(2.0), call(randlc, vec![])), f(1.0))),
                set(x2, fsub(fmul(f(2.0), call(randlc, vec![])), f(1.0))),
                set(t, fadd(fmul(v(x1), v(x1)), fmul(v(x2), v(x2)))),
                if_(
                    cmp(Cc::Le, v(t), f(1.0)),
                    vec![
                        // t2 = sqrt(-2 ln t / t)
                        set(t2, fsqrt(fdiv(fmul(f(-2.0), fmath(MathFun::Log, v(t))), v(t)))),
                        set(gx, fmul(v(x1), v(t2))),
                        set(gy, fmul(v(x2), v(t2))),
                        st(sums, i(0), fadd(ld(sums, i(0)), v(gx))),
                        st(sums, i(1), fadd(ld(sums, i(1)), v(gy))),
                        set(l, ftoi(fmax(fabs(v(gx)), fabs(v(gy))))),
                        if_(
                            cmp(Cc::Lt, v(l), i(10)),
                            vec![st(q, v(l), fadd(ld(q, v(l)), f(1.0)))],
                            vec![],
                        ),
                    ],
                    vec![],
                ),
            ],
        )]
    });
    ir.set_entry(main);

    Workload::package("ep", class, ir, 1e-6, vec![("sums".into(), 2), ("q".into(), 10)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::{Vm, VmOptions};

    #[test]
    fn reference_run_tallies_gaussians() {
        let w = ep(Class::S);
        let r = w.reference();
        let bins: f64 = r[1].iter().sum();
        // acceptance rate of the polar method is π/4 ≈ 0.785
        let accepted = bins;
        let rate = accepted / 256.0;
        assert!(rate > 0.6 && rate < 0.95, "acceptance rate {rate}");
        // nearly all gaussians land in bins 0..3
        assert!(r[1][0] + r[1][1] + r[1][2] > 0.9 * accepted);
        // sums are O(sqrt(n)), not O(n)
        assert!(r[0][0].abs() < 64.0 && r[0][1].abs() < 64.0);
    }

    #[test]
    fn rng_is_marked_ignore() {
        let w = ep(Class::S);
        assert_eq!(w.ignore_funcs(), vec!["randlc".to_string()]);
    }

    #[test]
    fn lcg_matches_host_model() {
        // run just 3 draws in the VM and compare with a host 46-bit LCG
        let w = ep(Class::S);
        let p = w.program();
        let mut vm = Vm::new(p, VmOptions::default());
        assert!(vm.run().ok());
        // final RNG state must equal a^(2n) * seed mod 2^46 (two draws per
        // pair); model on host with u128 arithmetic.
        let m = 1u128 << 46;
        let mut x = SEED as u128;
        let a = LCG_A as u128;
        // count draws: 2 per iteration
        for _ in 0..(2 * 256) {
            x = (a * x) % m;
        }
        let got = vm.mem.read_f64_slice(p.symbol("rngst").unwrap(), 1).unwrap()[0];
        assert_eq!(got, x as f64, "FP-trick LCG diverged from exact 46-bit model");
    }

    #[test]
    fn f32_lowering_breaks_the_rng() {
        // The whole point of the ignore flag: in pure f32 the 46-bit
        // arithmetic is destroyed and the state wanders off.
        let w = ep(Class::S);
        let p32 = w.compile_f32();
        let mut vm = Vm::new(&p32, VmOptions::default());
        assert!(vm.run().ok());
        let got = vm.mem.read_f32_slice(p32.symbol("rngst").unwrap(), 1).unwrap()[0] as f64;
        let m = 1u128 << 46;
        let mut x = SEED as u128;
        for _ in 0..(2 * 256) {
            x = (LCG_A as u128 * x) % m;
        }
        assert_ne!(got, x as f64);
    }
}
