//! BT — batched tridiagonal line solves (the block-tridiagonal solver's
//! scalar analogue): many independent diagonally dominant tridiagonal
//! systems solved by the Thomas algorithm, verified against a manufactured
//! solution.

use super::size;
use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Build the BT workload. The class sets the number of lines; line length
/// is four times the line count.
pub fn bt(class: Class) -> Workload {
    let m = size(class, 4, 8, 12, 24) as i64;
    let l = 4 * m;
    let mut ir = IrProgram::new(format!("bt.{}", class.letter()));

    let aw = ir.array_f64("aw", l as usize);
    let bw = ir.array_f64("bw", l as usize);
    let cw = ir.array_f64("cw", l as usize);
    let dw = ir.array_f64("dw", l as usize);
    let uw = ir.array_f64("uw", l as usize);
    let ex = ir.array_f64("ex", l as usize); // manufactured exact solution
    let out = ir.array_f64("out", 2); // [checksum, soldiff]

    // fill the coefficient line `li` and its manufactured rhs
    let (fill, fa) = ir.declare("fill", &[Ty::I64], None);
    {
        let li = fa[0];
        let j = ir.local_i(fill);
        let um = ir.local_f(fill);
        let uc = ir.local_f(fill);
        let up = ir.local_f(fill);
        let exact = |li: Var, j: Expr| {
            fmath(MathFun::Sin, fadd(fmul(f(0.7), itof(j)), fmul(f(0.3), itof(v(li)))))
        };
        ir.define(
            fill,
            vec![for_(
                j,
                i(0),
                i(l),
                vec![
                    st(
                        aw,
                        v(j),
                        fadd(
                            f(-1.0),
                            fmul(f(0.05), fmath(MathFun::Cos, fadd(itof(v(j)), itof(v(li))))),
                        ),
                    ),
                    st(
                        bw,
                        v(j),
                        fadd(f(2.5), fmul(f(0.1), fmath(MathFun::Sin, fmul(f(1.1), itof(v(j)))))),
                    ),
                    st(
                        cw,
                        v(j),
                        fadd(f(-1.0), fmul(f(0.05), fmath(MathFun::Sin, fmul(f(1.3), itof(v(j)))))),
                    ),
                    st(ex, v(j), exact(li, v(j))),
                    // d_j = a_j·u_{j−1} + b_j·u_j + c_j·u_{j+1} (zero beyond ends)
                    set(uc, exact(li, v(j))),
                    if_(
                        cmp(Cc::Gt, v(j), i(0)),
                        vec![set(um, exact(li, isub(v(j), i(1))))],
                        vec![set(um, f(0.0))],
                    ),
                    if_(
                        cmp(Cc::Lt, v(j), i(l - 1)),
                        vec![set(up, exact(li, iadd(v(j), i(1))))],
                        vec![set(up, f(0.0))],
                    ),
                    st(
                        dw,
                        v(j),
                        fadd(
                            fadd(fmul(ld(aw, v(j)), v(um)), fmul(ld(bw, v(j)), v(uc))),
                            fmul(ld(cw, v(j)), v(up)),
                        ),
                    ),
                ],
            )],
        );
    }

    // Thomas algorithm on the workspace line
    let (thomas, _) = ir.declare("thomas", &[], None);
    {
        let j = ir.local_i(thomas);
        let mfac = ir.local_f(thomas);
        ir.define(
            thomas,
            vec![
                // forward elimination (in-place c' and d')
                st(cw, i(0), fdiv(ld(cw, i(0)), ld(bw, i(0)))),
                st(dw, i(0), fdiv(ld(dw, i(0)), ld(bw, i(0)))),
                for_(
                    j,
                    i(1),
                    i(l),
                    vec![
                        set(mfac, fsub(ld(bw, v(j)), fmul(ld(aw, v(j)), ld(cw, isub(v(j), i(1)))))),
                        st(cw, v(j), fdiv(ld(cw, v(j)), v(mfac))),
                        st(
                            dw,
                            v(j),
                            fdiv(
                                fsub(ld(dw, v(j)), fmul(ld(aw, v(j)), ld(dw, isub(v(j), i(1))))),
                                v(mfac),
                            ),
                        ),
                    ],
                ),
                // back substitution
                st(uw, i(l - 1), ld(dw, i(l - 1))),
                set(j, i(l - 2)),
                while_(
                    cmp(Cc::Ge, v(j), i(0)),
                    vec![
                        st(
                            uw,
                            v(j),
                            fsub(ld(dw, v(j)), fmul(ld(cw, v(j)), ld(uw, iadd(v(j), i(1))))),
                        ),
                        set(j, isub(v(j), i(1))),
                    ],
                ),
            ],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let li = ir.local_i(fr);
        let j = ir.local_i(fr);
        vec![for_(
            li,
            i(0),
            i(m),
            vec![
                do_(call(fill, vec![v(li)])),
                do_(call(thomas, vec![])),
                for_(
                    j,
                    i(0),
                    i(l),
                    vec![
                        st(out, i(0), fadd(ld(out, i(0)), ld(uw, v(j)))),
                        st(out, i(1), fadd(ld(out, i(1)), fabs(fsub(ld(uw, v(j)), ld(ex, v(j)))))),
                    ],
                ),
            ],
        )]
    });
    ir.set_entry(main);

    Workload::package("bt", class, ir, 1e-5, vec![("out".into(), 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_recovers_the_manufactured_solution() {
        let w = bt(Class::S);
        let out = &w.reference()[0];
        assert!(out[1] < 1e-10, "solution error {}", out[1]);
        assert!(out[0].abs() > 0.01, "checksum {}", out[0]);
    }

    #[test]
    fn f32_build_stays_within_loose_tolerance() {
        let w = bt(Class::S);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let got = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 2).unwrap();
        let want = &w.reference()[0];
        // diagonally dominant: single precision errs around 1e-5, fine at 5e-4
        assert!(crate::rel_err(got[0] as f64, want[0]) < 5e-4);
        assert!(crate::rel_err(got[1] as f64, want[1]) < 5e-4);
    }
}
