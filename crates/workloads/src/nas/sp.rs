//! SP — a scalar pentadiagonal solver: batched five-diagonal Gaussian
//! elimination (no pivoting, as in the real SP's scalar penta stage),
//! verified against a manufactured solution.
//!
//! The pentadiagonal systems are only mildly diagonally dominant, so the
//! elimination is noticeably more precision-sensitive than BT's
//! tridiagonal Thomas — reflecting SP's mixed profile in the paper's
//! Fig. 10 (lowest static replacement, failed final composition).

use super::size;
use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Build the SP workload. The class sets the number of lines; line length
/// is four times the line count.
pub fn sp(class: Class) -> Workload {
    let m = size(class, 4, 8, 12, 24) as i64;
    let l = 4 * m;
    let mut ir = IrProgram::new(format!("sp.{}", class.letter()));

    // five diagonals + rhs + solution + exact
    let ew = ir.array_f64("ew", l as usize); // sub-sub
    let aw = ir.array_f64("aw", l as usize); // sub
    let dw = ir.array_f64("dw", l as usize); // main
    let cw = ir.array_f64("cw", l as usize); // super
    let fw = ir.array_f64("fw", l as usize); // super-super
    let bw = ir.array_f64("bw", l as usize); // rhs
    let xw = ir.array_f64("xw", l as usize);
    let ex = ir.array_f64("ex", l as usize);
    let out = ir.array_f64("out", 2); // [checksum, soldiff]

    let (fill, fa) = ir.declare("fill", &[Ty::I64], None);
    {
        let li = fa[0];
        let j = ir.local_i(fill);
        let s = ir.local_f(fill);
        let exact = |li: Var, j: Expr| {
            fmath(MathFun::Cos, fadd(fmul(f(0.9), itof(j)), fmul(f(0.4), itof(v(li)))))
        };
        ir.define(
            fill,
            vec![
                for_(
                    j,
                    i(0),
                    i(l),
                    vec![
                        st(ew, v(j), f(0.2)),
                        st(aw, v(j), fadd(f(-1.0), fmul(f(0.04), fmath(MathFun::Sin, itof(v(j)))))),
                        st(
                            dw,
                            v(j),
                            fadd(
                                f(3.1),
                                fmul(
                                    f(0.08),
                                    fmath(
                                        MathFun::Cos,
                                        fmul(f(0.7), fadd(itof(v(j)), itof(v(li)))),
                                    ),
                                ),
                            ),
                        ),
                        st(
                            cw,
                            v(j),
                            fadd(
                                f(-1.0),
                                fmul(f(0.04), fmath(MathFun::Cos, fmul(f(1.7), itof(v(j))))),
                            ),
                        ),
                        st(fw, v(j), f(0.2)),
                        st(ex, v(j), exact(li, v(j))),
                    ],
                ),
                // rhs from the manufactured solution: b = P·x* (zero-padded)
                for_(
                    j,
                    i(0),
                    i(l),
                    vec![
                        set(s, fmul(ld(dw, v(j)), ld(ex, v(j)))),
                        if_(
                            cmp(Cc::Ge, isub(v(j), i(2)), i(0)),
                            vec![set(s, fadd(v(s), fmul(ld(ew, v(j)), ld(ex, isub(v(j), i(2))))))],
                            vec![],
                        ),
                        if_(
                            cmp(Cc::Ge, isub(v(j), i(1)), i(0)),
                            vec![set(s, fadd(v(s), fmul(ld(aw, v(j)), ld(ex, isub(v(j), i(1))))))],
                            vec![],
                        ),
                        if_(
                            cmp(Cc::Lt, iadd(v(j), i(1)), i(l)),
                            vec![set(s, fadd(v(s), fmul(ld(cw, v(j)), ld(ex, iadd(v(j), i(1))))))],
                            vec![],
                        ),
                        if_(
                            cmp(Cc::Lt, iadd(v(j), i(2)), i(l)),
                            vec![set(s, fadd(v(s), fmul(ld(fw, v(j)), ld(ex, iadd(v(j), i(2))))))],
                            vec![],
                        ),
                        st(bw, v(j), v(s)),
                    ],
                ),
            ],
        );
    }

    // pentadiagonal elimination without pivoting
    let (penta, _) = ir.declare("penta", &[], None);
    {
        let k = ir.local_i(penta);
        let mfac = ir.local_f(penta);
        ir.define(
            penta,
            vec![
                for_(
                    k,
                    i(0),
                    i(l - 1),
                    vec![
                        // eliminate a[k+1]
                        set(mfac, fdiv(ld(aw, iadd(v(k), i(1))), ld(dw, v(k)))),
                        st(
                            dw,
                            iadd(v(k), i(1)),
                            fsub(ld(dw, iadd(v(k), i(1))), fmul(v(mfac), ld(cw, v(k)))),
                        ),
                        st(
                            cw,
                            iadd(v(k), i(1)),
                            fsub(ld(cw, iadd(v(k), i(1))), fmul(v(mfac), ld(fw, v(k)))),
                        ),
                        st(
                            bw,
                            iadd(v(k), i(1)),
                            fsub(ld(bw, iadd(v(k), i(1))), fmul(v(mfac), ld(bw, v(k)))),
                        ),
                        // eliminate e[k+2]
                        if_(
                            cmp(Cc::Lt, iadd(v(k), i(2)), i(l)),
                            vec![
                                set(mfac, fdiv(ld(ew, iadd(v(k), i(2))), ld(dw, v(k)))),
                                st(
                                    aw,
                                    iadd(v(k), i(2)),
                                    fsub(ld(aw, iadd(v(k), i(2))), fmul(v(mfac), ld(cw, v(k)))),
                                ),
                                st(
                                    dw,
                                    iadd(v(k), i(2)),
                                    fsub(ld(dw, iadd(v(k), i(2))), fmul(v(mfac), ld(fw, v(k)))),
                                ),
                                st(
                                    bw,
                                    iadd(v(k), i(2)),
                                    fsub(ld(bw, iadd(v(k), i(2))), fmul(v(mfac), ld(bw, v(k)))),
                                ),
                            ],
                            vec![],
                        ),
                    ],
                ),
                // back substitution
                st(xw, i(l - 1), fdiv(ld(bw, i(l - 1)), ld(dw, i(l - 1)))),
                st(
                    xw,
                    i(l - 2),
                    fdiv(
                        fsub(ld(bw, i(l - 2)), fmul(ld(cw, i(l - 2)), ld(xw, i(l - 1)))),
                        ld(dw, i(l - 2)),
                    ),
                ),
                set(k, i(l - 3)),
                while_(
                    cmp(Cc::Ge, v(k), i(0)),
                    vec![
                        st(
                            xw,
                            v(k),
                            fdiv(
                                fsub(
                                    fsub(
                                        ld(bw, v(k)),
                                        fmul(ld(cw, v(k)), ld(xw, iadd(v(k), i(1)))),
                                    ),
                                    fmul(ld(fw, v(k)), ld(xw, iadd(v(k), i(2)))),
                                ),
                                ld(dw, v(k)),
                            ),
                        ),
                        set(k, isub(v(k), i(1))),
                    ],
                ),
            ],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let li = ir.local_i(fr);
        let j = ir.local_i(fr);
        vec![for_(
            li,
            i(0),
            i(m),
            vec![
                do_(call(fill, vec![v(li)])),
                do_(call(penta, vec![])),
                for_(
                    j,
                    i(0),
                    i(l),
                    vec![
                        st(out, i(0), fadd(ld(out, i(0)), ld(xw, v(j)))),
                        st(out, i(1), fadd(ld(out, i(1)), fabs(fsub(ld(xw, v(j)), ld(ex, v(j)))))),
                    ],
                ),
            ],
        )]
    });
    ir.set_entry(main);

    Workload::package("sp", class, ir, 5e-6, vec![("out".into(), 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penta_recovers_the_manufactured_solution() {
        let w = sp(Class::S);
        let out = &w.reference()[0];
        assert!(out[1] < 1e-9, "solution error {}", out[1]);
        assert!(out[0].abs() > 0.01, "checksum {}", out[0]);
    }

    #[test]
    fn f32_penta_is_noticeably_less_accurate_than_tridiagonal() {
        let w = sp(Class::S);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let got = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 2).unwrap();
        let want = &w.reference()[0];
        // the accumulated |x − x*| in f32 dwarfs the f64 value
        assert!((got[1] as f64) > 100.0 * want[1].max(1e-12));
    }
}
