//! CG — conjugate gradients on a sparse symmetric positive-definite
//! system (a 2D 5-point Laplacian), CSR storage, fixed iteration count.
//!
//! The verification tolerance is tight (the solver must actually reach a
//! deep residual), which makes the hot SpMV/AXPY loop precision-sensitive:
//! like the paper's CG rows in Fig. 10, most *static* instructions can be
//! replaced (setup, norms) but only a small fraction of *executions* can.

use super::size;
use crate::sparse::laplacian_2d;
use crate::{Class, Workload};
use fpir::*;

/// Build the CG workload. The class sets the grid edge (n = g²).
pub fn cg(class: Class) -> Workload {
    cg_sized(class, size(class, 4, 6, 8, 12), 25)
}

/// Build CG with an explicit grid edge and iteration count.
pub fn cg_sized(class: Class, g: usize, niter: i64) -> Workload {
    let a = laplacian_2d(g);
    let n = a.n as i64;

    let mut ir = IrProgram::new(format!("cg.{}", class.letter()));
    let rowptr = ir.array_i64_init("rowptr", a.rowptr.clone());
    let colidx = ir.array_i64_init("colidx", a.colidx.clone());
    let avals = ir.array_f64_init("avals", a.vals.clone());
    // b = A·x* for a smooth, non-representable manufactured solution
    // (an all-ones solution would be bitwise-exact even in f32)
    let xstar: Vec<f64> = (0..a.n).map(|k| 1.0 + 0.3 * (0.37 * k as f64).sin()).collect();
    let bvec = ir.array_f64_init("b", a.spmv(&xstar));
    let x = ir.array_f64("x", a.n);
    let r = ir.array_f64("r", a.n);
    let p = ir.array_f64("p", a.n);
    let q = ir.array_f64("q", a.n);
    let out = ir.array_f64("out", 2); // [resnorm, x·x]

    // spmv: q = A p
    let (spmv, _) = ir.declare("spmv", &[], None);
    {
        let row = ir.local_i(spmv);
        let k = ir.local_i(spmv);
        let kend = ir.local_i(spmv);
        let s = ir.local_f(spmv);
        ir.define(
            spmv,
            vec![for_(
                row,
                i(0),
                i(n),
                vec![
                    set(s, f(0.0)),
                    set(k, ld(rowptr, v(row))),
                    set(kend, ld(rowptr, iadd(v(row), i(1)))),
                    while_(
                        cmp(Cc::Lt, v(k), v(kend)),
                        vec![
                            set(s, fadd(v(s), fmul(ld(avals, v(k)), ld(p, ld(colidx, v(k)))))),
                            set(k, iadd(v(k), i(1))),
                        ],
                    ),
                    st(q, v(row), v(s)),
                ],
            )],
        );
    }

    // dot(u, w) over the fixed arrays; parameterized by a selector would
    // need pointers, so emit three small helpers instead.
    let mk_dot = |ir: &mut IrProgram, name: &str, u: ArrRef, w: ArrRef| {
        let (fref, _) = ir.declare(name, &[], Some(Ty::F64));
        let k = ir.local_i(fref);
        let s = ir.local_f(fref);
        ir.define(
            fref,
            vec![
                set(s, f(0.0)),
                for_(k, i(0), i(n), vec![set(s, fadd(v(s), fmul(ld(u, v(k)), ld(w, v(k)))))]),
                ret(v(s)),
            ],
        );
        fref
    };
    let dot_rr = mk_dot(&mut ir, "dot_rr", r, r);
    let dot_pq = mk_dot(&mut ir, "dot_pq", p, q);
    let dot_xx = mk_dot(&mut ir, "dot_xx", x, x);

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let it = ir.local_i(fr);
        let rho = ir.local_f(fr);
        let rho2 = ir.local_f(fr);
        let alpha = ir.local_f(fr);
        let beta = ir.local_f(fr);
        vec![
            // x = 0, r = b, p = r
            for_(
                k,
                i(0),
                i(n),
                vec![st(x, v(k), f(0.0)), st(r, v(k), ld(bvec, v(k))), st(p, v(k), ld(bvec, v(k)))],
            ),
            set(rho, call(dot_rr, vec![])),
            for_(
                it,
                i(0),
                i(niter),
                vec![
                    do_(call(spmv, vec![])),
                    set(alpha, fdiv(v(rho), call(dot_pq, vec![]))),
                    for_(
                        k,
                        i(0),
                        i(n),
                        vec![
                            st(x, v(k), fadd(ld(x, v(k)), fmul(v(alpha), ld(p, v(k))))),
                            st(r, v(k), fsub(ld(r, v(k)), fmul(v(alpha), ld(q, v(k))))),
                        ],
                    ),
                    set(rho2, call(dot_rr, vec![])),
                    set(beta, fdiv(v(rho2), v(rho))),
                    set(rho, v(rho2)),
                    for_(
                        k,
                        i(0),
                        i(n),
                        vec![st(p, v(k), fadd(ld(r, v(k)), fmul(v(beta), ld(p, v(k)))))],
                    ),
                ],
            ),
            // true residual b − A·x (the recurrence residual decays below
            // the attainable accuracy and would hide f32 stagnation)
            for_(k, i(0), i(n), vec![st(p, v(k), ld(x, v(k)))]),
            do_(call(spmv, vec![])),
            set(rho, f(0.0)),
            for_(
                k,
                i(0),
                i(n),
                vec![
                    set(rho2, fsub(ld(bvec, v(k)), ld(q, v(k)))),
                    set(rho, fadd(v(rho), fmul(v(rho2), v(rho2)))),
                ],
            ),
            st(out, i(0), fsqrt(v(rho))),
            st(out, i(1), call(dot_xx, vec![])),
        ]
    });
    ir.set_entry(main);

    Workload::package("cg", class, ir, 1e-8, vec![("out".into(), 2)])
}

/// Host-side `x*·x*` for a grid edge `g` (used by tests).
pub fn cg_expected_xdot(g: usize) -> f64 {
    (0..g * g).map(|k| 1.0 + 0.3 * (0.37 * k as f64).sin()).map(|v| v * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_the_manufactured_solution() {
        let w = cg(Class::S);
        let out = &w.reference()[0];
        assert!(out[0] < 1e-8, "residual {}", out[0]);
        assert!((out[1] - cg_expected_xdot(4)).abs() < 1e-6, "x·x = {}", out[1]);
    }

    #[test]
    fn f32_version_cannot_reach_the_tolerance() {
        // the pure-f32 build stalls well above the f64 residual — the
        // property that makes CG dynamically sensitive.
        let w = cg(Class::W);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let res = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 2).unwrap();
        assert!(res[0] as f64 > 1e-8, "f32 residual suspiciously deep: {}", res[0]);
        // but the solution itself is still roughly right
        assert!((res[1] as f64 - cg_expected_xdot(6)).abs() < 1e-2);
    }

    #[test]
    fn class_scaling() {
        assert!(cg(Class::S).program().symbol("x").is_some());
        let ws = cg(Class::S);
        let wa = cg(Class::A);
        assert!(wa.program().globals.len() > ws.program().globals.len());
    }
}
