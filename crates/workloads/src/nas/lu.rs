//! LU — SSOR relaxation sweeps on a 2D Poisson problem (the
//! lower-upper symmetric Gauss–Seidel structure of the real LU), with
//! halo-padded storage and forward/backward sweeps.

use super::size;
use crate::{Class, Workload};
use fpir::*;

/// Build the LU workload. The class sets the interior grid edge.
pub fn lu(class: Class) -> Workload {
    let g = size(class, 6, 8, 12, 20) as i64;
    let w = g + 2; // padded width
    let niter = 40i64;
    let omega = 1.2f64;

    let mut ir = IrProgram::new(format!("lu.{}", class.letter()));
    let u = ir.array_f64("u", (w * w) as usize);
    let out = ir.array_f64("out", 2); // [resnorm, u·u]

    let idx = |r: Expr, c: Expr| iadd(imul(r, i(w)), c);

    // one relaxation update at (r, c)
    let relax_stmt = |r: Var, c: Var| {
        st(
            u,
            idx(v(r), v(c)),
            fadd(
                fmul(f(1.0 - omega), ld(u, idx(v(r), v(c)))),
                fmul(
                    f(omega / 4.0),
                    fadd(
                        f(1.0), // rhs ≡ 1
                        fadd(
                            fadd(
                                ld(u, idx(isub(v(r), i(1)), v(c))),
                                ld(u, idx(iadd(v(r), i(1)), v(c))),
                            ),
                            fadd(
                                ld(u, idx(v(r), isub(v(c), i(1)))),
                                ld(u, idx(v(r), iadd(v(c), i(1)))),
                            ),
                        ),
                    ),
                ),
            ),
        )
    };

    // forward sweep
    let (fwd, _) = ir.declare("sweep_fwd", &[], None);
    {
        let r = ir.local_i(fwd);
        let c = ir.local_i(fwd);
        ir.define(
            fwd,
            vec![for_(r, i(1), i(g + 1), vec![for_(c, i(1), i(g + 1), vec![relax_stmt(r, c)])])],
        );
    }
    // backward sweep (descending loops via while)
    let (bwd, _) = ir.declare("sweep_bwd", &[], None);
    {
        let r = ir.local_i(bwd);
        let c = ir.local_i(bwd);
        ir.define(
            bwd,
            vec![
                set(r, i(g)),
                while_(
                    cmp(Cc::Ge, v(r), i(1)),
                    vec![
                        set(c, i(g)),
                        while_(
                            cmp(Cc::Ge, v(c), i(1)),
                            vec![relax_stmt(r, c), set(c, isub(v(c), i(1)))],
                        ),
                        set(r, isub(v(r), i(1))),
                    ],
                ),
            ],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let it = ir.local_i(fr);
        let r = ir.local_i(fr);
        let c = ir.local_i(fr);
        let acc = ir.local_f(fr);
        let t = ir.local_f(fr);
        vec![
            for_(it, i(0), i(niter), vec![do_(call(fwd, vec![])), do_(call(bwd, vec![]))]),
            // residual norm of  −Δu = 1  on the interior
            set(acc, f(0.0)),
            for_(
                r,
                i(1),
                i(g + 1),
                vec![for_(
                    c,
                    i(1),
                    i(g + 1),
                    vec![
                        set(
                            t,
                            fsub(
                                f(1.0),
                                fsub(
                                    fmul(f(4.0), ld(u, idx(v(r), v(c)))),
                                    fadd(
                                        fadd(
                                            ld(u, idx(isub(v(r), i(1)), v(c))),
                                            ld(u, idx(iadd(v(r), i(1)), v(c))),
                                        ),
                                        fadd(
                                            ld(u, idx(v(r), isub(v(c), i(1)))),
                                            ld(u, idx(v(r), iadd(v(c), i(1)))),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                        set(acc, fadd(v(acc), fmul(v(t), v(t)))),
                    ],
                )],
            ),
            st(out, i(0), fsqrt(v(acc))),
            set(acc, f(0.0)),
            for_(r, i(0), i(w * w), vec![set(acc, fadd(v(acc), fmul(ld(u, v(r)), ld(u, v(r)))))]),
            st(out, i(1), v(acc)),
        ]
    });
    ir.set_entry(main);

    Workload::package("lu", class, ir, 5e-7, vec![("out".into(), 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssor_converges() {
        let w = lu(Class::S);
        let out = &w.reference()[0];
        assert!(out[0] < 1e-3, "residual {}", out[0]);
        assert!(out[1] > 1.0, "solution energy {}", out[1]);
    }

    #[test]
    fn sweeps_are_order_sensitive() {
        // SSOR converges monotonically here: a larger class converges too
        // (sanity that loops/halos are indexed correctly, no NaN leaks).
        let w = lu(Class::W);
        let out = &w.reference()[0];
        assert!(out.iter().all(|x| x.is_finite()));
        assert!(out[0] < 1e-2);
    }
}
