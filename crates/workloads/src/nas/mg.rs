//! MG — a 1D Poisson multigrid V-cycle: Gauss–Seidel smoothing,
//! full-weighting restriction, linear prolongation, recursive descent to a
//! four-point coarsest grid. Levels share flat `u`/`rhs`/`res` arrays via
//! per-level offsets, like the real MG's hierarchical workspace.

use super::size;
use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Build the MG workload. The class sets the finest grid size (2^k).
pub fn mg(class: Class) -> Workload {
    mg_sized(class, size(class, 32, 64, 128, 512) as i64, 8)
}

/// Build MG with an explicit finest grid size (a power of two) and
/// V-cycle count.
pub fn mg_sized(class: Class, n0: i64, ncycles: i64) -> Workload {
    // host-side level layout
    let mut offs = vec![0i64];
    let mut szs = vec![n0];
    while *szs.last().unwrap() > 4 {
        let s = szs.last().unwrap() / 2;
        offs.push(offs.last().unwrap() + szs.last().unwrap());
        szs.push(s);
    }
    let total = (offs.last().unwrap() + szs.last().unwrap()) as usize;
    let nlevels = szs.len() as i64;

    let mut ir = IrProgram::new(format!("mg.{}", class.letter()));
    let u = ir.array_f64("u", total);
    let rhs = ir.array_f64("rhs", total);
    let res = ir.array_f64("res", total);
    let offs_a = ir.array_i64_init("offs", offs.clone());
    let szs_a = ir.array_i64_init("szs", szs.clone());
    let out = ir.array_f64("out", 2); // [resnorm, u·u]

    // Gauss–Seidel smoothing sweep on level (off, nn)
    let (smooth, sa) = ir.declare("smooth", &[Ty::I64, Ty::I64], None);
    {
        let (off, nn) = (sa[0], sa[1]);
        let j = ir.local_i(smooth);
        ir.define(
            smooth,
            vec![for_(
                j,
                i(1),
                isub(v(nn), i(1)),
                vec![st(
                    u,
                    iadd(v(off), v(j)),
                    fmul(
                        f(0.5),
                        fadd(
                            ld(rhs, iadd(v(off), v(j))),
                            fadd(
                                ld(u, iadd(v(off), isub(v(j), i(1)))),
                                ld(u, iadd(v(off), iadd(v(j), i(1)))),
                            ),
                        ),
                    ),
                )],
            )],
        );
    }

    // residual on level (off, nn): res = rhs − A·u, A = tridiag(−1, 2, −1)
    let (resid, ra) = ir.declare("resid", &[Ty::I64, Ty::I64], None);
    {
        let (off, nn) = (ra[0], ra[1]);
        let j = ir.local_i(resid);
        ir.define(
            resid,
            vec![
                st(res, v(off), f(0.0)),
                st(res, iadd(v(off), isub(v(nn), i(1))), f(0.0)),
                for_(
                    j,
                    i(1),
                    isub(v(nn), i(1)),
                    vec![st(
                        res,
                        iadd(v(off), v(j)),
                        fsub(
                            ld(rhs, iadd(v(off), v(j))),
                            fsub(
                                fmul(f(2.0), ld(u, iadd(v(off), v(j)))),
                                fadd(
                                    ld(u, iadd(v(off), isub(v(j), i(1)))),
                                    ld(u, iadd(v(off), iadd(v(j), i(1)))),
                                ),
                            ),
                        ),
                    )],
                ),
            ],
        );
    }

    // recursive V-cycle on level l
    let (vcycle, va) = ir.declare("vcycle", &[Ty::I64], None);
    {
        let l = va[0];
        let off = ir.local_i(vcycle);
        let nn = ir.local_i(vcycle);
        let offc = ir.local_i(vcycle);
        let nc = ir.local_i(vcycle);
        let j = ir.local_i(vcycle);
        let s = ir.local_i(vcycle);
        ir.define(
            vcycle,
            vec![
                set(off, ld(offs_a, v(l))),
                set(nn, ld(szs_a, v(l))),
                do_(call(smooth, vec![v(off), v(nn)])),
                do_(call(smooth, vec![v(off), v(nn)])),
                if_(
                    cmp(Cc::Lt, iadd(v(l), i(1)), i(nlevels)),
                    vec![
                        do_(call(resid, vec![v(off), v(nn)])),
                        set(offc, ld(offs_a, iadd(v(l), i(1)))),
                        set(nc, ld(szs_a, iadd(v(l), i(1)))),
                        // full-weighting restriction, zero coarse guess
                        for_(
                            j,
                            i(0),
                            v(nc),
                            vec![
                                st(u, iadd(v(offc), v(j)), f(0.0)),
                                st(rhs, iadd(v(offc), v(j)), f(0.0)),
                            ],
                        ),
                        for_(
                            j,
                            i(1),
                            isub(v(nc), i(1)),
                            vec![
                                set(s, imul(v(j), i(2))),
                                st(
                                    rhs,
                                    iadd(v(offc), v(j)),
                                    // Unscaled-stencil Galerkin consistency:
                                    // the coarse stencil is 4× the fine one in
                                    // h² units, so the restricted residual is
                                    // [1 2 1]·res (i.e. 4× full weighting).
                                    fadd(
                                        fadd(
                                            ld(res, iadd(v(off), isub(v(s), i(1)))),
                                            fmul(f(2.0), ld(res, iadd(v(off), v(s)))),
                                        ),
                                        ld(res, iadd(v(off), iadd(v(s), i(1)))),
                                    ),
                                ),
                            ],
                        ),
                        do_(call(vcycle, vec![iadd(v(l), i(1))])),
                        // linear prolongation: u_f += P u_c (including the
                        // boundary-adjacent odd point, whose left coarse
                        // neighbour is the pinned zero boundary)
                        st(
                            u,
                            iadd(v(off), i(1)),
                            fadd(
                                ld(u, iadd(v(off), i(1))),
                                fmul(f(0.5), ld(u, iadd(v(offc), i(1)))),
                            ),
                        ),
                        for_(
                            j,
                            i(1),
                            isub(v(nc), i(1)),
                            vec![
                                set(s, imul(v(j), i(2))),
                                st(
                                    u,
                                    iadd(v(off), v(s)),
                                    fadd(ld(u, iadd(v(off), v(s))), ld(u, iadd(v(offc), v(j)))),
                                ),
                                st(
                                    u,
                                    iadd(v(off), iadd(v(s), i(1))),
                                    fadd(
                                        ld(u, iadd(v(off), iadd(v(s), i(1)))),
                                        fmul(
                                            f(0.5),
                                            fadd(
                                                ld(u, iadd(v(offc), v(j))),
                                                ld(u, iadd(v(offc), iadd(v(j), i(1)))),
                                            ),
                                        ),
                                    ),
                                ),
                            ],
                        ),
                        do_(call(smooth, vec![v(off), v(nn)])),
                        do_(call(smooth, vec![v(off), v(nn)])),
                    ],
                    vec![
                        // coarsest grid: extra smoothing is an adequate solve
                        do_(call(smooth, vec![v(off), v(nn)])),
                        do_(call(smooth, vec![v(off), v(nn)])),
                        do_(call(smooth, vec![v(off), v(nn)])),
                        do_(call(smooth, vec![v(off), v(nn)])),
                    ],
                ),
            ],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let c = ir.local_i(fr);
        let acc = ir.local_f(fr);
        vec![
            // rhs on the finest level: a smooth forcing term
            for_(
                k,
                i(0),
                i(n0),
                vec![st(
                    rhs,
                    v(k),
                    fmath(
                        MathFun::Sin,
                        fdiv(fmul(f(std::f64::consts::PI), itof(v(k))), itof(i(n0))),
                    ),
                )],
            ),
            for_(c, i(0), i(ncycles), vec![do_(call(vcycle, vec![i(0)]))]),
            do_(call(resid, vec![i(0), i(n0)])),
            set(acc, f(0.0)),
            for_(k, i(0), i(n0), vec![set(acc, fadd(v(acc), fmul(ld(res, v(k)), ld(res, v(k)))))]),
            st(out, i(0), fsqrt(v(acc))),
            set(acc, f(0.0)),
            for_(k, i(0), i(n0), vec![set(acc, fadd(v(acc), fmul(ld(u, v(k)), ld(u, v(k)))))]),
            st(out, i(1), v(acc)),
        ]
    });
    ir.set_entry(main);

    Workload::package("mg", class, ir, 1e-5, vec![("out".into(), 2)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcycles_reduce_the_residual() {
        let w = mg(Class::S);
        let out = &w.reference()[0];
        // rhs norm is O(sqrt(n)); after 4 V-cycles the residual is far below
        assert!(out[0] < 0.05, "residual {}", out[0]);
        assert!(out[1] > 1.0, "solution energy {}", out[1]);
    }

    #[test]
    fn f32_build_converges_nearly_as_well() {
        // the self-correcting property that makes MG broadly replaceable
        let w = mg(Class::S);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let got = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 2).unwrap();
        let want = &w.reference()[0];
        assert!((got[0] as f64 - want[0]).abs() < 1e-3);
        assert!(((got[1] as f64 - want[1]) / want[1]).abs() < 1e-3);
    }
}
