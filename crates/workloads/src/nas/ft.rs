//! FT — an iterative radix-2 complex FFT with forward-transform checksums
//! and a full round-trip (inverse transform) comparison.
//!
//! Twiddle factors come from the sine/cosine intrinsics; the butterfly
//! loops accumulate rounding aggressively, so under a tight tolerance the
//! transform itself must stay double — reproducing the paper's FT rows
//! (high static replaceability, ~0.2–0.3% dynamic).

use super::size;
use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Build the FT workload. The class sets the transform length (2^k).
pub fn ft(class: Class) -> Workload {
    ft_sized(class, size(class, 32, 128, 256, 1024) as i64)
}

/// Build FT with an explicit transform length (must be a power of two).
pub fn ft_sized(class: Class, n: i64) -> Workload {
    let logn = (n as f64).log2() as i64;
    assert_eq!(1i64 << logn, n);

    let mut ir = IrProgram::new(format!("ft.{}", class.letter()));
    let re = ir.array_f64("re", n as usize);
    let im = ir.array_f64("im", n as usize);
    let ore = ir.array_f64("ore", n as usize); // original copies
    let oim = ir.array_f64("oim", n as usize);
    let out = ir.array_f64("out", 3); // [chk_re, chk_im, roundtrip_diff]

    // fft pass: direction dir = ±1 (forward −1 like FFTW's sign convention)
    let (fft, fa) = ir.declare("fft", &[Ty::I64], None);
    {
        let dir = fa[0];
        let len = ir.local_i(fft);
        let half = ir.local_i(fft);
        let blk = ir.local_i(fft);
        let j = ir.local_i(fft);
        let ang = ir.local_f(fft);
        let wr = ir.local_f(fft);
        let wi = ir.local_f(fft);
        let wlr = ir.local_f(fft);
        let wli = ir.local_f(fft);
        let ur = ir.local_f(fft);
        let ui = ir.local_f(fft);
        let vr = ir.local_f(fft);
        let vi = ir.local_f(fft);
        let tw = ir.local_f(fft);
        let i0 = ir.local_i(fft);
        let i1 = ir.local_i(fft);
        ir.define(
            fft,
            vec![
                set(len, i(2)),
                while_(
                    cmp(Cc::Le, v(len), i(n)),
                    vec![
                        set(half, idiv(v(len), i(2))),
                        // wlen = exp(dir * 2πi / len)
                        set(
                            ang,
                            fdiv(fmul(itof(v(dir)), f(2.0 * std::f64::consts::PI)), itof(v(len))),
                        ),
                        set(wlr, fmath(MathFun::Cos, v(ang))),
                        set(wli, fmath(MathFun::Sin, v(ang))),
                        set(blk, i(0)),
                        while_(
                            cmp(Cc::Lt, v(blk), i(n)),
                            vec![
                                set(wr, f(1.0)),
                                set(wi, f(0.0)),
                                for_(
                                    j,
                                    i(0),
                                    v(half),
                                    vec![
                                        set(i0, iadd(v(blk), v(j))),
                                        set(i1, iadd(v(i0), v(half))),
                                        set(ur, ld(re, v(i0))),
                                        set(ui, ld(im, v(i0))),
                                        // v = w * a[i1]
                                        set(
                                            vr,
                                            fsub(
                                                fmul(v(wr), ld(re, v(i1))),
                                                fmul(v(wi), ld(im, v(i1))),
                                            ),
                                        ),
                                        set(
                                            vi,
                                            fadd(
                                                fmul(v(wr), ld(im, v(i1))),
                                                fmul(v(wi), ld(re, v(i1))),
                                            ),
                                        ),
                                        st(re, v(i0), fadd(v(ur), v(vr))),
                                        st(im, v(i0), fadd(v(ui), v(vi))),
                                        st(re, v(i1), fsub(v(ur), v(vr))),
                                        st(im, v(i1), fsub(v(ui), v(vi))),
                                        // w *= wlen
                                        set(tw, fsub(fmul(v(wr), v(wlr)), fmul(v(wi), v(wli)))),
                                        set(wi, fadd(fmul(v(wr), v(wli)), fmul(v(wi), v(wlr)))),
                                        set(wr, v(tw)),
                                    ],
                                ),
                                set(blk, iadd(v(blk), v(len))),
                            ],
                        ),
                        set(len, imul(v(len), i(2))),
                    ],
                ),
            ],
        );
    }

    // bit-reversal permutation (pure integer shuffling plus FP swaps)
    let (bitrev, _) = ir.declare("bitrev", &[], None);
    {
        let k = ir.local_i(bitrev);
        let rev = ir.local_i(bitrev);
        let b = ir.local_i(bitrev);
        let t = ir.local_f(bitrev);
        let bit = ir.local_i(bitrev);
        ir.define(
            bitrev,
            vec![for_(
                k,
                i(0),
                i(n),
                vec![
                    set(rev, i(0)),
                    set(b, v(k)),
                    for_(
                        bit,
                        i(0),
                        i(logn),
                        vec![
                            set(rev, ior(ishl(v(rev), i(1)), iand(v(b), i(1)))),
                            set(b, ishr(v(b), i(1))),
                        ],
                    ),
                    if_(
                        cmp(Cc::Lt, v(k), v(rev)),
                        vec![
                            set(t, ld(re, v(k))),
                            st(re, v(k), ld(re, v(rev))),
                            st(re, v(rev), v(t)),
                            set(t, ld(im, v(k))),
                            st(im, v(k), ld(im, v(rev))),
                            st(im, v(rev), v(t)),
                        ],
                        vec![],
                    ),
                ],
            )],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let acc = ir.local_f(fr);
        vec![
            // deterministic quasi-random fill
            for_(
                k,
                i(0),
                i(n),
                vec![
                    st(re, v(k), fmath(MathFun::Sin, fadd(fmul(itof(v(k)), f(1.37)), f(0.1)))),
                    st(im, v(k), fmath(MathFun::Cos, fmul(itof(v(k)), f(2.11)))),
                    st(ore, v(k), ld(re, v(k))),
                    st(oim, v(k), ld(im, v(k))),
                ],
            ),
            // forward transform
            do_(call(bitrev, vec![])),
            do_(call(fft, vec![i(-1)])),
            // checksums over a stride
            set(acc, f(0.0)),
            for_(k, i(0), i(n), vec![set(acc, fadd(v(acc), ld(re, v(k))))]),
            st(out, i(0), v(acc)),
            set(acc, f(0.0)),
            for_(k, i(0), i(n), vec![set(acc, fadd(v(acc), ld(im, v(k))))]),
            st(out, i(1), v(acc)),
            // inverse transform and 1/n scaling
            do_(call(bitrev, vec![])),
            do_(call(fft, vec![i(1)])),
            for_(
                k,
                i(0),
                i(n),
                vec![
                    st(re, v(k), fdiv(ld(re, v(k)), itof(i(n)))),
                    st(im, v(k), fdiv(ld(im, v(k)), itof(i(n)))),
                ],
            ),
            // round-trip error
            set(acc, f(0.0)),
            for_(
                k,
                i(0),
                i(n),
                vec![
                    set(acc, fadd(v(acc), fabs(fsub(ld(re, v(k)), ld(ore, v(k)))))),
                    set(acc, fadd(v(acc), fabs(fsub(ld(im, v(k)), ld(oim, v(k)))))),
                ],
            ),
            st(out, i(2), v(acc)),
        ]
    });
    ir.set_entry(main);

    Workload::package("ft", class, ir, 1e-6, vec![("out".into(), 3)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_tight_in_double() {
        let w = ft(Class::S);
        let out = &w.reference()[0];
        assert!(out[2] < 1e-11, "f64 roundtrip error {}", out[2]);
        // checksums are non-trivial
        assert!(out[0].abs() + out[1].abs() > 1e-3);
    }

    #[test]
    fn forward_matches_host_dft_checksum() {
        // compare the re-checksum against a host O(n²) DFT
        let w = ft(Class::S);
        let n = 32usize;
        let xs: Vec<(f64, f64)> =
            (0..n).map(|k| ((k as f64 * 1.37 + 0.1).sin(), (k as f64 * 2.11).cos())).collect();
        let mut chk_re = 0.0;
        let mut chk_im = 0.0;
        for out_k in 0..n {
            let (mut sr, mut si) = (0.0, 0.0);
            for (j, &(xr, xi)) in xs.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (out_k * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                sr += xr * c - xi * s;
                si += xr * s + xi * c;
            }
            chk_re += sr;
            chk_im += si;
        }
        let out = &w.reference()[0];
        assert!((out[0] - chk_re).abs() < 1e-8, "{} vs {chk_re}", out[0]);
        assert!((out[1] - chk_im).abs() < 1e-8, "{} vs {chk_im}", out[1]);
    }

    #[test]
    fn f32_roundtrip_error_is_orders_worse() {
        let w = ft(Class::S);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let out = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 3).unwrap();
        assert!((out[2] as f64) > 1e-6, "f32 roundtrip error {}", out[2]);
    }
}
