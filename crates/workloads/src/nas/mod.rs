//! Scaled-down analogues of the seven NAS Parallel Benchmarks the paper
//! evaluates (§3.1, Figs. 8–10).
//!
//! Each kernel implements the same numerical method as its namesake —
//! Gaussian-pair tallying with the NAS FP-trick linear-congruential RNG
//! (EP), conjugate gradients on a sparse SPD system (CG), a complex FFT
//! with round-trip verification (FT), a multigrid V-cycle (MG), batched
//! tridiagonal line solves (BT), SSOR relaxation (LU), and a scalar
//! pentadiagonal solver (SP) — at sizes scaled to an interpreted
//! substrate. Per-benchmark verification tolerances are chosen so the
//! precision-sensitivity *profile* matches the paper's Fig. 10: CG and FT
//! are dynamically sensitive (hot loops need double), EP/MG/BT tolerate
//! broad replacement, SP sits in between.

mod bt;
mod cg;
mod ep;
mod ft;
mod lu;
mod mg;
mod sp;

pub use bt::bt;
pub use cg::{cg, cg_expected_xdot, cg_sized};
pub use ep::{ep, ep_sized};
pub use ft::{ft, ft_sized};
pub use lu::lu;
pub use mg::{mg, mg_sized};
pub use sp::sp;

use crate::Class;

/// Problem-size table (see each kernel for the meaning of the number).
pub(crate) fn size(class: Class, s: usize, w: usize, a: usize, c: usize) -> usize {
    match class {
        Class::S => s,
        Class::W => w,
        Class::A => a,
        Class::C => c,
    }
}
