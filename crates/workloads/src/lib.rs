//! # workloads — benchmark programs for the analysis system
//!
//! Scaled-down analogues of the paper's evaluation subjects, written in
//! the `fpir` source language and compiled to `fpvm` binaries:
//!
//! * the seven NAS kernels (§3.1): [`nas::ep`], [`nas::cg`], [`nas::ft`],
//!   [`nas::mg`], [`nas::bt`], [`nas::lu`], [`nas::sp`], with class
//!   S/W/A/C problem sizes;
//! * the AMG microkernel (§3.2): [`amg`];
//! * a sparse LU linear solver with a memplus-like circuit matrix and a
//!   backward-error metric (§3.3): [`slu`];
//! * Matrix Market I/O ([`matmarket`]) for the SuperLU data set;
//! * a transcendental-heavy kernel in intrinsic and software-libm
//!   variants ([`mathmix`]) for the §2.5 special-handling ablation.
//!
//! Each workload packages the source program, a representative data set
//! (baked into the program's globals), and a verification routine that
//! compares outputs against the original double-precision run — the three
//! inputs of the paper's Fig. 2 pipeline.

#![warn(missing_docs)]

pub mod amg;
pub mod mathmix;
pub mod matmarket;
pub mod nas;
pub mod rng;
pub mod slu;
pub mod sparse;
pub mod vecops;

use fpir::{compile, CompileOptions, FpWidth, IrProgram};
use fpvm::program::Program;
use fpvm::{Vm, VmOptions};
use std::sync::Arc;

/// NAS-style problem classes; each workload maps these to concrete sizes
/// scaled for an interpreted substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Sample (tiny, unit-test sized).
    S,
    /// Workstation.
    W,
    /// Class A.
    A,
    /// Class C (largest; overhead experiments only).
    C,
}

impl Class {
    /// Short lowercase label (`"s"`, `"w"`, `"a"`, `"c"`).
    pub fn letter(self) -> &'static str {
        match self {
            Class::S => "s",
            Class::W => "w",
            Class::A => "a",
            Class::C => "c",
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.letter())
    }
}

/// A packaged benchmark: program, data set, and verification routine.
pub struct Workload {
    /// Benchmark name (e.g. `"cg"`).
    pub name: String,
    /// Problem class.
    pub class: Class,
    /// The source program.
    pub ir: IrProgram,
    /// Output arrays checked by verification: `(symbol, length)`.
    pub out_syms: Vec<(String, usize)>,
    /// Relative tolerance of the verification routine.
    pub tol: f64,
    /// Instruction budget for one run (trap beyond this).
    pub fuel: u64,
    prog: Program,
    reference: Arc<Vec<Vec<f64>>>,
}

impl Workload {
    /// Package a workload: compiles the double-precision binary and runs
    /// it once to capture the reference outputs the verification routine
    /// compares against.
    pub fn package(
        name: impl Into<String>,
        class: Class,
        ir: IrProgram,
        tol: f64,
        out_syms: Vec<(String, usize)>,
    ) -> Self {
        let name = name.into();
        let prog = compile(&ir, &CompileOptions { fp: FpWidth::F64 });
        let fuel = 4_000_000_000;
        let mut vm = Vm::new(&prog, VmOptions { fuel, ..Default::default() });
        let out = vm.run();
        assert!(out.ok(), "workload {name}.{class} reference run trapped: {:?}", out.result);
        let reference = out_syms
            .iter()
            .map(|(s, n)| {
                let a =
                    prog.symbol(s).unwrap_or_else(|| panic!("workload {name}: unknown symbol {s}"));
                vm.mem.read_f64_slice(a, *n).unwrap()
            })
            .collect();
        Workload { name, class, ir, out_syms, tol, fuel, prog, reference: Arc::new(reference) }
    }

    /// The compiled double-precision binary (the "original program").
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Compile the manually-converted single-precision binary (§3.1).
    pub fn compile_f32(&self) -> Program {
        compile(&self.ir, &CompileOptions { fp: FpWidth::F32 })
    }

    /// Reference outputs captured from the double run.
    pub fn reference(&self) -> &[Vec<f64>] {
        &self.reference
    }

    /// Function names recommended for `ignore` flags (FP-trick RNGs).
    pub fn ignore_funcs(&self) -> Vec<String> {
        self.ir.ignore_hints()
    }

    /// The verification routine: every checked element within `tol`
    /// relative error of the double-precision reference.
    pub fn verifier(&self) -> impl Fn(&Vm<'_>) -> bool + Send + Sync + 'static {
        let syms: Vec<(u64, usize)> =
            self.out_syms.iter().map(|(s, n)| (self.prog.symbol(s).unwrap(), *n)).collect();
        let reference = Arc::clone(&self.reference);
        let tol = self.tol;
        move |vm: &Vm<'_>| {
            syms.iter().enumerate().all(|(k, &(addr, n))| match vm.mem.read_f64_slice(addr, n) {
                Ok(got) => got.iter().zip(&reference[k]).all(|(&g, &r)| rel_err(g, r) <= tol),
                Err(_) => false,
            })
        }
    }

    /// Maximum relative error of a halted machine's outputs against the
    /// reference (useful for threshold sweeps).
    pub fn max_rel_err(&self, vm: &Vm<'_>) -> f64 {
        let mut worst: f64 = 0.0;
        for (k, (s, n)) in self.out_syms.iter().enumerate() {
            let addr = self.prog.symbol(s).unwrap();
            if let Ok(got) = vm.mem.read_f64_slice(addr, *n) {
                for (&g, &r) in got.iter().zip(&self.reference[k]) {
                    worst = worst.max(rel_err(g, r));
                }
            } else {
                return f64::INFINITY;
            }
        }
        worst
    }

    /// VM options appropriate for this workload.
    pub fn vm_opts(&self) -> VmOptions {
        VmOptions { fuel: self.fuel, ..Default::default() }
    }
}

/// Relative error with an absolute floor of 1 (`|g−r| / max(|r|, 1)`),
/// NaN-propagating (NaN compares as infinite error).
pub fn rel_err(got: f64, reference: f64) -> f64 {
    let e = (got - reference).abs() / reference.abs().max(1.0);
    if e.is_nan() {
        f64::INFINITY
    } else {
        e
    }
}

/// All seven NAS analogues for a class, in the paper's Fig. 10 order.
pub fn nas_all(class: Class) -> Vec<Workload> {
    vec![
        nas::bt(class),
        nas::cg(class),
        nas::ep(class),
        nas::ft(class),
        nas::lu(class),
        nas::mg(class),
        nas::sp(class),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_basics() {
        assert_eq!(rel_err(1.0, 1.0), 0.0);
        assert!(rel_err(1.1, 1.0) > 0.09);
        assert_eq!(rel_err(f64::NAN, 1.0), f64::INFINITY);
        // absolute floor avoids blowups near zero
        assert!(rel_err(1e-12, 0.0) < 1e-11);
    }
}
