//! Small deterministic PRNG used by the data-set generators.
//!
//! The build environment has no registry access, so instead of the `rand`
//! crate we use a self-contained splitmix64 generator. Only the handful
//! of sampling methods the generators need are provided, with the same
//! names `rand` 0.9 uses (`random_bool`, `random_range`) so call sites
//! read identically.

use std::ops::Range;

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator from a `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Uniform draw from a half-open range.
    pub fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types drawable from a `Range` by [`StdRng::random_range`].
pub trait SampleRange: Sized {
    /// Draw one value uniformly from `range`.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample(rng: &mut StdRng, range: Range<f64>) -> f64 {
        range.start + rng.f64_unit() * (range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample(rng: &mut StdRng, range: Range<usize>) -> usize {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange for u64 {
    fn sample(rng: &mut StdRng, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + rng.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(0usize..13);
            assert!(x < 13);
            let y = r.random_range(-3.0f64..1.0);
            assert!((-3.0..1.0).contains(&y));
            let _ = r.random_bool(0.5);
        }
    }

    #[test]
    fn bernoulli_rates_are_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.6)).count();
        assert!((5_500..6_500).contains(&hits), "p=0.6 gave {hits}/10000");
    }
}
