//! A packed-SIMD streaming workload: repeated 128-bit AXPY updates over
//! large arrays. Exercises the *packed* replacement path end-to-end —
//! the paper's Fig. 5 notes the in-place flag technique "works for single
//! values as well as packed floating-point values in 128-bit XMM
//! registers", and the packed snippets must check/convert and re-flag
//! each 64-bit lane independently.

use crate::{Class, Workload};
use fpir::*;

/// Build the vecops workload: `iters` sweeps of `y += a_k · x` with a
/// final checksum, all through packed (two-lane) instructions.
pub fn vecops(class: Class) -> Workload {
    let n = match class {
        Class::S => 32i64,
        Class::W => 128,
        Class::A => 512,
        Class::C => 2048,
    };
    let iters = 8i64;
    let mut ir = IrProgram::new(format!("vecops.{}", class.letter()));
    let xs = ir.array_f64_init("x", (0..n).map(|k| 0.5 + 0.01 * k as f64).collect());
    let ys = ir.array_f64("y", n as usize);
    let out = ir.array_f64("out", 1);

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let it = ir.local_i(fr);
        let k = ir.local_i(fr);
        let acc = ir.local_f(fr);
        vec![
            for_(
                it,
                i(0),
                i(iters),
                vec![
                    // coefficient varies per sweep: a = 1/(it+2)
                    Stmt::PackedAxpy {
                        y: ys,
                        a: fdiv(f(1.0), itof(iadd(v(it), i(2)))),
                        x: xs,
                        n: i(n),
                    },
                ],
            ),
            set(acc, f(0.0)),
            for_(k, i(0), i(n), vec![set(acc, fadd(v(acc), ld(ys, v(k))))]),
            st(out, i(0), v(acc)),
        ]
    });
    ir.set_entry(main);

    Workload::package("vecops", class, ir, 1e-5, vec![("out".into(), 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::isa::InstKind;
    use fpvm::{Vm, VmOptions};
    use instrument::{rewrite, rewrite_all_double, RewriteOptions};
    use mpconfig::{Config, Flag, StructureTree};

    #[test]
    fn reference_matches_host_math() {
        let w = vecops(Class::S);
        let mut y = vec![0.0f64; 32];
        for it in 0..8 {
            let a = 1.0 / (it as f64 + 2.0);
            for (k, yk) in y.iter_mut().enumerate() {
                *yk += a * (0.5 + 0.01 * k as f64);
            }
        }
        let want: f64 = y.iter().sum();
        let got = w.reference()[0][0];
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn kernel_actually_uses_packed_instructions() {
        let w = vecops(Class::S);
        let packed = w
            .program()
            .iter_insns()
            .filter(|(_, _, ins)| matches!(ins.kind, InstKind::FpArith { packed: true, .. }))
            .count();
        assert!(packed >= 2, "expected packed arithmetic, found {packed}");
    }

    #[test]
    fn packed_all_double_is_bit_transparent() {
        let w = vecops(Class::S);
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let (instr, stats) = rewrite_all_double(prog, &tree);
        assert!(stats.instrumented() > 0);
        let mut a = Vm::new(prog, VmOptions::default());
        assert!(a.run().ok());
        let mut b = Vm::new(&instr, VmOptions::default());
        assert!(b.run().ok());
        let pa = prog.symbol("out").unwrap();
        assert_eq!(
            a.mem.load_u64(pa).unwrap(),
            b.mem.load_u64(pa).unwrap(),
            "packed all-double instrumentation changed results"
        );
    }

    #[test]
    fn packed_all_single_matches_f32_lowering() {
        // bit-exactness through the packed snippet path
        let w = vecops(Class::S);
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let mut cfg = Config::new();
        for m in &tree.modules {
            cfg.set_module(m.id, Flag::Single);
        }
        let (instr, _) = rewrite(prog, &tree, &cfg, &RewriteOptions::default());
        let mut vm = Vm::new(&instr, VmOptions::default());
        assert!(vm.run().ok(), "packed all-single run failed");
        let got = vm.mem.load_u64(prog.symbol("out").unwrap()).unwrap() as u32;

        let manual = w.compile_f32();
        let mut vm32 = Vm::new(&manual, VmOptions::default());
        assert!(vm32.run().ok());
        let want = vm32.mem.load_u32(manual.symbol("out").unwrap()).unwrap();
        assert_eq!(got, want, "packed single path diverges from manual f32");
    }

    #[test]
    fn search_replaces_the_packed_kernel() {
        let w = vecops(Class::S);
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let profile = Vm::run_program(prog, VmOptions { profile: true, ..Default::default() })
            .profile
            .unwrap();
        let eval = mpsearch_eval(&w, prog, &tree);
        let r = mpsearch::search(
            &tree,
            &Config::new(),
            Some(&profile),
            &eval,
            &mpsearch::SearchOptions { threads: 2, ..Default::default() },
        );
        assert!(r.static_pct > 50.0, "packed kernel mostly replaceable, got {}", r.static_pct);
        assert!(r.final_pass);
    }

    fn mpsearch_eval<'p>(
        w: &Workload,
        prog: &'p fpvm::Program,
        tree: &'p StructureTree,
    ) -> mpsearch::VmEvaluator<'p> {
        mpsearch::VmEvaluator::with_options(
            prog,
            tree,
            w.vm_opts(),
            RewriteOptions::default(),
            w.verifier(),
        )
    }
}
