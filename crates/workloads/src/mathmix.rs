//! A transcendental-heavy kernel built in two variants, for the §2.5
//! special-handling ablation:
//!
//! * [`LibmKind::Intrinsic`] — sine/exp/log as precision-typed intrinsic
//!   instructions (the paper's "special handling for these functions");
//! * [`LibmKind::Software`] — the same math through [`fpir::softlibm`],
//!   whose internals do IEEE-754 bit manipulation exactly like a real
//!   `libm`, and therefore resist single-precision replacement.
//!
//! The kernel itself is a damped-oscillator energy tally:
//! `acc += exp(−λ·x) · sin(ω·x) + log(1 + x)` over a grid of `x`.

use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Which math-library implementation the kernel calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibmKind {
    /// Precision-typed intrinsic instructions (special handling, §2.5).
    Intrinsic,
    /// Software routines with bit manipulation (realistic `libm`).
    Software,
}

/// Build the mathmix workload.
pub fn mathmix(class: Class, libm: LibmKind) -> Workload {
    let n = match class {
        Class::S => 64i64,
        Class::W => 256,
        Class::A => 1024,
        Class::C => 4096,
    };
    let mut ir = IrProgram::new(format!("mathmix.{}", class.letter()));
    let out = ir.array_f64("out", 1);

    let soft = match libm {
        LibmKind::Software => Some(fpir::softlibm::install(&mut ir)),
        LibmKind::Intrinsic => None,
    };
    ir.module("main");

    let m_exp = move |e: Expr| match soft {
        Some(l) => call(l.exp, vec![e]),
        None => fmath(MathFun::Exp, e),
    };
    let m_sin = move |e: Expr| match soft {
        Some(l) => call(l.sin, vec![e]),
        None => fmath(MathFun::Sin, e),
    };
    let m_log = move |e: Expr| match soft {
        Some(l) => call(l.log, vec![e]),
        None => fmath(MathFun::Log, e),
    };

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let x = ir.local_f(fr);
        let acc = ir.local_f(fr);
        vec![
            set(acc, f(0.0)),
            for_(
                k,
                i(0),
                i(n),
                vec![
                    set(x, fmul(itof(v(k)), f(0.037))),
                    set(
                        acc,
                        fadd(
                            v(acc),
                            fadd(
                                fmul(m_exp(fmul(f(-0.21), v(x))), m_sin(fmul(f(1.7), v(x)))),
                                m_log(fadd(f(1.0), v(x))),
                            ),
                        ),
                    ),
                ],
            ),
            st(out, i(0), v(acc)),
        ]
    });
    ir.set_entry(main);

    Workload::package("mathmix", class, ir, 1e-6, vec![("out".into(), 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_agree_in_double() {
        let a = mathmix(Class::S, LibmKind::Intrinsic);
        let b = mathmix(Class::S, LibmKind::Software);
        let x = a.reference()[0][0];
        let y = b.reference()[0][0];
        assert!(((x - y) / x).abs() < 1e-9, "intrinsic {x} vs software {y}");
    }

    #[test]
    fn reference_matches_host_math() {
        let w = mathmix(Class::S, LibmKind::Intrinsic);
        let mut want = 0.0f64;
        for k in 0..64 {
            let x = k as f64 * 0.037;
            want += (-0.21 * x).exp() * (1.7 * x).sin() + (1.0 + x).ln();
        }
        let got = w.reference()[0][0];
        assert!(((got - want) / want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn software_variant_has_many_more_candidates() {
        let a = mathmix(Class::S, LibmKind::Intrinsic);
        let b = mathmix(Class::S, LibmKind::Software);
        let ca = a.program().candidate_count();
        let cb = b.program().candidate_count();
        assert!(cb > 2 * ca, "software libm should add candidates: {ca} vs {cb}");
    }
}
