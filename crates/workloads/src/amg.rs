//! The AMG microkernel (paper §3.2): the critical relaxation sections of
//! an algebraic multigrid solver, iterated many times.
//!
//! The paper used the ASC Sequoia AMG microkernel with 5,000 iterations
//! and found the *entire kernel* replaceable with single precision — the
//! adaptive nature of multigrid corrects roundoff as it iterates. Our
//! analogue iterates weighted-Jacobi relaxation plus coarse-grid
//! correction on a Poisson problem with the same self-correcting
//! character: the verification tolerance is achievable in pure f32, so
//! the search should replace 100% of the kernel.

use crate::{Class, Workload};
use fpir::*;
use fpvm::isa::MathFun;

/// Build the AMG microkernel workload with an explicit iteration count
/// (the paper used 5,000; scaled classes use fewer).
pub fn amg_iters(class: Class, iters: i64) -> Workload {
    let n = match class {
        Class::S => 32i64,
        Class::W => 64,
        Class::A => 128,
        Class::C => 256,
    };
    let nc = n / 2;
    let mut ir = IrProgram::new(format!("amg.{}", class.letter()));
    let u = ir.array_f64("u", n as usize);
    let rhs = ir.array_f64("rhs", n as usize);
    let res = ir.array_f64("res", n as usize);
    let uc = ir.array_f64("uc", nc as usize);
    let rc = ir.array_f64("rc", nc as usize);
    let out = ir.array_f64("out", 1); // [resnorm]

    // one two-grid iteration: smooth, correct on the coarse grid, smooth
    let (cycle, _) = ir.declare("cycle", &[], None);
    {
        let j = ir.local_i(cycle);
        let s = ir.local_i(cycle);
        let sweep = |j: Var| {
            for_(
                j,
                i(1),
                i(n - 1),
                vec![st(
                    u,
                    v(j),
                    fmul(
                        f(0.5),
                        fadd(ld(rhs, v(j)), fadd(ld(u, isub(v(j), i(1))), ld(u, iadd(v(j), i(1))))),
                    ),
                )],
            )
        };
        ir.define(
            cycle,
            vec![
                sweep(j),
                sweep(j),
                // residual
                for_(
                    j,
                    i(1),
                    i(n - 1),
                    vec![st(
                        res,
                        v(j),
                        fsub(
                            ld(rhs, v(j)),
                            fsub(
                                fmul(f(2.0), ld(u, v(j))),
                                fadd(ld(u, isub(v(j), i(1))), ld(u, iadd(v(j), i(1)))),
                            ),
                        ),
                    )],
                ),
                st(res, i(0), f(0.0)),
                st(res, i(n - 1), f(0.0)),
                // restrict
                for_(j, i(0), i(nc), vec![st(uc, v(j), f(0.0)), st(rc, v(j), f(0.0))]),
                for_(
                    j,
                    i(1),
                    i(nc - 1),
                    vec![
                        set(s, imul(v(j), i(2))),
                        // 4× full weighting: Galerkin consistency for the
                        // unscaled coarse stencil (see nas::mg)
                        st(
                            rc,
                            v(j),
                            fadd(
                                fadd(ld(res, isub(v(s), i(1))), fmul(f(2.0), ld(res, v(s)))),
                                ld(res, iadd(v(s), i(1))),
                            ),
                        ),
                    ],
                ),
                // coarse solve: several Gauss–Seidel sweeps
                for_(
                    s,
                    i(0),
                    i(8),
                    vec![for_(
                        j,
                        i(1),
                        i(nc - 1),
                        vec![st(
                            uc,
                            v(j),
                            fmul(
                                f(0.5),
                                fadd(
                                    ld(rc, v(j)),
                                    fadd(ld(uc, isub(v(j), i(1))), ld(uc, iadd(v(j), i(1)))),
                                ),
                            ),
                        )],
                    )],
                ),
                // prolong + correct (boundary-adjacent odd point first)
                st(u, i(1), fadd(ld(u, i(1)), fmul(f(0.5), ld(uc, i(1))))),
                for_(
                    j,
                    i(1),
                    i(nc - 1),
                    vec![
                        set(s, imul(v(j), i(2))),
                        st(u, v(s), fadd(ld(u, v(s)), ld(uc, v(j)))),
                        st(
                            u,
                            iadd(v(s), i(1)),
                            fadd(
                                ld(u, iadd(v(s), i(1))),
                                fmul(f(0.5), fadd(ld(uc, v(j)), ld(uc, iadd(v(j), i(1))))),
                            ),
                        ),
                    ],
                ),
                sweep(j),
            ],
        );
    }

    let main = ir.func("main", &[], None, |ir, fr, _| {
        let k = ir.local_i(fr);
        let it = ir.local_i(fr);
        let acc = ir.local_f(fr);
        vec![
            for_(
                k,
                i(0),
                i(n),
                vec![st(
                    rhs,
                    v(k),
                    fmath(
                        MathFun::Sin,
                        fdiv(fmul(f(std::f64::consts::PI * 2.0), itof(v(k))), itof(i(n))),
                    ),
                )],
            ),
            for_(it, i(0), i(iters), vec![do_(call(cycle, vec![]))]),
            // final residual norm
            set(acc, f(0.0)),
            for_(
                k,
                i(1),
                i(n - 1),
                vec![set(
                    acc,
                    fadd(
                        v(acc),
                        fmul(
                            fsub(
                                ld(rhs, v(k)),
                                fsub(
                                    fmul(f(2.0), ld(u, v(k))),
                                    fadd(ld(u, isub(v(k), i(1))), ld(u, iadd(v(k), i(1)))),
                                ),
                            ),
                            fsub(
                                ld(rhs, v(k)),
                                fsub(
                                    fmul(f(2.0), ld(u, v(k))),
                                    fadd(ld(u, isub(v(k), i(1))), ld(u, iadd(v(k), i(1)))),
                                ),
                            ),
                        ),
                    ),
                )],
            ),
            st(out, i(0), fsqrt(v(acc))),
        ]
    });
    ir.set_entry(main);

    // Tolerance achievable in pure f32: the kernel is fully replaceable.
    Workload::package("amg", class, ir, 1e-3, vec![("out".into(), 1)])
}

/// Build the AMG microkernel with the default iteration count per class.
pub fn amg(class: Class) -> Workload {
    let iters = match class {
        Class::S => 20,
        Class::W => 50,
        Class::A => 100,
        Class::C => 400,
    };
    amg_iters(class, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_grid_iteration_converges() {
        let w = amg(Class::S);
        let out = &w.reference()[0];
        assert!(out[0] < 1e-3, "residual {}", out[0]);
    }

    #[test]
    fn f32_build_still_verifies() {
        // the defining property (§3.2): the whole kernel runs in single
        // precision and the iteration corrects the roundoff.
        let w = amg(Class::S);
        let p32 = w.compile_f32();
        let mut vm = fpvm::Vm::new(&p32, w.vm_opts());
        assert!(vm.run().ok());
        let got = vm.mem.read_f32_slice(p32.symbol("out").unwrap(), 1).unwrap()[0] as f64;
        assert!(got < 1e-3, "f32 residual {got}");
    }

    #[test]
    fn more_iterations_never_hurt() {
        let w1 = amg_iters(Class::S, 5);
        let w2 = amg_iters(Class::S, 40);
        assert!(w2.reference()[0][0] <= w1.reference()[0][0] + 1e-12);
    }
}
