//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `proptest` cannot be fetched. This crate implements the subset
//! of its API that the repository's property tests use: the [`Strategy`]
//! trait with `prop_filter`/`prop_map`, range and tuple strategies,
//! `collection::vec`, `num::{f64,u32}::ANY`, `any::<bool>()`, `Just`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs), and failing cases are reported but not shrunk.

use std::ops::Range;

// ---------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seed deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values for which `pred` holds (retries internally).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter { inner: self, reason, pred }
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Named strategy combinators.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len());
            self.0[i].sample(rng)
        }
    }

    /// Box a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

// numeric ranges ------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.f64_unit() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.f64_unit() * (self.end as f64 - self.start as f64)) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng);)+
                ($($v,)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy for arbitrary `bool`s.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_from_bits {
    ($($t:ty => $name:ident),*) => {$(
        /// Strategy producing uniformly random bit patterns.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;
        impl Strategy for $name {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name { $name }
        }
    )*};
}

arbitrary_from_bits!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64);

/// Bit-pattern strategies for numeric types (`proptest::num::f64::ANY`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Every `f64` bit pattern, NaNs and infinities included.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }

        /// The canonical any-`f64` strategy.
        pub const ANY: Any = Any;
    }

    /// `u32` strategies.
    pub mod u32 {
        use crate::{Strategy, TestRng};

        /// Every `u32` value.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = u32;
            fn sample(&self, rng: &mut TestRng) -> u32 {
                rng.next_u64() as u32
            }
        }

        /// The canonical any-`u32` strategy.
        pub const ANY: Any = Any;
    }

    /// `u64` strategies.
    pub mod u64 {
        use crate::{Strategy, TestRng};

        /// Every `u64` value.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = u64;
            fn sample(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }

        /// The canonical any-`u64` strategy.
        pub const ANY: Any = Any;
    }
}

// ---------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange::from(r.start as usize..r.end as usize)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with `size` elements (exact count or range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

// ---------------------------------------------------------------------
// runner config + macros
// ---------------------------------------------------------------------

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests. See the real proptest documentation; this
/// stand-in supports `#![proptest_config(..)]` plus `#[test]` functions
/// whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Assert within a `proptest!` body; failures abort the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format_args!($($fmt)+)
            ));
        }
    };
}

/// Assert equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let l = $l;
        let r = $r;
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($l),
                stringify!($r),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Assert inequality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let l = $l;
        let r = $r;
        if !(l != r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($l),
                stringify!($r),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u64..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn oneof_and_filter_work(
            op in prop_oneof![Just(1u32), Just(2), Just(3)],
            n in (0u32..100).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!((1..=3).contains(&op));
            prop_assert_eq!(n % 2, 0);
        }
    }
}
