//! Reference quantizer built on exact grid arithmetic.
//!
//! This is a deliberately *different algorithm* from the bit-twiddling
//! fast path in `fpvm::value::quantize_f32_bits`: instead of shifting
//! and rounding significand bits, it scales the value onto the target
//! format's representable grid in `f64` and picks the nearer neighbor
//! (ties to even). Every intermediate operation is exact — power-of-two
//! scaling, `floor`, and small-integer products introduce no rounding —
//! so the result is the true round-to-nearest-even image of the input.
//! The differential property tests pit the two implementations against
//! each other over random bit patterns and formats.

use crate::pow2;

/// Reference quantization of an `f32` bit pattern to the format with
/// `mant_bits` explicit mantissa bits and `exp_bits` exponent bits,
/// round to nearest even, returned as `f32` bits.
///
/// Mirrors the contract of [`fpvm::value::quantize_f32_bits`]: NaNs pass
/// through with payload intact, infinities are representable in every
/// format, overflow rounds to infinity, and values below half the
/// smallest subnormal round to signed zero.
pub fn quantize_f32_ref(bits: u32, mant_bits: u32, exp_bits: u32) -> u32 {
    let x = f32::from_bits(bits);
    if x.is_nan() {
        return bits;
    }
    let sign = bits & 0x8000_0000;
    if x.is_infinite() {
        return bits;
    }
    // Every f32 is exact in f64; quantize the exact value.
    quantize_abs(x.abs() as f64, mant_bits, exp_bits, sign)
}

/// Reference quantization of a finite `f64` *directly* to the target
/// format (no intermediate binary32 step), returned as `f32` bits.
///
/// Used to check the no-double-rounding property: for half and bfloat16
/// (`2p + 2 <= 24`), rounding a double through binary32 and then to the
/// format must equal this direct rounding.
///
/// # Panics
/// Panics on NaN or infinite input — callers compare finite values.
pub fn quantize_f64_ref(x: f64, mant_bits: u32, exp_bits: u32) -> u32 {
    assert!(x.is_finite(), "quantize_f64_ref takes finite inputs");
    let sign = if x.is_sign_negative() { 0x8000_0000 } else { 0 };
    quantize_abs(x.abs(), mant_bits, exp_bits, sign)
}

/// Quantize a nonnegative finite `a` onto the format grid and attach
/// `sign`. `a` must be exactly representable in `f64` (always true for
/// our callers).
fn quantize_abs(a: f64, mant_bits: u32, exp_bits: u32, sign: u32) -> u32 {
    assert!(mant_bits <= 23 && (1..=8).contains(&exp_bits));
    if a == 0.0 {
        return sign;
    }
    let bias = (1i32 << (exp_bits - 1)) - 1;
    let e_min = 1 - bias;
    let e_max = bias;
    // Binade of `a` (exact: a is a normal, nonzero f64 here; the
    // smallest input we ever see is 2^-1074 and the grid clamps below).
    let e = ((a.to_bits() >> 52) & 0x7FF) as i32 - 1023;
    let e = if e == -1023 {
        // f64-subnormal input: far below every representable grid point
        // of an embeddable format; treat as binade of the smallest
        // subnormal minus enough to round to zero.
        return sign;
    } else {
        e
    };
    // Grid spacing at this magnitude: 2^(e - mant_bits) in the normal
    // range, constant 2^(e_min - mant_bits) below it.
    let ulp_exp = e.max(e_min) - mant_bits as i32;
    if ulp_exp - 1 > e {
        // `a` is below half the smallest grid step: rounds to zero
        // without entering the scaled path (the scale factor could
        // underflow f64 otherwise).
        return sign;
    }
    let ulp = pow2(ulp_exp);
    // Exact: power-of-two scaling of an f64.
    let q = a / ulp;
    let lo = q.floor();
    let hi = lo + 1.0;
    let chosen = if q == lo {
        lo
    } else {
        let dl = q - lo; // exact: both operands on a fine common grid
        let dh = hi - q;
        if dl < dh {
            lo
        } else if dh < dl {
            hi
        } else if (lo as u64).is_multiple_of(2) {
            lo
        } else {
            hi
        }
    };
    let r = chosen * ulp; // exact: small integer times power of two
    if r == 0.0 {
        return sign;
    }
    let max_finite = (2.0 - pow2(-(mant_bits as i32))) * pow2(e_max);
    if r > max_finite {
        return sign | 0x7F80_0000;
    }
    // r is representable in f32 by construction (it is a grid point of
    // a format embedded in binary32), so this conversion is exact.
    sign | (r as f32).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_fast_path_on_known_values() {
        let cases: &[(f32, u32, u32)] = &[
            (1.0, 10, 5),
            (1.000_976_6, 10, 5), // 1 + 2^-10, exactly representable in half
            (65519.0, 10, 5),
            (65520.0, 10, 5),
            (1.5e-7, 10, 5),
            (3.0e38, 7, 8),
            (-2.5, 7, 8),
            (0.1, 3, 4),
            (-0.0, 10, 5),
            (f32::INFINITY, 7, 8),
        ];
        for &(x, m, e) in cases {
            assert_eq!(
                quantize_f32_ref(x.to_bits(), m, e),
                fpvm::value::quantize_f32_bits(x.to_bits(), m, e),
                "x={x} m={m} e={e}"
            );
        }
    }

    #[test]
    fn nan_payloads_pass_through() {
        for bits in [0x7FC0_0000u32, 0x7F80_0001, 0xFFC1_2345] {
            assert_eq!(quantize_f32_ref(bits, 10, 5), bits);
        }
    }

    #[test]
    fn direct_f64_rounding_matches_known_half_values() {
        // 65519.999 is below the 65520 overflow threshold.
        assert_eq!(quantize_f64_ref(65519.999, 10, 5), 65504.0f32.to_bits());
        assert_eq!(quantize_f64_ref(65520.0, 10, 5), f32::INFINITY.to_bits());
        // Exactly half of the smallest subnormal ties to even zero.
        assert_eq!(quantize_f64_ref(pow2(-25), 10, 5), 0);
        assert_eq!(quantize_f64_ref(-pow2(-25), 10, 5), 0x8000_0000);
        // Just above it rounds to the smallest subnormal.
        assert_eq!(quantize_f64_ref(pow2(-25) * 1.25, 10, 5), (pow2(-24) as f32).to_bits());
    }

    #[test]
    fn tiny_f64_inputs_round_to_zero() {
        assert_eq!(quantize_f64_ref(f64::from_bits(1), 10, 5), 0);
        assert_eq!(quantize_f64_ref(5e-324, 23, 8), 0);
    }
}
