//! Per-format range guards for overflow/underflow-prone operations.
//!
//! Narrow formats fail first in *range*, not precision: `exp` overflows
//! half for inputs above ~11, division by a subnormal overflows, and
//! `log` near the bottom of the subnormal range loses all significance.
//! Mixed-precision frameworks therefore keep a deny-list of operations
//! that may not be demoted blindly (the TVM AMP lists, the PyTorch
//! autocast fp32-only set). We refine the deny-list with *observed
//! ranges*: the shadow profiler records each instruction's operand
//! magnitude envelope, and a demotion below single is admitted only if
//! that envelope fits the target format's safe range for the
//! instruction's class.

use crate::Format;
use fpvm::isa::{FpAluOp, InstKind, MathFun};
use std::fmt;

/// Overflow/underflow risk class of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `exp(x)`: overflows once `|x|` exceeds `ln(max_finite)`.
    Exp,
    /// `log(x)`: meaningless below the normal range.
    Log,
    /// Division: a subnormal divisor overflows the quotient.
    Div,
    /// Everything else: only the plain magnitude envelope is checked.
    Other,
}

/// Classify an instruction for range guarding.
pub fn op_class(kind: &InstKind) -> OpClass {
    match kind {
        InstKind::FpMath { fun: MathFun::Exp, .. } => OpClass::Exp,
        InstKind::FpMath { fun: MathFun::Log, .. } => OpClass::Log,
        InstKind::FpArith { op: FpAluOp::Div, .. } => OpClass::Div,
        _ => OpClass::Other,
    }
}

/// [`op_class`] from an `fpvm` disassembly string — the form the
/// `mpconfig` structure tree carries where the original [`InstKind`] is
/// out of reach (the search walks the tree, not the program). The
/// mnemonic stems are unambiguous: `div…` is FP division (integer
/// division disassembles as `idiv`), and the math intrinsics all carry
/// an `f` prefix (`fexpsd`, `flogsd`). Unknown mnemonics fall back to
/// [`OpClass::Other`], which only range-checks the plain envelope.
pub fn op_class_of_disasm(disasm: &str) -> OpClass {
    let mnemonic = disasm.split_whitespace().next().unwrap_or("");
    if mnemonic.starts_with("div") {
        OpClass::Div
    } else if mnemonic.starts_with("fexp") {
        OpClass::Exp
    } else if mnemonic.starts_with("flog") {
        OpClass::Log
    } else {
        OpClass::Other
    }
}

/// Observed operand magnitude envelope of one instruction.
///
/// `max_abs` is the largest `|x|` seen across all operands and all
/// executions; `min_abs` is the smallest *nonzero* `|x|` (infinity when
/// only zeros were seen). A default-constructed envelope (nothing
/// observed) admits every demotion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeObs {
    /// Largest observed operand magnitude.
    pub max_abs: f64,
    /// Smallest observed nonzero operand magnitude.
    pub min_abs: f64,
}

impl Default for RangeObs {
    fn default() -> Self {
        RangeObs { max_abs: 0.0, min_abs: f64::INFINITY }
    }
}

impl RangeObs {
    /// Fold one observed operand value into the envelope.
    pub fn observe(&mut self, x: f64) {
        let a = x.abs();
        if a.is_nan() {
            return;
        }
        if a > self.max_abs {
            self.max_abs = a;
        }
        if a > 0.0 && a < self.min_abs {
            self.min_abs = a;
        }
    }

    /// Merge another envelope into this one.
    pub fn merge(&mut self, other: &RangeObs) {
        if other.max_abs > self.max_abs {
            self.max_abs = other.max_abs;
        }
        if other.min_abs < self.min_abs {
            self.min_abs = other.min_abs;
        }
    }
}

/// Why a demotion was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardError {
    /// The observed magnitude (or the class's transform of it) exceeds
    /// the format's largest finite value.
    Overflow {
        /// The risk class that tripped.
        class: OpClass,
        /// The refused format.
        format: Format,
        /// The observed magnitude driving the refusal.
        observed: f64,
        /// The format bound it violates.
        bound: f64,
    },
    /// The observed magnitude falls below the format's normal range
    /// where the class loses significance or overflows downstream.
    Underflow {
        /// The risk class that tripped.
        class: OpClass,
        /// The refused format.
        format: Format,
        /// The observed magnitude driving the refusal.
        observed: f64,
        /// The format bound it violates.
        bound: f64,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Overflow { class, format, observed, bound } => write!(
                f,
                "{class:?} demotion to {format} refused: observed magnitude {observed:e} \
                 exceeds safe bound {bound:e}"
            ),
            GuardError::Underflow { class, format, observed, bound } => write!(
                f,
                "{class:?} demotion to {format} refused: observed magnitude {observed:e} \
                 below safe bound {bound:e}"
            ),
        }
    }
}

impl std::error::Error for GuardError {}

/// Decide whether an instruction of `class` with observed envelope
/// `obs` may be demoted to `format`.
///
/// `Double` and `Single` always pass — the guard exists for the levels
/// below the classic two; single demotion keeps its historical "try it
/// and let verification decide" behavior.
pub fn check_demotion(format: Format, class: OpClass, obs: &RangeObs) -> Result<(), GuardError> {
    if !format.is_reduced() {
        return Ok(());
    }
    let max_finite = format.max_finite();
    // Every class: operands themselves must be representable.
    if obs.max_abs > max_finite {
        return Err(GuardError::Overflow {
            class,
            format,
            observed: obs.max_abs,
            bound: max_finite,
        });
    }
    match class {
        OpClass::Exp => {
            // exp(|x|) must stay finite.
            let bound = max_finite.ln();
            if obs.max_abs > bound {
                return Err(GuardError::Overflow { class, format, observed: obs.max_abs, bound });
            }
        }
        OpClass::Log => {
            // log of a subnormal (or anything below the normal range)
            // has lost its significand.
            let bound = format.min_positive_normal();
            if obs.min_abs < bound {
                return Err(GuardError::Underflow { class, format, observed: obs.min_abs, bound });
            }
        }
        OpClass::Div => {
            // A subnormal divisor overflows (or fully denormalizes) the
            // quotient.
            let bound = format.min_positive_normal();
            if obs.min_abs < bound {
                return Err(GuardError::Underflow { class, format, observed: obs.min_abs, bound });
            }
        }
        OpClass::Other => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::isa::{Prec, Xmm, RM};

    fn obs(min_abs: f64, max_abs: f64) -> RangeObs {
        RangeObs { min_abs, max_abs }
    }

    #[test]
    fn classes_follow_the_instruction_kind() {
        let arith = |op| InstKind::FpArith {
            op,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        let math =
            |fun| InstKind::FpMath { fun, prec: Prec::Double, dst: Xmm(0), src: RM::Reg(Xmm(1)) };
        assert_eq!(op_class(&arith(FpAluOp::Div)), OpClass::Div);
        assert_eq!(op_class(&arith(FpAluOp::Add)), OpClass::Other);
        assert_eq!(op_class(&math(MathFun::Exp)), OpClass::Exp);
        assert_eq!(op_class(&math(MathFun::Log)), OpClass::Log);
        assert_eq!(op_class(&math(MathFun::Sin)), OpClass::Other);
    }

    #[test]
    fn disasm_classification_matches_kind_classification() {
        let arith = InstKind::FpArith {
            op: FpAluOp::Div,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        };
        assert_eq!(op_class_of_disasm(&arith.to_string()), op_class(&arith));
        for (fun, want) in [
            (MathFun::Exp, OpClass::Exp),
            (MathFun::Log, OpClass::Log),
            (MathFun::Sin, OpClass::Other),
        ] {
            let math =
                InstKind::FpMath { fun, prec: Prec::Double, dst: Xmm(0), src: RM::Reg(Xmm(1)) };
            assert_eq!(op_class_of_disasm(&math.to_string()), want);
        }
        assert_eq!(op_class_of_disasm("addsd %xmm1, %xmm0"), OpClass::Other);
        assert_eq!(op_class_of_disasm(""), OpClass::Other);
    }

    #[test]
    fn exp_overflow_is_refused_for_half_but_not_bf16() {
        // exp(30) ≈ 1.07e13 overflows half (max 65504) but not bf16.
        let o = obs(1.0, 30.0);
        assert!(matches!(
            check_demotion(Format::Half, OpClass::Exp, &o),
            Err(GuardError::Overflow { .. })
        ));
        assert!(check_demotion(Format::Bf16, OpClass::Exp, &o).is_ok());
    }

    #[test]
    fn plain_magnitude_overflow_is_refused_for_every_class() {
        let o = obs(1.0, 1.0e6);
        assert!(check_demotion(Format::Half, OpClass::Other, &o).is_err());
        assert!(check_demotion(Format::Bf16, OpClass::Other, &o).is_ok());
    }

    #[test]
    fn subnormal_divisors_and_log_args_are_refused() {
        // 1e-6 is below half's smallest normal (≈6.1e-5).
        let o = obs(1.0e-6, 10.0);
        assert!(matches!(
            check_demotion(Format::Half, OpClass::Div, &o),
            Err(GuardError::Underflow { .. })
        ));
        assert!(matches!(
            check_demotion(Format::Half, OpClass::Log, &o),
            Err(GuardError::Underflow { .. })
        ));
        assert!(check_demotion(Format::Half, OpClass::Other, &o).is_ok());
        assert!(check_demotion(Format::Single, OpClass::Div, &o).is_ok());
    }

    #[test]
    fn empty_envelope_admits_everything() {
        let o = RangeObs::default();
        for c in [OpClass::Exp, OpClass::Log, OpClass::Div, OpClass::Other] {
            assert!(check_demotion(Format::Half, c, &o).is_ok());
        }
    }

    #[test]
    fn envelope_folding_tracks_nonzero_extremes() {
        let mut o = RangeObs::default();
        o.observe(0.0);
        o.observe(-3.0);
        o.observe(1.5e-8);
        o.observe(f64::NAN);
        assert_eq!(o.max_abs, 3.0);
        assert_eq!(o.min_abs, 1.5e-8);
        let mut m = RangeObs::default();
        m.merge(&o);
        assert_eq!(m, o);
    }
}
