//! Generalized reduced-precision formats (the *precision lattice*).
//!
//! The original system replaces doubles with singles — a two-level
//! lattice. This crate generalizes the replacement side to any IEEE-style
//! binary format that *embeds in binary32*: half (`binary16`), bfloat16,
//! and arbitrary custom formats with `mantissa_bits <= 23` explicit
//! mantissa bits and `1..=8` exponent bits.
//!
//! The embedding constraint is what keeps the runtime representation
//! unchanged: every value of such a format (normals, subnormals, zeros,
//! infinities) is exactly representable as an `f32`, so a reduced value
//! still lives in the low half of the NaN-boxed 64-bit slot
//! (`fpvm::value`) exactly like a replaced single. A reduced operation is
//! *emulated* as the single-precision operation followed by a
//! round-to-nearest-even quantization of the result to the target format
//! ([`fpvm::value::quantize_f32_bits`], executed by the VM's `FpTrunc`
//! instruction). For half and bfloat16 this is bit-exact with native
//! arithmetic on basic operations: their precisions satisfy the
//! `2p + 2 <= 24` no-double-rounding bound, so rounding through binary32
//! is innocuous. Wider custom mantissas are *defined* by the emulation
//! ("binary32 op, then quantize").
//!
//! The crate also carries:
//!
//! - [`softfloat`]: an independent reference quantizer built on exact
//!   grid arithmetic in `f64` (a deliberately different algorithm from
//!   the bit-twiddling fast path), used by the differential property
//!   tests;
//! - [`guard`]: per-format range guards that refuse demotions of
//!   overflow/underflow-prone operation classes (`exp`, `log`, division)
//!   when the observed operand range does not fit the target format's
//!   finite/normal range.

use std::fmt;

pub mod guard;
pub mod softfloat;

/// A precision level in the lattice.
///
/// Ordered from widest to narrowest for the named formats; custom
/// formats sit wherever their `(mantissa_bits, exp_bits)` pair puts
/// them. `Double` and `Single` are the two classic levels; everything
/// below `Single` is *reduced* and emulated in the single-precision
/// slot (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// IEEE binary64 (the baseline precision).
    Double,
    /// IEEE binary32.
    Single,
    /// IEEE binary16: 10 mantissa bits, 5 exponent bits.
    Half,
    /// bfloat16: 7 mantissa bits, 8 exponent bits.
    Bf16,
    /// A custom format embedding in binary32.
    Custom {
        /// Explicit mantissa bits (`<= 23`).
        mantissa_bits: u8,
        /// Exponent bits (`1..=8`).
        exp_bits: u8,
    },
}

impl Format {
    /// Explicit mantissa bits of the format.
    pub fn mantissa_bits(self) -> u32 {
        match self {
            Format::Double => 52,
            Format::Single => 23,
            Format::Half => 10,
            Format::Bf16 => 7,
            Format::Custom { mantissa_bits, .. } => mantissa_bits as u32,
        }
    }

    /// Exponent bits of the format.
    pub fn exp_bits(self) -> u32 {
        match self {
            Format::Double => 11,
            Format::Single => 8,
            Format::Half => 5,
            Format::Bf16 => 8,
            Format::Custom { exp_bits, .. } => exp_bits as u32,
        }
    }

    /// Significand precision `p` (mantissa bits plus the implicit bit).
    pub fn precision(self) -> u32 {
        self.mantissa_bits() + 1
    }

    /// True for formats strictly below `Single` in the lattice — the
    /// ones executed via quantizing emulation.
    pub fn is_reduced(self) -> bool {
        !matches!(self, Format::Double | Format::Single)
    }

    /// Validate the embedding constraint. Named formats are always
    /// valid; `Custom` must satisfy `mantissa_bits <= 23` and
    /// `exp_bits in 1..=8`.
    pub fn validate(self) -> Result<(), FormatError> {
        if let Format::Custom { mantissa_bits, exp_bits } = self {
            if mantissa_bits > 23 {
                return Err(FormatError::MantissaTooWide { mantissa_bits });
            }
            if !(1..=8).contains(&exp_bits) {
                return Err(FormatError::ExponentOutOfRange { exp_bits });
            }
        }
        Ok(())
    }

    /// Exponent bias: `2^(exp_bits-1) - 1`.
    pub fn bias(self) -> i32 {
        (1i32 << (self.exp_bits() - 1)) - 1
    }

    /// Largest normal exponent (the all-ones exponent encodes inf/NaN).
    pub fn e_max(self) -> i32 {
        self.bias()
    }

    /// Smallest normal exponent.
    pub fn e_min(self) -> i32 {
        1 - self.bias()
    }

    /// Largest finite value: `(2 - 2^-mantissa_bits) * 2^e_max`.
    pub fn max_finite(self) -> f64 {
        if self == Format::Double {
            return f64::MAX;
        }
        (2.0 - pow2(-(self.mantissa_bits() as i32))) * pow2(self.e_max())
    }

    /// Smallest positive normal value: `2^e_min`.
    pub fn min_positive_normal(self) -> f64 {
        if self == Format::Double {
            return f64::MIN_POSITIVE;
        }
        pow2(self.e_min())
    }

    /// Smallest positive subnormal value: `2^(e_min - mantissa_bits)`.
    pub fn min_positive_subnormal(self) -> f64 {
        if self == Format::Double {
            return pow2(-1074);
        }
        pow2(self.e_min() - self.mantissa_bits() as i32)
    }

    /// Quantize an `f32` bit pattern to this format, round to nearest
    /// even, returning `f32` bits (the embedded representation).
    ///
    /// `Single` and `Double` are identities here: a single payload is
    /// already exact, and a double is never carried as `f32` bits.
    pub fn quantize_bits(self, bits: u32) -> u32 {
        if self.is_reduced() {
            fpvm::value::quantize_f32_bits(bits, self.mantissa_bits(), self.exp_bits())
        } else {
            bits
        }
    }

    /// Quantize an `f32` value to this format (round to nearest even).
    pub fn quantize(self, x: f32) -> f32 {
        f32::from_bits(self.quantize_bits(x.to_bits()))
    }

    /// Canonical name: `double`, `single`, `half`, `bf16`, or
    /// `m{mantissa_bits}e{exp_bits}` for custom formats.
    pub fn name(self) -> String {
        match self {
            Format::Double => "double".to_string(),
            Format::Single => "single".to_string(),
            Format::Half => "half".to_string(),
            Format::Bf16 => "bf16".to_string(),
            Format::Custom { mantissa_bits, exp_bits } => format!("m{mantissa_bits}e{exp_bits}"),
        }
    }

    /// Parse a format name as produced by [`Format::name`]. Custom
    /// formats are validated against the embedding constraint.
    pub fn parse(s: &str) -> Result<Format, FormatError> {
        match s {
            "double" => return Ok(Format::Double),
            "single" => return Ok(Format::Single),
            "half" => return Ok(Format::Half),
            "bf16" => return Ok(Format::Bf16),
            _ => {}
        }
        let body = s.strip_prefix('m').ok_or_else(|| FormatError::unknown(s))?;
        let (m, e) = body.split_once('e').ok_or_else(|| FormatError::unknown(s))?;
        let mantissa_bits: u8 = m.parse().map_err(|_| FormatError::unknown(s))?;
        let exp_bits: u8 = e.parse().map_err(|_| FormatError::unknown(s))?;
        let f = Format::Custom { mantissa_bits, exp_bits };
        f.validate()?;
        Ok(f)
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Why a format specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// `mantissa_bits > 23`: the format does not embed in binary32.
    MantissaTooWide {
        /// The offending width.
        mantissa_bits: u8,
    },
    /// `exp_bits` outside `1..=8`: the format does not embed in binary32.
    ExponentOutOfRange {
        /// The offending width.
        exp_bits: u8,
    },
    /// The string is not a recognized format name.
    UnknownFormat {
        /// The offending token.
        token: String,
    },
}

impl FormatError {
    fn unknown(s: &str) -> FormatError {
        FormatError::UnknownFormat { token: s.to_string() }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::MantissaTooWide { mantissa_bits } => {
                write!(f, "mantissa width {mantissa_bits} exceeds 23 (must embed in binary32)")
            }
            FormatError::ExponentOutOfRange { exp_bits } => {
                write!(f, "exponent width {exp_bits} outside 1..=8 (must embed in binary32)")
            }
            FormatError::UnknownFormat { token } => {
                write!(f, "unknown format {token:?} (expected double/single/half/bf16/m<M>e<E>)")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// Exact power of two as `f64`, valid for `-1074..=1023`.
pub(crate) fn pow2(n: i32) -> f64 {
    debug_assert!((-1074..=1023).contains(&n));
    if n >= -1022 {
        f64::from_bits(((n + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (n + 1074))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_format_parameters_match_ieee() {
        assert_eq!((Format::Half.mantissa_bits(), Format::Half.exp_bits()), (10, 5));
        assert_eq!((Format::Bf16.mantissa_bits(), Format::Bf16.exp_bits()), (7, 8));
        assert_eq!((Format::Single.mantissa_bits(), Format::Single.exp_bits()), (23, 8));
        assert_eq!((Format::Double.mantissa_bits(), Format::Double.exp_bits()), (52, 11));
        assert_eq!(Format::Half.max_finite(), 65504.0);
        assert_eq!(Format::Half.min_positive_normal(), pow2(-14));
        assert_eq!(Format::Half.min_positive_subnormal(), pow2(-24));
        assert_eq!(Format::Bf16.e_max(), 127);
    }

    #[test]
    fn names_round_trip() {
        let fmts = [
            Format::Double,
            Format::Single,
            Format::Half,
            Format::Bf16,
            Format::Custom { mantissa_bits: 3, exp_bits: 4 },
            Format::Custom { mantissa_bits: 23, exp_bits: 1 },
        ];
        for f in fmts {
            assert_eq!(Format::parse(&f.name()), Ok(f), "{f}");
        }
    }

    #[test]
    fn invalid_formats_are_rejected_by_name() {
        assert!(matches!(Format::parse("quad"), Err(FormatError::UnknownFormat { .. })));
        assert!(matches!(Format::parse("m24e8"), Err(FormatError::MantissaTooWide { .. })));
        assert!(matches!(Format::parse("m5e9"), Err(FormatError::ExponentOutOfRange { .. })));
        assert!(matches!(Format::parse("m5e0"), Err(FormatError::ExponentOutOfRange { .. })));
        assert!(matches!(Format::parse("m5"), Err(FormatError::UnknownFormat { .. })));
        assert!(matches!(Format::parse(""), Err(FormatError::UnknownFormat { .. })));
    }

    #[test]
    fn quantize_half_known_values() {
        let h = Format::Half;
        assert_eq!(h.quantize(1.0), 1.0);
        // 1 + 2^-11 is exactly between 1 and 1 + 2^-10: ties to even (1.0).
        assert_eq!(h.quantize(1.0 + pow2(-11) as f32), 1.0);
        // Just above the tie rounds up.
        assert_eq!(h.quantize(1.0 + pow2(-11) as f32 * 1.5), 1.0 + pow2(-10) as f32);
        // Half overflow threshold is 65520; below it clamps to 65504.
        assert_eq!(h.quantize(65519.0), 65504.0);
        assert_eq!(h.quantize(65520.0), f32::INFINITY);
        assert_eq!(h.quantize(-65520.0), f32::NEG_INFINITY);
        // Subnormal granularity 2^-24.
        assert_eq!(h.quantize(pow2(-24) as f32), pow2(-24) as f32);
        assert_eq!(h.quantize(pow2(-26) as f32), 0.0);
        assert!(h.quantize(-0.0).is_sign_negative());
        assert!(h.quantize(f32::NAN).is_nan());
    }

    #[test]
    fn quantize_bf16_truncates_mantissa() {
        let b = Format::Bf16;
        // bf16 keeps the top 8 significand bits of the f32.
        let x = f32::from_bits(0x3F80_0001); // 1 + 2^-23
        assert_eq!(b.quantize(x), 1.0);
        // bf16 shares f32's exponent range: huge values stay finite.
        // 3.0e38 = 1.76323... × 2^127 rounds to (1 + 98/128) × 2^127.
        assert_eq!(b.quantize(3.0e38).to_bits(), (254u32 << 23) | (98 << 16));
        assert!(b.quantize(f32::MAX).is_infinite());
    }

    #[test]
    fn single_and_double_are_identities() {
        for bits in [0u32, 0x3F80_0000, 0x7F7F_FFFF, 0x8000_0001, 0x7FC0_0000] {
            assert_eq!(Format::Single.quantize_bits(bits), bits);
            assert_eq!(Format::Double.quantize_bits(bits), bits);
        }
    }
}
