//! # instrument — binary modification for mixed precision
//!
//! The paper's §2.3–§2.4: a snippet mini-compiler that emits real machine
//! code implementing the in-place downcast-and-flag replacement scheme
//! (Fig. 5/6), a basic-block patcher that splits blocks and rewires CFG
//! edges around victims (Fig. 7), and a whole-program rewriter that turns
//! an original double-precision binary plus a precision configuration into
//! a runnable mixed-precision binary.
//!
//! The replacement bit pattern itself (`0x7FF4DEAD`) lives in
//! [`fpvm::value`] and is re-exported here.

#![warn(missing_docs)]

pub mod dataflow;
pub mod rewriter;
pub mod snippets;

pub use fpvm::value::{extract, is_replaced, replace, FLAG_HI, FLAG_HI64};
pub use rewriter::{
    block_growth, dynamic_replacement_pct, rewrite, rewrite_all_double, RewriteMode,
    RewriteOptions, RewriteStats, Rewriter,
};
pub use snippets::{emit_snippet, Emitter, OperandFacts, SnippetPrec};
