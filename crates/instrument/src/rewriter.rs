//! The binary rewriter: basic-block patching (paper §2.4, Fig. 7) plus
//! whole-program policy (§2.3).
//!
//! Given a program, its structure tree, and a precision configuration, the
//! rewriter produces a *new* executable program in which each replacement
//! candidate is either
//!
//! * expanded into a single-precision snippet (`s` flag),
//! * expanded into a reduced-format snippet (`h`/`b`/`m<M>e<E>` flags —
//!   single-precision op followed by an RNE quantize onto the reduced
//!   grid),
//! * expanded into a double-precision checking snippet (`d` flag — still
//!   necessary once *any* replacement exists, because operands may arrive
//!   replaced from elsewhere),
//! * or copied untouched (`i`/ignore flag).
//!
//! Block patching follows the paper exactly: the block containing a victim
//! instruction is split around it and the fall-through edge is routed
//! through freshly generated snippet blocks; the copied original
//! instructions keep their ids and addresses, so configurations and
//! profiles stay valid against the rewritten binary.

use crate::dataflow::PlainSet;
use crate::snippets::{emit_snippet, Emitter, OperandFacts, SnippetPrec};
use fpvm::isa::{BlockId, Insn, Terminator};
use fpvm::program::Program;
use mpconfig::{Config, Flag, StructureTree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Global rewriting policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteMode {
    /// Follow the configuration: if it replaces anything, every candidate
    /// is instrumented at its effective precision; if it replaces nothing,
    /// the program is returned unmodified.
    Config,
    /// Instrument every candidate with a double-precision snippet
    /// regardless of the configuration — the semantics-preserving base
    /// case used for the overhead measurements (Figs. 8–9).
    AllDouble,
}

/// Rewriting options.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Policy.
    pub mode: RewriteMode,
    /// Enable the lean (dataflow-optimized) snippets of §2.5.
    pub lean: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions { mode: RewriteMode::Config, lean: false }
    }
}

/// What the rewriter did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Candidates expanded into single-precision snippets.
    pub single: usize,
    /// Candidates expanded into reduced-format (half/bf16/custom)
    /// snippets.
    pub reduced: usize,
    /// Candidates expanded into double-precision snippets.
    pub double_checked: usize,
    /// Candidates left untouched due to an ignore flag.
    pub ignored: usize,
    /// Snippet instructions emitted in total.
    pub snippet_insns: usize,
}

impl RewriteStats {
    /// Total candidates instrumented.
    pub fn instrumented(&self) -> usize {
        self.single + self.reduced + self.double_checked
    }
}

/// Rewrite `orig` under `cfg`. Returns the new program and statistics.
///
/// In `Config` mode with a configuration that replaces nothing, the
/// original is cloned unmodified (stats all zero).
pub fn rewrite(
    orig: &Program,
    tree: &StructureTree,
    cfg: &Config,
    opts: &RewriteOptions,
) -> (Program, RewriteStats) {
    let active = match opts.mode {
        RewriteMode::AllDouble => true,
        RewriteMode::Config => cfg.any_single(tree),
    };
    if !active {
        return (orig.clone(), RewriteStats::default());
    }

    let mut out = Program::new(orig.mem_size);
    out.globals = orig.globals.clone();
    out.symbols = orig.symbols.clone();
    let max_addr = orig.iter_insns().map(|(_, _, i)| i.addr).max().unwrap_or(0);
    out.reserve_ids(orig.insn_id_bound() as u32, max_addr + 16);

    // Replicate module and function shells with identical indices.
    for m in &orig.modules {
        out.add_module(m.name.clone());
    }
    for f in &orig.funcs {
        let nf = out.add_function(f.module, f.name.clone());
        debug_assert_eq!(nf.0, f.id.0);
    }
    out.entry = orig.entry;

    let mut stats = RewriteStats::default();
    let before_snippets = |p: &Program| p.insn_id_bound();
    let base_ids = before_snippets(&out);

    for f in &orig.funcs {
        // Pre-create one head block per original block so terminators can
        // be remapped after the whole function is emitted.
        let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
        for &ob in &f.blocks {
            remap.insert(ob, out.add_block(f.id));
        }
        out.funcs[f.id.0 as usize].entry = remap[&f.entry];

        let mut fixups: Vec<(BlockId, fpvm::isa::Terminator)> = Vec::new();
        for &ob in &f.blocks {
            let oblk = orig.block(ob);
            let mut cur = remap[&ob];
            let mut plain = PlainSet::new();
            for insn in &oblk.insns {
                let decision = decide(insn, tree, cfg, opts.mode);
                match decision {
                    Decision::Copy => {
                        plain.step(insn, None);
                        out.blocks[cur.0 as usize].insns.push(insn.clone());
                    }
                    Decision::Ignore => {
                        plain.step(insn, None);
                        stats.ignored += 1;
                        out.blocks[cur.0 as usize].insns.push(insn.clone());
                    }
                    Decision::Snippet(prec) => {
                        let facts =
                            if opts.lean { plain.facts(insn) } else { OperandFacts::default() };
                        let mut e = Emitter { prog: &mut out, func: f.id, cur, origin: insn.id };
                        emit_snippet(&mut e, insn, prec, facts);
                        cur = e.cur;
                        plain.step(insn, Some(prec));
                        match prec {
                            SnippetPrec::Single => stats.single += 1,
                            SnippetPrec::Reduced { .. } => stats.reduced += 1,
                            SnippetPrec::Double => stats.double_checked += 1,
                        }
                    }
                }
            }
            fixups.push((cur, oblk.term.clone()));
        }
        for (b, mut term) in fixups {
            term.map_successors(|old| remap[&old]);
            out.block_mut(b).term = term;
        }
    }

    stats.snippet_insns = out.insn_id_bound() - base_ids;
    debug_assert!(out.validate().is_ok(), "rewriter produced invalid program");
    (out, stats)
}

/// One cached instrumentation expansion of a single original basic block
/// under a fixed per-instruction decision vector.
///
/// Blocks are *local*: index into [`Fragment::blocks`] is the local id, and
/// non-tail terminators reference local ids. Block 0 is the head (spliced
/// onto the original block's remapped slot); the tail block is where control
/// falls out of the fragment — the stitcher installs the original block's
/// remapped terminator there, so the stored tail terminator is a
/// placeholder.
///
/// Snippet instruction ids inside a fragment are minted exactly once, from
/// the rewriter's shared monotone cursor, so the same fragment can be
/// spliced into any number of output programs without id collisions.
struct Fragment {
    blocks: Vec<(Vec<Insn>, Terminator)>,
    tail: u32,
    single: usize,
    reduced: usize,
    double_checked: usize,
    ignored: usize,
    snippet_insns: usize,
}

struct RewriterState {
    /// Next snippet instruction id / address to mint (shared across all
    /// fragments; monotone, never reused).
    next_id: u32,
    next_addr: u64,
    /// `(original block, per-insn decisions)` → expansion.
    cache: HashMap<(u32, Vec<u8>), Arc<Fragment>>,
    hits: u64,
    misses: u64,
}

/// Incremental rewriter: caches instrumented basic-block expansions so that
/// successive configurations only pay to re-instrument blocks whose
/// effective precision decisions actually changed.
///
/// Semantics match the one-shot [`rewrite`] exactly (same instruction
/// sequence per block, same dataflow facts, same step/trap behaviour);
/// snippet instructions carry different — but stable — ids and addresses,
/// because each distinct `(block, decisions)` fragment mints its ids once
/// from a shared monotone cursor. Original instructions keep their ids, so
/// configurations and profiles remain valid against every output.
///
/// A `Rewriter` is tied to the program it was constructed with; it is
/// `Sync` and safe to share across search worker threads.
pub struct Rewriter {
    opts: RewriteOptions,
    insn_bound: u32,
    state: Mutex<RewriterState>,
    tracer: Option<mptrace::Tracer>,
}

impl Rewriter {
    /// Create an incremental rewriter for `orig` with the given options.
    pub fn new(orig: &Program, opts: RewriteOptions) -> Self {
        let max_addr = orig.iter_insns().map(|(_, _, i)| i.addr).max().unwrap_or(0);
        Rewriter {
            opts,
            insn_bound: orig.insn_id_bound() as u32,
            state: Mutex::new(RewriterState {
                next_id: orig.insn_id_bound() as u32,
                next_addr: max_addr + 16,
                cache: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
            tracer: None,
        }
    }

    /// Attach a [`mptrace::Tracer`]: each [`Rewriter::rewrite`] call
    /// records fragment-cache hit/miss counters and a rewrite-time
    /// histogram. Without one, rewriting records nothing.
    pub fn set_tracer(&mut self, tracer: mptrace::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Fragment-cache `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.hits, st.misses)
    }

    /// Rewrite `orig` under `cfg`, reusing cached block expansions.
    ///
    /// `orig` must be the program this rewriter was constructed with.
    /// Equivalent to the one-shot [`rewrite`] up to snippet ids/addresses.
    pub fn rewrite(
        &self,
        orig: &Program,
        tree: &StructureTree,
        cfg: &Config,
    ) -> (Program, RewriteStats) {
        assert_eq!(
            orig.insn_id_bound() as u32,
            self.insn_bound,
            "Rewriter used with a different program than it was built for"
        );
        let active = match self.opts.mode {
            RewriteMode::AllDouble => true,
            RewriteMode::Config => cfg.any_single(tree),
        };
        if !active {
            return (orig.clone(), RewriteStats::default());
        }
        let t0 = self.tracer.as_ref().map(|_| std::time::Instant::now());
        let (mut call_hits, mut call_misses) = (0u64, 0u64);

        let mut out = Program::new(orig.mem_size);
        out.globals = orig.globals.clone();
        out.symbols = orig.symbols.clone();
        for m in &orig.modules {
            out.add_module(m.name.clone());
        }
        for f in &orig.funcs {
            let nf = out.add_function(f.module, f.name.clone());
            debug_assert_eq!(nf.0, f.id.0);
        }
        out.entry = orig.entry;

        let mut stats = RewriteStats::default();
        for f in &orig.funcs {
            let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
            for &ob in &f.blocks {
                remap.insert(ob, out.add_block(f.id));
            }
            out.funcs[f.id.0 as usize].entry = remap[&f.entry];

            let mut fixups: Vec<(BlockId, Terminator)> = Vec::new();
            for &ob in &f.blocks {
                let oblk = orig.block(ob);
                // Per-insn decision vector — the cache key, three bytes
                // per instruction: `(tag, mant, exp)` with zero format
                // bytes for non-reduced decisions. Dataflow facts used by
                // lean snippets are a pure function of the block's
                // instructions and this vector (PlainSet starts fresh per
                // block), so `(block, decisions)` fully determines the
                // expansion.
                let mut key: Vec<u8> = Vec::with_capacity(oblk.insns.len() * 3);
                for insn in &oblk.insns {
                    let trip = match decide(insn, tree, cfg, self.opts.mode) {
                        Decision::Copy => [3u8, 0, 0],
                        Decision::Ignore => [0, 0, 0],
                        Decision::Snippet(SnippetPrec::Single) => [1, 0, 0],
                        Decision::Snippet(SnippetPrec::Double) => [2, 0, 0],
                        Decision::Snippet(SnippetPrec::Reduced { mant, exp }) => [4, mant, exp],
                    };
                    key.extend_from_slice(&trip);
                }

                let frag = {
                    let mut st = self.state.lock().unwrap();
                    if let Some(f) = st.cache.get(&(ob.0, key.clone())).map(Arc::clone) {
                        st.hits += 1;
                        call_hits += 1;
                        f
                    } else {
                        st.misses += 1;
                        call_misses += 1;
                        let frag = Arc::new(build_fragment(&mut st, self.opts.lean, oblk, &key));
                        st.cache.insert((ob.0, key), Arc::clone(&frag));
                        frag
                    }
                };

                // Splice: local block 0 lands on this block's pre-created
                // head; extra locals get fresh blocks.
                let mut locals: Vec<BlockId> = Vec::with_capacity(frag.blocks.len());
                locals.push(remap[&ob]);
                for _ in 1..frag.blocks.len() {
                    locals.push(out.add_block(f.id));
                }
                for (li, (insns, term)) in frag.blocks.iter().enumerate() {
                    let gb = locals[li];
                    out.blocks[gb.0 as usize].insns = insns.clone();
                    if li as u32 != frag.tail {
                        let mut t = term.clone();
                        t.map_successors(|l| locals[l.0 as usize]);
                        out.block_mut(gb).term = t;
                    }
                }
                fixups.push((locals[frag.tail as usize], oblk.term.clone()));
                stats.single += frag.single;
                stats.reduced += frag.reduced;
                stats.double_checked += frag.double_checked;
                stats.ignored += frag.ignored;
                stats.snippet_insns += frag.snippet_insns;
            }
            for (b, mut term) in fixups {
                term.map_successors(|old| remap[&old]);
                out.block_mut(b).term = term;
            }
        }

        // Cover every fragment id ever minted, so profiles indexed by
        // `insn_id_bound()` fit any output of this rewriter.
        let (nid, naddr) = {
            let st = self.state.lock().unwrap();
            (st.next_id, st.next_addr)
        };
        out.reserve_ids(nid, naddr);
        debug_assert!(out.validate().is_ok(), "incremental rewriter produced invalid program");
        if let (Some(t), Some(t0)) = (&self.tracer, t0) {
            t.incr("rewrite.cache_hits", call_hits);
            t.incr("rewrite.cache_misses", call_misses);
            t.observe("rewrite.wall_us", t0.elapsed().as_micros() as u64);
        }
        (out, stats)
    }
}

/// Expand one basic block in a scratch program, minting snippet ids from
/// the shared cursor (advanced on return).
fn build_fragment(
    st: &mut RewriterState,
    lean: bool,
    oblk: &fpvm::program::BasicBlock,
    key: &[u8],
) -> Fragment {
    let mut scratch = Program::new(0);
    let m = scratch.add_module("fragment".to_string());
    let sf = scratch.add_function(m, "fragment".to_string());
    let head = scratch.add_block(sf);
    debug_assert_eq!(head.0, 0);
    scratch.set_id_cursor(st.next_id, st.next_addr);
    let start_id = st.next_id;

    let mut frag = Fragment {
        blocks: Vec::new(),
        tail: 0,
        single: 0,
        reduced: 0,
        double_checked: 0,
        ignored: 0,
        snippet_insns: 0,
    };
    let mut cur = head;
    let mut plain = PlainSet::new();
    for (insn, d) in oblk.insns.iter().zip(key.chunks_exact(3)) {
        match d[0] {
            3 => {
                plain.step(insn, None);
                scratch.blocks[cur.0 as usize].insns.push(insn.clone());
            }
            0 => {
                plain.step(insn, None);
                frag.ignored += 1;
                scratch.blocks[cur.0 as usize].insns.push(insn.clone());
            }
            1 | 2 | 4 => {
                let prec = match d[0] {
                    1 => SnippetPrec::Single,
                    2 => SnippetPrec::Double,
                    _ => SnippetPrec::Reduced { mant: d[1], exp: d[2] },
                };
                let facts = if lean { plain.facts(insn) } else { OperandFacts::default() };
                let mut e = Emitter { prog: &mut scratch, func: sf, cur, origin: insn.id };
                emit_snippet(&mut e, insn, prec, facts);
                cur = e.cur;
                plain.step(insn, Some(prec));
                match prec {
                    SnippetPrec::Single => frag.single += 1,
                    SnippetPrec::Reduced { .. } => frag.reduced += 1,
                    SnippetPrec::Double => frag.double_checked += 1,
                }
            }
            _ => unreachable!("invalid decision byte"),
        }
    }

    let (end_id, end_addr) = scratch.id_cursor();
    frag.snippet_insns = (end_id - start_id) as usize;
    st.next_id = end_id;
    st.next_addr = end_addr;
    frag.tail = cur.0;
    frag.blocks =
        std::mem::take(&mut scratch.blocks).into_iter().map(|b| (b.insns, b.term)).collect();
    frag
}

enum Decision {
    Copy,
    Ignore,
    Snippet(SnippetPrec),
}

fn decide(insn: &Insn, tree: &StructureTree, cfg: &Config, mode: RewriteMode) -> Decision {
    if !insn.kind.is_candidate() || insn.origin.is_some() {
        return Decision::Copy;
    }
    match mode {
        RewriteMode::AllDouble => Decision::Snippet(SnippetPrec::Double),
        RewriteMode::Config => match cfg.effective(tree, insn.id) {
            Flag::Single => Decision::Snippet(SnippetPrec::Single),
            Flag::Double => Decision::Snippet(SnippetPrec::Double),
            Flag::Ignore => Decision::Ignore,
            f @ (Flag::Half | Flag::Bf16 | Flag::Custom { .. }) => {
                let fmt = f.format().expect("reduced flag carries a format");
                Decision::Snippet(SnippetPrec::Reduced {
                    mant: fmt.mantissa_bits() as u8,
                    exp: fmt.exp_bits() as u8,
                })
            }
        },
    }
}

/// Convenience: instrument everything with double snippets (overhead base
/// case).
pub fn rewrite_all_double(orig: &Program, tree: &StructureTree) -> (Program, RewriteStats) {
    rewrite(
        orig,
        tree,
        &Config::new(),
        &RewriteOptions { mode: RewriteMode::AllDouble, lean: false },
    )
}

/// Dynamic replacement percentage for a configuration, measured against a
/// profile of the *original* program: executed replaced candidates over
/// executed candidates (the "Dynamic" column of the paper's Fig. 10).
pub fn dynamic_replacement_pct(tree: &StructureTree, cfg: &Config, profile: &fpvm::Profile) -> f64 {
    let mut total = 0u64;
    let mut replaced = 0u64;
    for id in tree.all_insns() {
        let n = profile.count(id);
        total += n;
        if cfg.effective(tree, id).is_replacement() {
            replaced += n;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * replaced as f64 / total as f64
    }
}

/// Sanity helper used by tests and examples: assert that the rewritten
/// program contains a snippet chain (i.e. blocks grew).
pub fn block_growth(orig: &Program, rewritten: &Program) -> usize {
    rewritten.blocks.len().saturating_sub(orig.blocks.len())
}

#[allow(unused)]
fn _assert_insn_small(i: &Insn) {
    let _ = i;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::{
        f, fadd, fdiv, fmul, for_, i, itof, ld, set, st, v, CompileOptions, FpWidth, IrProgram,
    };
    use fpvm::{Vm, VmOptions};
    use mpconfig::StructureTree;

    /// sum_{k<8} (k*0.1) / 1.7 with a running product — numerically busy
    /// enough that f32 differs from f64.
    fn kernel() -> IrProgram {
        let mut ir = IrProgram::new("kern");
        let xs = ir.array_f64_init("x", (0..8).map(|k| k as f64 * 0.1).collect());
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let s = ir.local_f(fr);
            let k = ir.local_i(fr);
            vec![
                set(s, f(0.0)),
                for_(
                    k,
                    i(0),
                    i(8),
                    vec![set(s, fadd(v(s), fdiv(fmul(ld(xs, v(k)), itof(v(k))), f(1.7))))],
                ),
                st(out, i(0), v(s)),
            ]
        });
        ir.set_entry(main);
        ir
    }

    fn run_out(p: &Program) -> (f64, fpvm::RunOutcome) {
        let mut vm = Vm::new(p, VmOptions::default());
        let o = vm.run();
        assert!(o.ok(), "trapped: {:?}", o.result);
        (vm.mem.read_f64_slice(p.symbol("out").unwrap(), 1).unwrap()[0], o)
    }

    #[test]
    fn all_double_preserves_results_bit_for_bit() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let (want, base) = run_out(&p);
        let tree = StructureTree::build(&p);
        let (q, stats) = rewrite_all_double(&p, &tree);
        assert!(stats.instrumented() > 0);
        assert!(stats.snippet_insns > 0);
        let (got, instr) = run_out(&q);
        assert_eq!(got.to_bits(), want.to_bits());
        // real overhead: the instrumented run executes more instructions
        assert!(instr.stats.steps > base.stats.steps);
        assert!(block_growth(&p, &q) > 0);
    }

    #[test]
    fn all_single_matches_manual_f32_conversion_bit_for_bit() {
        // §3.1: instrumented-all-single output must equal the manually
        // converted (whole-program F32 lowering) output, bit for bit.
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let mut cfg = Config::new();
        for mi in 0..tree.modules.len() {
            cfg.set_module(tree.modules[mi].id, Flag::Single);
        }
        let (q, stats) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        assert_eq!(stats.single, tree.candidate_count());
        let (got, _) = run_out(&q);

        let manual = fpir::compile(&ir, &CompileOptions { fp: FpWidth::F32 });
        let mut vm = Vm::new(&manual, VmOptions::default());
        assert!(vm.run().ok());
        let want = vm.mem.read_f32_slice(manual.symbol("out").unwrap(), 1).unwrap()[0];
        assert_eq!((got as f32).to_bits(), want.to_bits());
        // and it must differ from the double result (the kernel is lossy)
        let (dbl, _) = run_out(&p);
        assert_ne!(dbl.to_bits(), got.to_bits());
    }

    #[test]
    fn reduced_config_rewrites_and_runs_coarser_than_single() {
        // All-bf16 must run cleanly and land strictly coarser than the
        // all-single result, which in turn differs from pure double.
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let run_at = |fl: Flag| {
            let mut cfg = Config::new();
            for mi in 0..tree.modules.len() {
                cfg.set_module(tree.modules[mi].id, fl);
            }
            let (q, stats) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
            (run_out(&q).0, stats)
        };
        let (dbl, _) = run_out(&p);
        let (sgl, s_stats) = run_at(Flag::Single);
        let (b16, b_stats) = run_at(Flag::Bf16);
        let (hlf, h_stats) = run_at(Flag::Half);
        assert_eq!(s_stats.single, tree.candidate_count());
        assert_eq!(s_stats.reduced, 0);
        assert_eq!(b_stats.reduced, tree.candidate_count());
        assert_eq!(b_stats.single, 0);
        assert_eq!(h_stats.reduced, tree.candidate_count());
        assert_ne!(sgl.to_bits(), dbl.to_bits());
        assert_ne!(b16.to_bits(), sgl.to_bits());
        assert_ne!(hlf.to_bits(), sgl.to_bits());
        // bf16 keeps only ~2-3 significant decimal digits of the ~1.16 sum
        assert!((b16 - dbl).abs() < 0.05, "bf16 drifted too far: {b16} vs {dbl}");
        assert!((hlf - dbl).abs() < 0.01, "half drifted too far: {hlf} vs {dbl}");
    }

    #[test]
    fn incremental_rewriter_handles_reduced_configs() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let ids = tree.all_insns();
        let rw = Rewriter::new(&p, RewriteOptions::default());

        // Mixed lattice config: half, bf16, custom, single, rest double.
        let mut cfg = Config::new();
        cfg.set_insn(ids[0], Flag::Half);
        cfg.set_insn(ids[1], Flag::Bf16);
        cfg.set_insn(ids[2], Flag::Custom { mantissa_bits: 5, exp_bits: 6 });
        if ids.len() > 3 {
            cfg.set_insn(ids[3], Flag::Single);
        }
        let (want_p, want_s) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        let (got_p, got_s) = rw.rewrite(&p, &tree, &cfg);
        assert_eq!(want_s, got_s);
        assert_eq!(want_s.reduced, 3);
        let (want, _) = run_out(&want_p);
        let (got, _) = run_out(&got_p);
        assert_eq!(want.to_bits(), got.to_bits());

        // Distinct formats on the same instruction must not share
        // fragments: flipping half → bf16 re-instruments its block.
        let (_, m0) = rw.cache_stats();
        let mut cfg2 = cfg.clone();
        cfg2.set_insn(ids[0], Flag::Bf16);
        let (_, _) = rw.rewrite(&p, &tree, &cfg2);
        let (_, m1) = rw.cache_stats();
        assert!(m1 > m0, "changed format must miss the fragment cache");
    }

    #[test]
    fn empty_config_returns_unmodified_clone() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let (q, stats) = rewrite(&p, &tree, &Config::new(), &RewriteOptions::default());
        assert_eq!(stats, RewriteStats::default());
        assert_eq!(q.blocks.len(), p.blocks.len());
    }

    #[test]
    fn partial_replacement_mixes_precisions() {
        // Replace only the multiply; everything else double-checked. The
        // result should be between pure-f32 and pure-f64 behaviour but
        // must run cleanly (no crash-on-miss) with the trap armed.
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let ids = tree.all_insns();
        let mut cfg = Config::new();
        // pick the first candidate only
        cfg.set_insn(ids[0], Flag::Single);
        let (q, stats) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        assert_eq!(stats.single, 1);
        assert_eq!(stats.double_checked, ids.len() - 1);
        let (got, _) = run_out(&q);
        let (dbl, _) = run_out(&p);
        // close to the double result, but generally not identical
        assert!((got - dbl).abs() < 1e-3);
    }

    #[test]
    fn missed_instrumentation_crashes_loudly() {
        // Force a miss: replace one producer with single but leave a
        // consumer completely uninstrumented (ignore). The consumer reads
        // a flagged value and must trap — the paper's crash-on-miss.
        let mut ir = IrProgram::new("m");
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let a = ir.local_f(fr);
            vec![
                set(a, fmul(f(1.5), f(2.0))),      // producer
                st(out, i(0), fadd(v(a), f(1.0))), // consumer
            ]
        });
        ir.set_entry(main);
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let ids = tree.all_insns();
        assert_eq!(ids.len(), 2);
        let mut cfg = Config::new();
        cfg.set_insn(ids[0], Flag::Single);
        cfg.set_insn(ids[1], Flag::Ignore);
        let (q, stats) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        assert_eq!(stats.ignored, 1);
        let mut vm = Vm::new(&q, VmOptions::default());
        let o = vm.run();
        assert!(
            matches!(o.result, Err(fpvm::Trap::FlaggedNanConsumed { .. })),
            "expected crash-on-miss, got {:?}",
            o.result
        );
    }

    #[test]
    fn lean_mode_emits_fewer_snippet_instructions() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let (_, full) = rewrite(
            &p,
            &tree,
            &Config::new(),
            &RewriteOptions { mode: RewriteMode::AllDouble, lean: false },
        );
        let (q, lean) = rewrite(
            &p,
            &tree,
            &Config::new(),
            &RewriteOptions { mode: RewriteMode::AllDouble, lean: true },
        );
        assert!(lean.snippet_insns <= full.snippet_insns);
        // lean must not change results
        let (got, _) = run_out(&q);
        let pbase = fpir::compile(&ir, &CompileOptions::default());
        let (want, _) = run_out(&pbase);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn dynamic_pct_uses_profile_counts() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let out = Vm::run_program(&p, VmOptions { profile: true, ..Default::default() });
        let prof = out.profile.unwrap();
        let mut cfg = Config::new();
        assert_eq!(dynamic_replacement_pct(&tree, &cfg, &prof), 0.0);
        for id in tree.all_insns() {
            cfg.set_insn(id, Flag::Single);
        }
        assert!((dynamic_replacement_pct(&tree, &cfg, &prof) - 100.0).abs() < 1e-9);
    }

    /// Run a program and return (result bits, outcome) without asserting ok.
    fn run_any(p: &Program) -> fpvm::RunOutcome {
        Vm::run_program(p, VmOptions::default())
    }

    #[test]
    fn incremental_rewriter_matches_one_shot_semantics() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let ids = tree.all_insns();
        let rw = Rewriter::new(&p, RewriteOptions::default());

        // A spread of configurations: empty, one insn, half, all single.
        let mut cfgs = vec![Config::new()];
        let mut one = Config::new();
        one.set_insn(ids[0], Flag::Single);
        cfgs.push(one);
        let mut half = Config::new();
        for &id in ids.iter().take(ids.len() / 2) {
            half.set_insn(id, Flag::Single);
        }
        cfgs.push(half);
        let mut all = Config::new();
        for &id in &ids {
            all.set_insn(id, Flag::Single);
        }
        cfgs.push(all);

        for cfg in &cfgs {
            let (want_p, want_s) = rewrite(&p, &tree, cfg, &RewriteOptions::default());
            let (got_p, got_s) = rw.rewrite(&p, &tree, cfg);
            assert_eq!(want_s, got_s, "stats diverge");
            assert_eq!(want_p.blocks.len(), got_p.blocks.len());
            got_p.validate().expect("incremental output invalid");
            let want_o = run_any(&want_p);
            let got_o = run_any(&got_p);
            assert_eq!(want_o.result, got_o.result);
            assert_eq!(want_o.stats.steps, got_o.stats.steps);
            assert_eq!(want_o.stats.cycles, got_o.stats.cycles);
            assert_eq!(want_o.stats.fp_ops, got_o.stats.fp_ops);
            if want_o.ok() {
                let addr = want_p.symbol("out").unwrap();
                let mut vm_w = Vm::new(&want_p, VmOptions::default());
                vm_w.run();
                let mut vm_g = Vm::new(&got_p, VmOptions::default());
                vm_g.run();
                assert_eq!(
                    vm_w.mem.read_u64_slice(addr, 1).unwrap(),
                    vm_g.mem.read_u64_slice(addr, 1).unwrap(),
                    "output bits diverge"
                );
            }
        }
    }

    #[test]
    fn incremental_rewriter_reuses_fragments_across_configs() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let ids = tree.all_insns();
        let rw = Rewriter::new(&p, RewriteOptions::default());

        let mut all = Config::new();
        for &id in &ids {
            all.set_insn(id, Flag::Single);
        }
        let (_, _) = rw.rewrite(&p, &tree, &all);
        let (h0, m0) = rw.cache_stats();
        assert_eq!(h0, 0);
        assert!(m0 > 0);

        // Same config again: every fragment hits.
        let (_, _) = rw.rewrite(&p, &tree, &all);
        let (h1, m1) = rw.cache_stats();
        assert_eq!(m1, m0, "no new fragments expected");
        assert_eq!(h1, m0, "every block should hit the cache");

        // Flip one instruction: only the blocks containing it re-expand.
        let mut one_less = all.clone();
        one_less.set_insn(ids[0], Flag::Double);
        let (_, _) = rw.rewrite(&p, &tree, &one_less);
        let (h2, m2) = rw.cache_stats();
        assert!(m2 > m0, "changed block must re-instrument");
        assert!(m2 - m0 < m0, "unchanged blocks must not re-instrument");
        assert!(h2 > h1);
    }

    #[test]
    fn incremental_rewriter_all_double_matches_reference() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let rw = Rewriter::new(&p, RewriteOptions { mode: RewriteMode::AllDouble, lean: false });
        let (want_p, want_s) = rewrite_all_double(&p, &tree);
        let (got_p, got_s) = rw.rewrite(&p, &tree, &Config::new());
        assert_eq!(want_s, got_s);
        let want_o = run_any(&want_p);
        let got_o = run_any(&got_p);
        assert_eq!(want_o.stats.steps, got_o.stats.steps);
        assert!(got_o.ok());
    }

    #[test]
    fn incremental_rewriter_lean_mode_matches_reference_counts() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let rw = Rewriter::new(&p, RewriteOptions { mode: RewriteMode::AllDouble, lean: true });
        let (_, want_s) = rewrite(
            &p,
            &tree,
            &Config::new(),
            &RewriteOptions { mode: RewriteMode::AllDouble, lean: true },
        );
        let (got_p, got_s) = rw.rewrite(&p, &tree, &Config::new());
        assert_eq!(want_s, got_s);
        assert!(run_any(&got_p).ok());
    }

    #[test]
    fn instrumented_profile_attributes_snippets_to_origin() {
        let ir = kernel();
        let p = fpir::compile(&ir, &CompileOptions::default());
        let tree = StructureTree::build(&p);
        let (q, _) = rewrite_all_double(&p, &tree);
        // every snippet instruction knows its origin
        for (_, _, insn) in q.iter_insns() {
            if insn.id.0 as usize >= p.insn_id_bound() {
                assert!(insn.origin.is_some());
            }
        }
    }
}
