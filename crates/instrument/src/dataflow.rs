//! Intra-block forward dataflow for the *lean* snippet mode — the
//! paper's §2.5 third optimization: "static data flow analysis could
//! improve overheads by detecting instructions that never encounter
//! replaced double-precision numbers under a given configuration".
//!
//! The analysis tracks, within one basic block, the set of XMM registers
//! statically known to hold *plain* (unflagged) doubles. Block entry is
//! all-unknown (the conservative choice: values may arrive flagged from
//! predecessors or memory), so only locally-proven facts are used.

use crate::snippets::{OperandFacts, SnippetPrec};
use fpvm::isa::{FpLoc, Insn, InstKind, Prec, Width, RM};

/// Tracks which XMM registers provably hold unflagged doubles.
#[derive(Debug, Clone, Default)]
pub struct PlainSet {
    bits: u16,
}

impl PlainSet {
    /// Empty (all unknown) — the state at block entry.
    pub fn new() -> Self {
        PlainSet::default()
    }

    /// Is `reg` known plain?
    pub fn is_plain(&self, reg: u8) -> bool {
        self.bits & (1 << reg) != 0
    }

    fn set(&mut self, reg: u8) {
        self.bits |= 1 << reg;
    }

    fn clear(&mut self, reg: u8) {
        self.bits &= !(1 << reg);
    }

    /// Facts for a candidate instruction about to be instrumented.
    pub fn facts(&self, insn: &Insn) -> OperandFacts {
        let (dst, src) = match &insn.kind {
            InstKind::FpArith { dst, src, .. } => (Some(dst.0), reg_of(src)),
            InstKind::FpUcomi { lhs, src, .. } => (Some(lhs.0), reg_of(src)),
            InstKind::FpSqrt { src, .. }
            | InstKind::FpMath { src, .. }
            | InstKind::CvtF2I { src, .. }
            | InstKind::CvtF2F { src, .. } => (None, reg_of(src)),
            _ => (None, None),
        };
        OperandFacts {
            dst_plain: dst.map(|r| self.is_plain(r)).unwrap_or(false),
            src_plain: src.map(|r| self.is_plain(r)).unwrap_or(false),
        }
    }

    /// Update the state after executing `insn`, given how (or whether) it
    /// was instrumented: `Some(Single)` flags its output, `Some(Double)`
    /// produces a plain double, `None` means copied untouched.
    pub fn step(&mut self, insn: &Insn, instrumented: Option<SnippetPrec>) {
        match &insn.kind {
            InstKind::FpArith { dst, .. }
            | InstKind::FpSqrt { dst, .. }
            | InstKind::FpMath { dst, .. } => {
                match instrumented {
                    Some(SnippetPrec::Double) => self.set(dst.0),
                    // single/reduced snippets flag their output; untouched
                    // instructions (ignore flag, or single-precision
                    // original) produce whatever the op produced — a plain
                    // double op on unknown inputs may trap or produce
                    // plain — treat as unknown.
                    Some(SnippetPrec::Single | SnippetPrec::Reduced { .. }) | None => {
                        self.clear(dst.0)
                    }
                }
            }
            InstKind::CvtI2F { dst, to: Prec::Double, .. } => self.set(dst.0),
            InstKind::CvtI2F { dst, .. } => self.clear(dst.0),
            InstKind::CvtF2F { to: Prec::Double, dst, .. } => self.set(dst.0),
            InstKind::CvtF2F { dst, .. } => self.clear(dst.0),
            InstKind::MovF { width, dst: FpLoc::Reg(d), src } => match (width, src) {
                (Width::W64 | Width::W128, FpLoc::Reg(s)) => {
                    if self.is_plain(s.0) {
                        self.set(d.0);
                    } else {
                        self.clear(d.0);
                    }
                }
                _ => self.clear(d.0),
            },
            InstKind::PInsrQ { dst, .. } => self.clear(dst.0),
            InstKind::Call { .. } => {
                // callee may clobber anything
                self.bits = 0;
            }
            _ => {}
        }
    }
}

fn reg_of(src: &RM) -> Option<u8> {
    match src {
        RM::Reg(x) => Some(x.0),
        RM::Mem(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::isa::*;
    use fpvm::program::Program;

    fn insn(kind: InstKind) -> Insn {
        let mut p = Program::new(64);
        p.mk_insn(kind)
    }

    #[test]
    fn cvt_from_int_is_plain() {
        let mut s = PlainSet::new();
        s.step(&insn(InstKind::CvtI2F { to: Prec::Double, dst: Xmm(3), src: GMI::Imm(7) }), None);
        assert!(s.is_plain(3));
        assert!(!s.is_plain(2));
    }

    #[test]
    fn double_snippet_output_is_plain_single_is_not() {
        let add = insn(InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        });
        let mut s = PlainSet::new();
        s.step(&add, Some(SnippetPrec::Double));
        assert!(s.is_plain(0));
        s.step(&add, Some(SnippetPrec::Single));
        assert!(!s.is_plain(0));
    }

    #[test]
    fn moves_propagate_plainness() {
        let mut s = PlainSet::new();
        s.step(&insn(InstKind::CvtI2F { to: Prec::Double, dst: Xmm(1), src: GMI::Imm(1) }), None);
        s.step(
            &insn(InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(2)),
                src: FpLoc::Reg(Xmm(1)),
            }),
            None,
        );
        assert!(s.is_plain(2));
        // a load from memory makes the register unknown again
        s.step(
            &insn(InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(2)),
                src: FpLoc::Mem(MemRef::abs(0)),
            }),
            None,
        );
        assert!(!s.is_plain(2));
    }

    #[test]
    fn calls_clobber_everything() {
        let mut s = PlainSet::new();
        s.step(&insn(InstKind::CvtI2F { to: Prec::Double, dst: Xmm(1), src: GMI::Imm(1) }), None);
        s.step(&insn(InstKind::Call { func: FuncId(0) }), None);
        assert!(!s.is_plain(1));
    }

    #[test]
    fn facts_reflect_state() {
        let mut s = PlainSet::new();
        s.step(&insn(InstKind::CvtI2F { to: Prec::Double, dst: Xmm(0), src: GMI::Imm(1) }), None);
        let add = insn(InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        });
        let f = s.facts(&add);
        assert!(f.dst_plain);
        assert!(!f.src_plain);
    }
}
