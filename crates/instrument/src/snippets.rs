//! The snippet mini-compiler (paper §2.3, Fig. 6).
//!
//! For every instrumented floating-point instruction we emit a
//! "streamlined binary blob" of real VIS instructions that
//!
//! 1. copies any memory operand into the reserved scratch register
//!    (`%xmm15`) so the replaced instruction uses only register operands,
//! 2. saves `%rax`/`%rbx`,
//! 3. for each input operand (and each 64-bit lane when packed), tests the
//!    high word against the `0x7FF4DEAD` replacement flag and converts the
//!    operand in place — a *downcast-and-flag* for single-precision
//!    snippets, an *upcast-and-unflag* for double-precision snippets,
//! 4. executes the operation at the requested precision,
//! 5. re-establishes the output flag on single results (including both
//!    lanes of packed outputs),
//! 6. restores the saved registers.
//!
//! Because these are genuine interpreted instructions, snippet overhead is
//! real and measurable, which is what the paper's Figs. 8–9 measure.

use fpvm::isa::*;
use fpvm::program::Program;
use fpvm::value::{FLAG_HI64, HI_MASK};

const RAX: Gpr = Gpr::RAX;
const RBX: Gpr = Gpr::RBX;

/// The precision a snippet executes its instruction in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnippetPrec {
    /// Replace the opcode with its single-precision equivalent.
    Single,
    /// Keep the double-precision opcode but guard (and upcast) inputs.
    Double,
    /// Emulate a reduced format narrower than single (half, bf16, or a
    /// custom mantissa/exponent split): execute the single-precision
    /// opcode, then round-to-nearest-even quantize the result onto the
    /// reduced grid with an `FpTrunc`. Inputs are handled exactly like
    /// `Single` — reduced values arriving from other snippets are already
    /// on their grid, so they pass the flag test untouched.
    Reduced {
        /// Stored mantissa bits of the target format (≤ 23).
        mant: u8,
        /// Exponent field width of the target format (≤ 8).
        exp: u8,
    },
}

/// Dataflow facts about an instruction's register inputs, used by the
/// *lean* mode (the paper's §2.5 "static data flow analysis" optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandFacts {
    /// The destination/lhs register is statically known to be unflagged.
    pub dst_plain: bool,
    /// The source register is statically known to be unflagged.
    pub src_plain: bool,
}

/// Emission context: appends snippet instructions (attributed to an
/// original instruction) to the current block of a program under
/// construction, creating internal branch blocks as needed.
pub struct Emitter<'a> {
    /// The program being built.
    pub prog: &'a mut Program,
    /// The function owning the blocks.
    pub func: FuncId,
    /// The block instructions are currently appended to.
    pub cur: BlockId,
    /// The original instruction this snippet implements.
    pub origin: InsnId,
}

impl<'a> Emitter<'a> {
    /// Append one snippet instruction.
    pub fn ins(&mut self, kind: InstKind) {
        let i = self.prog.mk_snippet_insn(kind, self.origin);
        self.prog.blocks[self.cur.0 as usize].insns.push(i);
    }

    fn new_block(&mut self) -> BlockId {
        self.prog.add_block(self.func)
    }

    fn seal_jmp(&mut self, to: BlockId) {
        self.prog.block_mut(self.cur).term = Terminator::Jmp(to);
    }

    fn seal_br(&mut self, cond: Cond, then_: BlockId, else_: BlockId) {
        self.prog.block_mut(self.cur).term = Terminator::Br { cond, then_, else_ };
    }

    /// Copy a memory operand into `%xmm15` (raw bits, flag intact) and
    /// return the register form. Register operands pass through.
    fn prepare_src(&mut self, src: &RM, packed: bool) -> Xmm {
        match src {
            RM::Reg(x) => *x,
            RM::Mem(m) => {
                let w = if packed { Width::W128 } else { Width::W64 };
                self.ins(InstKind::MovF {
                    width: w,
                    dst: FpLoc::Reg(Xmm::SCRATCH),
                    src: FpLoc::Mem(*m),
                });
                Xmm::SCRATCH
            }
        }
    }

    fn push_scratch(&mut self) {
        self.ins(InstKind::Push { src: RAX });
        self.ins(InstKind::Push { src: RBX });
    }

    fn pop_scratch(&mut self) {
        self.ins(InstKind::Pop { dst: RBX });
        self.ins(InstKind::Pop { dst: RAX });
    }

    /// Emit the flag test for lane `lane` of `reg`: leaves the comparison
    /// in the machine flags (`Eq` ⇔ the lane is replaced).
    fn emit_flag_test(&mut self, reg: Xmm, lane: u8) {
        self.ins(InstKind::PExtrQ { dst: RAX, src: reg, lane });
        self.ins(InstKind::MovI { dst: GM::Reg(RBX), src: GMI::Imm(HI_MASK as i64) });
        self.ins(InstKind::IntAlu { op: IntOp::And, dst: RAX, src: GMI::Reg(RBX) });
        self.ins(InstKind::MovI { dst: GM::Reg(RBX), src: GMI::Imm(FLAG_HI64 as i64) });
        self.ins(InstKind::Cmp { lhs: RAX, src: GMI::Reg(RBX) });
    }

    /// Set the replacement flag on lane `lane` of `reg` (payload kept).
    fn emit_set_flag(&mut self, reg: Xmm, lane: u8) {
        self.ins(InstKind::PExtrQ { dst: RAX, src: reg, lane });
        self.ins(InstKind::MovI { dst: GM::Reg(RBX), src: GMI::Imm(0xFFFF_FFFF) });
        self.ins(InstKind::IntAlu { op: IntOp::And, dst: RAX, src: GMI::Reg(RBX) });
        self.ins(InstKind::MovI { dst: GM::Reg(RBX), src: GMI::Imm(FLAG_HI64 as i64) });
        self.ins(InstKind::IntAlu { op: IntOp::Or, dst: RAX, src: GMI::Reg(RBX) });
        self.ins(InstKind::PInsrQ { dst: reg, src: RAX, lane });
    }

    /// Flag the output lane of a replacement snippet: plain flagging for
    /// `Single`, quantize-and-flag (`FpTrunc`) for reduced formats.
    fn emit_flag_output(&mut self, reg: Xmm, lane: u8, prec: SnippetPrec) {
        match prec {
            SnippetPrec::Reduced { mant, exp } => {
                self.ins(InstKind::FpTrunc { mant, exp, dst: reg, lane });
            }
            _ => self.emit_set_flag(reg, lane),
        }
    }

    /// Downcast lane `lane` of `reg` in place: `[f64] → [flag | f32]`.
    fn emit_downcast(&mut self, reg: Xmm, lane: u8) {
        if lane == 0 {
            self.ins(InstKind::CvtF2F { to: Prec::Single, dst: reg, src: RM::Reg(reg) });
            self.emit_set_flag(reg, 0);
        } else {
            // Swap the lane down, convert, flag, swap back.
            self.ins(InstKind::PExtrQ { dst: RAX, src: reg, lane: 0 }); // save lane 0
            self.ins(InstKind::PExtrQ { dst: RBX, src: reg, lane: 1 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RBX, lane: 0 });
            self.ins(InstKind::CvtF2F { to: Prec::Single, dst: reg, src: RM::Reg(reg) });
            self.ins(InstKind::Push { src: RAX });
            self.emit_set_flag(reg, 0);
            self.ins(InstKind::Pop { dst: RAX });
            self.ins(InstKind::PExtrQ { dst: RBX, src: reg, lane: 0 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RBX, lane: 1 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RAX, lane: 0 });
        }
    }

    /// Upcast lane `lane` of `reg` in place: `[flag | f32] → [f64]`.
    fn emit_upcast(&mut self, reg: Xmm, lane: u8) {
        if lane == 0 {
            self.ins(InstKind::CvtF2F { to: Prec::Double, dst: reg, src: RM::Reg(reg) });
        } else {
            self.ins(InstKind::PExtrQ { dst: RAX, src: reg, lane: 0 });
            self.ins(InstKind::PExtrQ { dst: RBX, src: reg, lane: 1 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RBX, lane: 0 });
            self.ins(InstKind::CvtF2F { to: Prec::Double, dst: reg, src: RM::Reg(reg) });
            self.ins(InstKind::PExtrQ { dst: RBX, src: reg, lane: 0 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RBX, lane: 1 });
            self.ins(InstKind::PInsrQ { dst: reg, src: RAX, lane: 0 });
        }
    }

    /// Check-and-convert one input lane: for `Single` snippets, downcast
    /// when *not* yet flagged; for `Double` snippets, upcast when flagged.
    /// Continues emission in a fresh join block.
    fn emit_check_convert(&mut self, reg: Xmm, lane: u8, prec: SnippetPrec) {
        self.emit_flag_test(reg, lane);
        let conv = self.new_block();
        let next = self.new_block();
        match prec {
            // flagged (Eq) → needs the upcast
            SnippetPrec::Double => self.seal_br(Cond::Eq, conv, next),
            // flagged (Eq) → already single/reduced, skip the downcast
            _ => self.seal_br(Cond::Eq, next, conv),
        }
        self.cur = conv;
        match prec {
            SnippetPrec::Double => self.emit_upcast(reg, lane),
            _ => self.emit_downcast(reg, lane),
        }
        self.seal_jmp(next);
        self.cur = next;
    }

    /// Convert all lanes of an input register per the snippet precision,
    /// honouring lean-mode facts: a statically *plain* input skips the
    /// check entirely for double snippets, and skips the runtime test (but
    /// not the conversion) for single snippets.
    fn emit_inputs(&mut self, regs: &[(Xmm, bool)], lanes: u8, prec: SnippetPrec) {
        for &(reg, known_plain) in regs {
            for lane in 0..lanes {
                match (prec, known_plain) {
                    (SnippetPrec::Double, true) => {} // provably no flag: nothing to do
                    (_, true) => self.emit_downcast(reg, lane),
                    (_, false) => self.emit_check_convert(reg, lane, prec),
                }
            }
        }
    }
}

/// Emit the full replacement snippet for `insn` at precision `prec`,
/// appending to `e.cur` and leaving `e.cur` at the join block where the
/// original instruction stream continues. Panics if `insn` is not a
/// replacement candidate.
pub fn emit_snippet(e: &mut Emitter<'_>, insn: &Insn, prec: SnippetPrec, facts: OperandFacts) {
    match &insn.kind {
        InstKind::FpArith { op, prec: Prec::Double, packed, dst, src } => {
            let sreg = e.prepare_src(src, *packed);
            let lanes = if *packed { 2 } else { 1 };
            e.push_scratch();
            let src_plain = facts.src_plain && matches!(src, RM::Reg(_));
            let inputs: Vec<(Xmm, bool)> = if sreg == *dst {
                vec![(*dst, facts.dst_plain && src_plain)]
            } else {
                vec![(*dst, facts.dst_plain), (sreg, src_plain)]
            };
            e.emit_inputs(&inputs, lanes, prec);
            match prec {
                SnippetPrec::Double => {
                    e.ins(InstKind::FpArith {
                        op: *op,
                        prec: Prec::Double,
                        packed: *packed,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                }
                _ => {
                    e.ins(InstKind::FpArith {
                        op: *op,
                        prec: Prec::Single,
                        packed: *packed,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                    for lane in 0..lanes {
                        e.emit_flag_output(*dst, lane, prec);
                    }
                }
            }
            e.pop_scratch();
        }
        InstKind::FpSqrt { prec: Prec::Double, packed, dst, src } => {
            let sreg = e.prepare_src(src, *packed);
            let lanes = if *packed { 2 } else { 1 };
            e.push_scratch();
            let src_plain = facts.src_plain && matches!(src, RM::Reg(_));
            e.emit_inputs(&[(sreg, src_plain)], lanes, prec);
            match prec {
                SnippetPrec::Double => {
                    e.ins(InstKind::FpSqrt {
                        prec: Prec::Double,
                        packed: *packed,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                }
                _ => {
                    e.ins(InstKind::FpSqrt {
                        prec: Prec::Single,
                        packed: *packed,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                    for lane in 0..lanes {
                        e.emit_flag_output(*dst, lane, prec);
                    }
                }
            }
            e.pop_scratch();
        }
        InstKind::FpMath { fun, prec: Prec::Double, dst, src } => {
            let sreg = e.prepare_src(src, false);
            e.push_scratch();
            let src_plain = facts.src_plain && matches!(src, RM::Reg(_));
            e.emit_inputs(&[(sreg, src_plain)], 1, prec);
            match prec {
                SnippetPrec::Double => {
                    e.ins(InstKind::FpMath {
                        fun: *fun,
                        prec: Prec::Double,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                }
                _ => {
                    e.ins(InstKind::FpMath {
                        fun: *fun,
                        prec: Prec::Single,
                        dst: *dst,
                        src: RM::Reg(sreg),
                    });
                    e.emit_flag_output(*dst, 0, prec);
                }
            }
            e.pop_scratch();
        }
        InstKind::FpUcomi { prec: Prec::Double, lhs, src } => {
            let sreg = e.prepare_src(src, false);
            e.push_scratch();
            let src_plain = facts.src_plain && matches!(src, RM::Reg(_));
            let inputs: Vec<(Xmm, bool)> = if sreg == *lhs {
                vec![(*lhs, facts.dst_plain && src_plain)]
            } else {
                vec![(*lhs, facts.dst_plain), (sreg, src_plain)]
            };
            e.emit_inputs(&inputs, 1, prec);
            // The compare must be the last flag-writing instruction: the
            // pops below do not touch flags, so the original branch still
            // observes the compare result.
            match prec {
                SnippetPrec::Double => {
                    e.ins(InstKind::FpUcomi { prec: Prec::Double, lhs: *lhs, src: RM::Reg(sreg) });
                }
                // Reduced compares like single: both operands are on (a
                // superset of) the f32 grid, and comparison is exact.
                _ => {
                    e.ins(InstKind::FpUcomi { prec: Prec::Single, lhs: *lhs, src: RM::Reg(sreg) });
                }
            }
            e.pop_scratch();
        }
        InstKind::CvtF2I { from: Prec::Double, dst, src } => {
            assert!(
                *dst != RAX && *dst != RBX,
                "CvtF2I destination collides with snippet scratch registers"
            );
            let sreg = e.prepare_src(src, false);
            e.push_scratch();
            let src_plain = facts.src_plain && matches!(src, RM::Reg(_));
            e.emit_inputs(&[(sreg, src_plain)], 1, prec);
            match prec {
                SnippetPrec::Double => {
                    e.ins(InstKind::CvtF2I { from: Prec::Double, dst: *dst, src: RM::Reg(sreg) });
                }
                // Reduced converts like single: the payload is an exact f32.
                _ => {
                    e.ins(InstKind::CvtF2I { from: Prec::Single, dst: *dst, src: RM::Reg(sreg) });
                }
            }
            e.pop_scratch();
        }
        InstKind::CvtF2F { to: Prec::Single, dst, src } => {
            // A narrowing conversion: the result is a true single-typed
            // value either way; a flagged input's payload is copied as-is.
            let sreg = e.prepare_src(src, false);
            e.push_scratch();
            e.emit_flag_test(sreg, 0);
            let flagged = e.new_block();
            let plain = e.new_block();
            let join = e.new_block();
            e.seal_br(Cond::Eq, flagged, plain);
            e.cur = flagged;
            e.ins(InstKind::MovF {
                width: Width::W32,
                dst: FpLoc::Reg(*dst),
                src: FpLoc::Reg(sreg),
            });
            e.seal_jmp(join);
            e.cur = plain;
            e.ins(InstKind::CvtF2F { to: Prec::Single, dst: *dst, src: RM::Reg(sreg) });
            e.seal_jmp(join);
            e.cur = join;
            e.pop_scratch();
        }
        other => panic!("not a replacement candidate: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::program::Program;
    use fpvm::value::{is_replaced, replace};
    use fpvm::{Vm, VmOptions};

    /// Build a one-instruction harness: xmm0 = mem[0], xmm1 = mem[8],
    /// snippet(op), store xmm0 (raw) to mem[16]; returns final slot bits.
    fn run_snippet(
        a_bits: u64,
        b_bits: u64,
        op: FpAluOp,
        prec: SnippetPrec,
    ) -> (u64, Result<(), fpvm::Trap>) {
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = vec![0u8; 24];
        p.globals[..8].copy_from_slice(&a_bits.to_le_bytes());
        p.globals[8..16].copy_from_slice(&b_bits.to_le_bytes());
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(1)),
                src: FpLoc::Mem(MemRef::abs(8)),
            },
        );
        let victim = p.mk_insn(InstKind::FpArith {
            op,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, prec, OperandFacts::default());
        let tail = e.cur;
        e.prog.push_insn(
            tail,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(16)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(tail).term = Terminator::Halt;
        p.validate().unwrap();
        let mut vm = Vm::new(&p, VmOptions::default());
        let out = vm.run();
        (vm.mem.load_u64(16).unwrap(), out.result)
    }

    #[test]
    fn single_snippet_plain_inputs() {
        // 1.1 + 2.2 in single precision from plain doubles.
        let (bits, r) =
            run_snippet(1.1f64.to_bits(), 2.2f64.to_bits(), FpAluOp::Add, SnippetPrec::Single);
        r.unwrap();
        assert!(is_replaced(bits));
        assert_eq!(f32::from_bits(bits as u32), 1.1f32 + 2.2f32);
    }

    #[test]
    fn single_snippet_mixed_inputs() {
        // One input already replaced: no double rounding of that input.
        let (bits, r) =
            run_snippet(replace(1.1), 2.2f64.to_bits(), FpAluOp::Mul, SnippetPrec::Single);
        r.unwrap();
        assert!(is_replaced(bits));
        assert_eq!(f32::from_bits(bits as u32), 1.1f32 * 2.2f32);
    }

    #[test]
    fn reduced_snippet_quantizes_and_flags() {
        // 1.1 + 2.2 at half precision: single-precision add, then RNE
        // quantize onto the m10e5 grid, flag preserved.
        let (bits, r) = run_snippet(
            1.1f64.to_bits(),
            2.2f64.to_bits(),
            FpAluOp::Add,
            SnippetPrec::Reduced { mant: 10, exp: 5 },
        );
        r.unwrap();
        assert!(is_replaced(bits));
        let want = fpvm::value::quantize_f32_bits((1.1f32 + 2.2f32).to_bits(), 10, 5);
        assert_eq!(bits as u32, want);
        // the half result really is coarser than the single result
        assert_ne!(bits as u32, (1.1f32 + 2.2f32).to_bits());
    }

    #[test]
    fn reduced_snippet_accepts_replaced_inputs() {
        // A flagged f32 input flows through the reduced snippet unchanged
        // (no downcast) before the bf16 quantize of the product.
        let (bits, r) = run_snippet(
            replace(1.5),
            2.25f64.to_bits(),
            FpAluOp::Mul,
            SnippetPrec::Reduced { mant: 7, exp: 8 },
        );
        r.unwrap();
        assert!(is_replaced(bits));
        let want = fpvm::value::quantize_f32_bits((1.5f32 * 2.25f32).to_bits(), 7, 8);
        assert_eq!(bits as u32, want);
    }

    #[test]
    fn double_snippet_preserves_exact_double_result() {
        let (bits, r) =
            run_snippet(1.1f64.to_bits(), 2.2f64.to_bits(), FpAluOp::Add, SnippetPrec::Double);
        r.unwrap();
        assert!(!is_replaced(bits));
        assert_eq!(f64::from_bits(bits), 1.1f64 + 2.2f64);
    }

    #[test]
    fn double_snippet_upcasts_replaced_inputs() {
        let (bits, r) = run_snippet(replace(1.5), replace(2.25), FpAluOp::Sub, SnippetPrec::Double);
        r.unwrap();
        assert!(!is_replaced(bits));
        assert_eq!(f64::from_bits(bits), (1.5f32 as f64) - (2.25f32 as f64));
    }

    #[test]
    fn snippets_never_trip_the_crash_on_miss_trap() {
        // trap_on_flag is on by default in run_snippet: all four flag
        // combinations must execute cleanly.
        for a in [1.25f64.to_bits(), replace(1.25)] {
            for b in [3.5f64.to_bits(), replace(3.5)] {
                for prec in [SnippetPrec::Single, SnippetPrec::Double] {
                    let (_, r) = run_snippet(a, b, FpAluOp::Div, prec);
                    r.unwrap();
                }
            }
        }
    }

    #[test]
    fn same_register_both_operands() {
        // mulsd %xmm0, %xmm0 — squared, converted once.
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = 3.0f64.to_bits().to_le_bytes().to_vec();
        p.globals.extend_from_slice(&[0u8; 8]);
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        let victim = p.mk_insn(InstKind::FpArith {
            op: FpAluOp::Mul,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(0)),
        });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, SnippetPrec::Single, OperandFacts::default());
        let tail = e.cur;
        p.push_insn(
            tail,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(8)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(tail).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        vm.run().result.unwrap();
        let bits = vm.mem.load_u64(8).unwrap();
        assert!(is_replaced(bits));
        assert_eq!(f32::from_bits(bits as u32), 9.0);
    }

    #[test]
    fn memory_operand_is_copied_not_modified() {
        // addsd %xmm0, 8(mem): memory must remain bit-identical after the
        // snippet (operands are copied to a temp, per the paper).
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = vec![0u8; 24];
        p.globals[..8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        p.globals[8..16].copy_from_slice(&1.25f64.to_bits().to_le_bytes());
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        let victim = p.mk_insn(InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Mem(MemRef::abs(8)),
        });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, SnippetPrec::Single, OperandFacts::default());
        let tail = e.cur;
        p.push_insn(
            tail,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Mem(MemRef::abs(16)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(tail).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        vm.run().result.unwrap();
        assert_eq!(vm.mem.load_u64(8).unwrap(), 1.25f64.to_bits(), "memory operand modified");
        let bits = vm.mem.load_u64(16).unwrap();
        assert_eq!(f32::from_bits(bits as u32), 2.5f32 + 1.25f32);
    }

    #[test]
    fn packed_single_snippet_converts_both_lanes() {
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = vec![0u8; 48];
        for (k, x) in [1.5f64, 2.5, 3.0, 4.0].iter().enumerate() {
            p.globals[8 * k..8 * k + 8].copy_from_slice(&x.to_bits().to_le_bytes());
        }
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        let victim = p.mk_insn(InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: true,
            dst: Xmm(0),
            src: RM::Mem(MemRef::abs(16)),
        });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, SnippetPrec::Single, OperandFacts::default());
        let tail = e.cur;
        p.push_insn(
            tail,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Mem(MemRef::abs(32)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(tail).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        vm.run().result.unwrap();
        let lo = vm.mem.load_u64(32).unwrap();
        let hi = vm.mem.load_u64(40).unwrap();
        assert!(is_replaced(lo) && is_replaced(hi));
        assert_eq!(f32::from_bits(lo as u32), 1.5f32 + 3.0f32);
        assert_eq!(f32::from_bits(hi as u32), 2.5f32 + 4.0f32);
    }

    #[test]
    fn packed_double_snippet_upcasts_lanes_independently() {
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = vec![0u8; 48];
        // lane0 replaced, lane1 plain
        p.globals[..8].copy_from_slice(&replace(1.5).to_le_bytes());
        p.globals[8..16].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        p.globals[16..24].copy_from_slice(&10.0f64.to_bits().to_le_bytes());
        p.globals[24..32].copy_from_slice(&replace(20.0).to_le_bytes());
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        let victim = p.mk_insn(InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: true,
            dst: Xmm(0),
            src: RM::Mem(MemRef::abs(16)),
        });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, SnippetPrec::Double, OperandFacts::default());
        let tail = e.cur;
        p.push_insn(
            tail,
            InstKind::MovF {
                width: Width::W128,
                dst: FpLoc::Mem(MemRef::abs(32)),
                src: FpLoc::Reg(Xmm(0)),
            },
        );
        p.block_mut(tail).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        vm.run().result.unwrap();
        let v = vm.mem.read_f64_slice(32, 2).unwrap();
        assert_eq!(v[0], 1.5 + 10.0);
        assert_eq!(v[1], 2.5 + 20.0);
    }

    #[test]
    fn ucomi_snippet_preserves_branch_flags() {
        // compare 1.5 (replaced) vs 2.0 (plain) in single: Below must hold
        // after the snippet's internal pops.
        let mut p = Program::new(1 << 14);
        let m = p.add_module("t");
        let f = p.add_function(m, "main");
        let b0 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b0;
        p.entry = f;
        p.globals = vec![0u8; 24];
        p.globals[..8].copy_from_slice(&replace(1.5).to_le_bytes());
        p.globals[8..16].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(0)),
                src: FpLoc::Mem(MemRef::abs(0)),
            },
        );
        p.push_insn(
            b0,
            InstKind::MovF {
                width: Width::W64,
                dst: FpLoc::Reg(Xmm(1)),
                src: FpLoc::Mem(MemRef::abs(8)),
            },
        );
        let victim =
            p.mk_insn(InstKind::FpUcomi { prec: Prec::Double, lhs: Xmm(0), src: RM::Reg(Xmm(1)) });
        let origin = victim.id;
        let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
        emit_snippet(&mut e, &victim, SnippetPrec::Single, OperandFacts::default());
        let tail = e.cur;
        let t = p.add_block(f);
        let el = p.add_block(f);
        p.block_mut(tail).term = Terminator::Br { cond: Cond::Below, then_: t, else_: el };
        p.push_insn(t, InstKind::MovI { dst: GM::Mem(MemRef::abs(16)), src: GMI::Imm(1) });
        p.block_mut(t).term = Terminator::Halt;
        p.push_insn(el, InstKind::MovI { dst: GM::Mem(MemRef::abs(16)), src: GMI::Imm(0) });
        p.block_mut(el).term = Terminator::Halt;
        let mut vm = Vm::new(&p, VmOptions::default());
        vm.run().result.unwrap();
        assert_eq!(vm.mem.load_u64(16).unwrap(), 1);
    }

    #[test]
    fn lean_facts_shrink_double_snippets() {
        // With dst/src statically plain, a double snippet is just the op.
        let mk = |facts: OperandFacts| {
            let mut p = Program::new(1 << 14);
            let m = p.add_module("t");
            let f = p.add_function(m, "main");
            let b0 = p.add_block(f);
            p.funcs[f.0 as usize].entry = b0;
            p.entry = f;
            let victim = p.mk_insn(InstKind::FpArith {
                op: FpAluOp::Add,
                prec: Prec::Double,
                packed: false,
                dst: Xmm(0),
                src: RM::Reg(Xmm(1)),
            });
            let origin = victim.id;
            let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
            emit_snippet(&mut e, &victim, SnippetPrec::Double, facts);
            p.iter_insns().count()
        };
        let full = mk(OperandFacts::default());
        let lean = mk(OperandFacts { dst_plain: true, src_plain: true });
        assert!(lean < full, "lean snippet ({lean}) not smaller than full ({full})");
    }
}
