//! A small, dependency-free stand-in for the `criterion` benchmark
//! harness (the build environment has no network access), with one
//! extension: every finished benchmark group writes a machine-readable
//! `BENCH_<group>.json` file at the workspace root so the performance
//! trajectory can be tracked across PRs.
//!
//! Supported API: `Criterion::benchmark_group`, `BenchmarkGroup::{
//! sample_size, bench_function, finish}`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20, results: Vec::new() }
    }
}

/// One measured benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within the group.
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// A named collection of benchmarks sharing settings and one JSON report.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, result: None };
        f(&mut b);
        let mut r = b.result.expect("bench_function closure never called Bencher::iter");
        r.name = id.clone();
        eprintln!(
            "bench {:<28} {:>12.0} ns/iter (min {:>12.0}, {} samples x {} iters)",
            format!("{}/{}", self.name, id),
            r.mean_ns,
            r.min_ns,
            r.samples,
            r.iters_per_sample
        );
        self.results.push(r);
        self
    }

    /// Finish the group and write `BENCH_<group>.json` at the workspace
    /// root.
    pub fn finish(self) {
        let path = bench_json_path(&self.name);
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": {:?},\n", self.name));
        out.push_str("  \"unit\": \"ns_per_iter\",\n  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {:?}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.name,
                r.mean_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("bench report written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Where `BENCH_<group>.json` goes: the enclosing workspace root if one
/// can be found (a parent directory with a `Cargo.lock` or `.git`),
/// otherwise the current directory.
fn bench_json_path(group: &str) -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.lock").exists() || dir.join(".git").exists() {
            return dir.join(format!("BENCH_{group}.json"));
        }
        if !dir.pop() {
            return start.join(format!("BENCH_{group}.json"));
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    sample_size: usize,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Time `f`. The routine is warmed up once, then run for
    /// `sample_size` samples (batched so that very fast routines are
    /// timed over many iterations), capped at roughly two seconds total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + pilot measurement.
        let t0 = Instant::now();
        black_box(f());
        let pilot_ns = t0.elapsed().as_nanos().max(1);

        // Batch fast routines so each sample is at least ~1ms.
        let iters_per_sample = (1_000_000 / pilot_ns).max(1) as u64;
        // Cap total time at ~2s.
        let budget_ns: u128 = 2_000_000_000;
        let max_samples = (budget_ns / (pilot_ns * iters_per_sample as u128)).max(2) as usize;
        let samples = self.sample_size.min(max_samples).max(2);

        let mut times: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos());
        }
        let total: u128 = times.iter().sum();
        let mean_ns = total as f64 / (samples as u64 * iters_per_sample) as f64;
        let min_ns = *times.iter().min().unwrap() as f64 / iters_per_sample as f64;
        self.result =
            Some(BenchResult { name: String::new(), mean_ns, min_ns, samples, iters_per_sample });
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shimtest");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(g.results.len(), 1);
        assert!(g.results[0].mean_ns >= 0.0);
        // don't call finish() in tests: avoid writing BENCH_shimtest.json
    }
}
